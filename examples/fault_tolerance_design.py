"""Designing fault tolerance honestly: redundancy, sharing, quorum, masking.

A design-space exploration over a redundant storage front-end that writes a
record to ``n`` replicas.  Naive redundancy math assumes independence; this
example quantifies what the paper's dependency model (and this library's
extensions) reveal:

1. **replica count** under OR completion — with truly independent replicas
   vs all replicas secretly behind one storage backend (eq. 7 vs eq. 12);
2. **dependency granularity** — the grouped-sharing extension: replicas
   spread over 1, 2 or n independent backends;
3. **quorum strength** — the k-of-n completion extension: write quorums
   between OR (1-of-n) and AND (n-of-n);
4. **error masking** — the fail-stop relaxation: a caller that can absorb a
   backend failure (hinted handoff, async repair) recovers part of the
   sharing loss.

Run:  python examples/fault_tolerance_design.py
"""

from repro.analysis import format_table
from repro.core import (
    grouped_state_failure_probability,
    state_failure_probability,
)
from repro.model import AND, OR, KOfNCompletion

#: per-replica probabilities for one write
INTERNAL = 0.01   # driver-side failure (eq. 14 style, per request)
EXTERNAL = 0.04   # backend failure during the write


def replica_sweep() -> None:
    print("1) replica count under OR completion: independence vs sharing")
    rows = []
    for n in (1, 2, 3, 5, 8):
        independent = state_failure_probability(
            OR if n > 1 else AND, False, [INTERNAL] * n, [EXTERNAL] * n
        )
        shared = state_failure_probability(
            OR if n > 1 else AND, True if n > 1 else False,
            [INTERNAL] * n, [EXTERNAL] * n,
        )
        rows.append((n, independent, shared))
    print(format_table(
        ["replicas", "Pfail independent", "Pfail shared backend"],
        rows, float_format="{:.3e}",
    ))
    print("-> adding replicas on a shared backend makes writes WORSE.\n")


def granularity_sweep() -> None:
    print("2) dependency granularity (6 replicas, OR): how many backends?")
    partitions = {
        "1 backend (all shared)": [tuple(range(6))],
        "2 backends (3+3)": [(0, 1, 2), (3, 4, 5)],
        "3 backends (2+2+2)": [(0, 1), (2, 3), (4, 5)],
        "6 backends (independent)": [(i,) for i in range(6)],
    }
    rows = [
        (label, grouped_state_failure_probability(
            OR, groups, [INTERNAL] * 6, [EXTERNAL] * 6
        ))
        for label, groups in partitions.items()
    ]
    print(format_table(["deployment", "Pfail"], rows, float_format="{:.3e}"))
    print("-> each extra independent backend buys orders of magnitude.\n")


def quorum_sweep() -> None:
    print("3) write-quorum strength (5 independent replicas):")
    rows = []
    for k in range(1, 6):
        completion = KOfNCompletion(k)
        pfail = state_failure_probability(
            completion, False, [INTERNAL] * 5, [EXTERNAL] * 5
        )
        durability_note = {1: "fastest, weakest durability",
                          3: "majority quorum",
                          5: "full sync, most fragile"}.get(k, "")
        rows.append((f"{k}-of-5", pfail, durability_note))
    print(format_table(["quorum", "Pfail(write)", "note"], rows,
                       float_format="{:.3e}"))
    print("-> availability cost of stronger quorums, quantified.\n")


def masking_sweep() -> None:
    print("4) error masking on a shared backend (3 replicas, OR):")
    rows = []
    for m in (0.0, 0.25, 0.5, 0.75, 0.95):
        pfail = state_failure_probability(
            OR, True, [INTERNAL] * 3, [EXTERNAL] * 3, [m] * 3
        )
        rows.append((m, pfail))
    print(format_table(
        ["masking probability", "Pfail shared"], rows, float_format="{:.3e}",
    ))
    print("-> hinted-handoff-style masking claws back the sharing loss.\n")


def main() -> None:
    print(__doc__.splitlines()[0] + "\n")
    replica_sweep()
    granularity_sweep()
    quorum_sweep()
    masking_sweep()
    print(
        "Design takeaway: count your *independent* failure domains, not "
        "your replicas.\n(AND-style quorums are provably indifferent to "
        "sharing — eq. 11 == eq. 6 — but\nOR-style redundancy lives or "
        "dies by the dependency structure.)"
    )


if __name__ == "__main__":
    main()
