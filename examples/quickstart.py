"""Quickstart: model a tiny service assembly and predict its reliability.

Builds, from scratch, the smallest interesting architecture — a thumbnail
service running on one node and fetching images over a network — and asks
the three questions the library answers:

1. How reliable is the assembled service for a given workload?
2. What is the closed-form reliability as a function of the workload?
3. Which published attribute should we improve first?

Run:  python examples/quickstart.py
"""

from repro import (
    Assembly,
    CompositeService,
    CpuResource,
    FlowBuilder,
    NetworkResource,
    ReliabilityEvaluator,
    ServiceRequest,
    SymbolicEvaluator,
    perfect_connector,
)
from repro.core import attribute_sensitivities
from repro.model import AnalyticInterface, FormalParameter, IntegerDomain
from repro.reliability import per_operation_internal
from repro.symbolic import Parameter


def build_assembly() -> Assembly:
    # resources publish simple services with closed-form reliability
    cpu = CpuResource("cpu", speed=1e6, failure_rate=1e-7).service()
    net = NetworkResource("net", bandwidth=1e4, failure_rate=1e-3).service()

    # the thumbnail component publishes an analytic interface: abstract
    # formal parameters + attributes + a usage-profile flow
    images = Parameter("images")
    interface = AnalyticInterface(
        formal_parameters=(
            FormalParameter("images", domain=IntegerDomain(low=0),
                            description="number of images to thumbnail"),
        ),
        attributes={"software_failure_rate": 1e-6},
        description="thumbnail generation service",
    )
    flow = (
        FlowBuilder(formals=("images",))
        .state(
            "fetch",
            requests=[
                ServiceRequest("net", actuals={"B": images * 2048},
                               label="download originals"),
            ],
        )
        .state(
            "resize",
            requests=[
                ServiceRequest(
                    "cpu",
                    actuals={"N": images * 5000},
                    internal_failure=per_operation_internal(
                        "software_failure_rate", images * 5000
                    ),
                    label="decode + scale + encode",
                ),
            ],
        )
        .sequence("fetch", "resize")
        .build()
    )
    thumbnails = CompositeService("thumbnails", interface, flow)

    assembly = Assembly("quickstart")
    assembly.add_services(
        thumbnails, cpu, net,
        perfect_connector("loc_cpu"), perfect_connector("loc_net"),
    )
    assembly.bind("thumbnails", "cpu", "cpu", connector="loc_cpu")
    assembly.bind("thumbnails", "net", "net", connector="loc_net")
    return assembly


def main() -> None:
    assembly = build_assembly()

    # 1. numeric prediction (the recursive Pfail_Alg of the paper, §3.3)
    evaluator = ReliabilityEvaluator(assembly)
    for images in (1, 10, 100, 1000):
        reliability = evaluator.reliability("thumbnails", images=images)
        print(f"R(thumbnails, images={images:>4}) = {reliability:.6f}")

    # 2. symbolic closed form over the formal parameter
    expression = SymbolicEvaluator(assembly).reliability_expression("thumbnails")
    print("\nclosed form: R(images) =", expression)

    # 3. which attribute dominates the unreliability?
    print("\nsensitivity ranking (by |elasticity| of Pfail):")
    for result in attribute_sensitivities(
        assembly, "thumbnails", {"images": 100}, top=3
    ):
        print(f"  {result.name:35s} elasticity = {result.elasticity:+.3e}")


if __name__ == "__main__":
    main()
