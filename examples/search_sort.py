"""The paper's section 4 example, end to end.

Walks the complete worked example of the paper: the search/sort flows
(Figure 1), the LPC/RPC connectors (Figure 2), the local and remote
assemblies (Figures 3/4), the failure-structure augmentation (Figure 5),
the closed forms (equations 15-22), and the local-vs-remote comparison
(Figure 6) with crossover detection and sensitivity ranking.

Run:  python examples/search_sort.py
"""

import numpy as np

from repro.analysis import compare_assemblies, format_comparison
from repro.core import (
    ReliabilityEvaluator,
    SymbolicEvaluator,
    attribute_sensitivities,
)
from repro.scenarios import (
    PAPER_GAMMA_VALUES,
    SearchSortParameters,
    local_assembly,
    remote_assembly,
)

USAGE = {"elem": 1, "list": 500, "res": 1}


def show_models(params: SearchSortParameters) -> None:
    local = local_assembly(params)
    remote = remote_assembly(params)

    print("=" * 72)
    print("Figure 1 — the search and sort flows")
    print("=" * 72)
    print(local.service("search").flow.describe())
    print()
    print(local.service("sort1").flow.describe())

    print()
    print("=" * 72)
    print("Figure 2 — the connector flows")
    print("=" * 72)
    print(local.service("lpc").flow.describe())
    print()
    print(remote.service("rpc").flow.describe())

    print()
    print("=" * 72)
    print("Figures 3/4 — the two assemblies")
    print("=" * 72)
    print(local.describe())
    print()
    print(remote.describe())

    print()
    print("=" * 72)
    print("Section 4 recursion levels")
    print("=" * 72)
    for assembly in (local, remote):
        levels = assembly.recursion_levels()
        by_level: dict[int, list[str]] = {}
        for name, level in levels.items():
            by_level.setdefault(level, []).append(name)
        rendered = "; ".join(
            f"level {lvl}: {', '.join(sorted(names))}"
            for lvl, names in sorted(by_level.items())
        )
        print(f"{assembly.name:7s} {rendered}")


def show_closed_forms(params: SearchSortParameters) -> None:
    print()
    print("=" * 72)
    print("Equations (15)-(22) — derived mechanically by the symbolic engine")
    print("=" * 72)
    local = local_assembly(params)
    symbolic = SymbolicEvaluator(local)
    print("Pfail(sort1, list)  =", symbolic.pfail_expression("sort1"))
    print("Pfail(lpc, ip, op)  =", symbolic.pfail_expression("lpc"))
    print("Pfail(search, ...)  =", symbolic.pfail_expression("search"))

    evaluator = ReliabilityEvaluator(local)
    report = evaluator.report("search", **USAGE)
    print("\nFigure 5 — per-state failure breakdown at", USAGE)
    print(report)


def show_figure6(params: SearchSortParameters) -> None:
    print()
    print("=" * 72)
    print("Figure 6 — local vs remote, with crossovers")
    print("=" * 72)
    grid = np.linspace(1, 1000, 40)
    for gamma in PAPER_GAMMA_VALUES:
        point = params.with_figure6_point(params.phi_sort1, gamma)
        comparison = compare_assemblies(
            local_assembly(point), remote_assembly(point),
            "search", "list", grid, {"elem": 1, "res": 1},
        )
        print(f"\n--- gamma = {gamma:g} ---")
        print(format_comparison(comparison, max_rows=6))


def show_sensitivity(params: SearchSortParameters) -> None:
    print()
    print("=" * 72)
    print("What should the provider improve? (attribute sensitivities)")
    print("=" * 72)
    for build in (local_assembly, remote_assembly):
        assembly = build(params)
        ranked = attribute_sensitivities(assembly, "search", USAGE, top=3)
        print(f"\n{assembly.name} assembly:")
        for result in ranked:
            print(
                f"  {result.name:35s} dPfail/dx = {result.derivative:+.3e}  "
                f"elasticity = {result.elasticity:+.3e}"
            )


def main() -> None:
    params = SearchSortParameters()
    show_models(params)
    show_closed_forms(params)
    show_figure6(params)
    show_sensitivity(params)


if __name__ == "__main__":
    main()
