"""The full SOC loop: publish -> discover -> predict -> select -> serialize.

Section 1 of the paper: reliability prediction exists "to appropriately
drive the selection and assembly of services".  This example plays both
sides of a service marketplace:

- providers publish sort services (with their analytic interfaces) into a
  registry;
- a broker discovers the candidates, builds the *complete* assembly each
  one implies (local deployment with an LPC connector vs remote deployment
  with RPC over a network), predicts the assembled reliability at the
  expected usage point, and selects;
- the winning assembly is serialized to the machine-processable JSON form
  (the section 5 "analytic interface embedding") and re-evaluated from the
  serialized text, closing the automation loop.

The punchline is Figure 6's: the candidate with the *better published
failure rate* is not always the right choice — the network in front of it
can eat the advantage.

Run:  python examples/service_selection.py
"""

from repro.analysis import select_assembly
from repro.core import ReliabilityEvaluator
from repro.dsl import dump_assembly, load_assembly
from repro.model import ServiceRegistry
from repro.scenarios import (
    SearchSortParameters,
    local_assembly,
    remote_assembly,
)

USAGE = {"elem": 1, "list": 1000, "res": 1}


def run_market(gamma: float) -> None:
    params = SearchSortParameters().with_figure6_point(phi1=1e-6, gamma=gamma)

    registry = ServiceRegistry()
    registry.publish(
        local_assembly(params).service("sort1"), "sort",
        provider="LocalSoft", metadata={"deployment": "local"},
    )
    registry.publish(
        remote_assembly(params).service("sort2"), "sort",
        provider="CloudSort Inc.", metadata={"deployment": "remote"},
    )

    candidates = registry.discover("sort")
    print(f"--- network failure rate gamma = {gamma:g} ---")
    print("discovered candidates (published software failure rates):")
    for entry in candidates:
        phi = entry.service.interface.attributes["software_failure_rate"]
        print(f"  {entry.service.name:6s} from {entry.provider:15s} phi = {phi:g}")

    def build(entry):
        if entry.metadata["deployment"] == "local":
            return local_assembly(params)
        return remote_assembly(params)

    ranked = select_assembly(
        candidates, build, "search", USAGE,
        label=lambda e: e.metadata["deployment"],
    )
    for position, evaluation in enumerate(ranked, start=1):
        print(
            f"  #{position} {evaluation.candidate:6s} "
            f"predicted R(search) = {evaluation.reliability:.6f}"
        )
    winner = ranked[0]
    print(f"selected: {winner.candidate}\n")
    return winner


def main() -> None:
    # a reliable network: the remote provider's better software wins
    run_market(gamma=5e-3)
    # an unreliable network: the local provider wins despite worse software
    winner = run_market(gamma=1e-1)

    print("serializing the selected assembly (repro/1 JSON schema)...")
    text = dump_assembly(winner.assembly)
    print(f"  {len(text)} bytes")
    replayed = load_assembly(text)
    reliability = ReliabilityEvaluator(replayed).reliability("search", **USAGE)
    print(
        f"re-evaluated from the serialized form: R = {reliability:.6f} "
        f"(matches: {abs(reliability - winner.reliability) < 1e-12})"
    )


if __name__ == "__main__":
    main()
