"""Travel booking: OR fault tolerance, and the sharing trap.

A booking orchestrator queries two flight-search providers under an OR
completion model (either answer suffices) — textbook fault tolerance.  The
example shows what section 3.2 of the paper proves: the redundancy only
helps if the providers are truly independent.  When both route to the same
GDS backend (the *sharing* dependency model), one backend failure defeats
both requests at once, and the architecture's published redundancy is
fiction.  A Monte Carlo fault-injection run confirms the analytic numbers
operationally.

Run:  python examples/travel_booking.py
"""

from repro.core import ReliabilityEvaluator
from repro.scenarios import booking_assembly
from repro.simulation import MonteCarloSimulator

ITINERARY = {"itinerary": 5}
TRIALS = 30_000


def main() -> None:
    independent = booking_assembly(shared_gds=False)
    shared = booking_assembly(shared_gds=True)

    print("architecture (independent flight providers):")
    print(independent.describe())
    print()

    results = {}
    for assembly in (independent, shared):
        evaluator = ReliabilityEvaluator(assembly)
        pfail = evaluator.pfail("booking", **ITINERARY)
        report = evaluator.report("booking", **ITINERARY)
        results[assembly.name] = pfail
        print(f"--- {assembly.name} ---")
        print(f"predicted Pfail(booking, itinerary=5) = {pfail:.6e}")
        dominant = report.dominant_state()
        print(
            f"dominant state: {dominant.state!r} "
            f"(p_fail {dominant.failure_probability:.3e}, "
            f"E[visits] {dominant.expected_visits:.2f})"
        )
        simulated = MonteCarloSimulator(assembly, seed=7).estimate_pfail(
            "booking", TRIALS, **ITINERARY
        )
        print(
            f"Monte Carlo ({TRIALS} trials): {simulated.pfail:.6e} "
            f"+/- {simulated.standard_error:.1e}  "
            f"consistent = {simulated.consistent_with(pfail)}"
        )
        print()

    penalty = results["booking-shared-gds"] / results["booking"]
    print(
        f"sharing penalty: the hidden shared backend makes the booking "
        f"service {penalty:.1f}x less reliable than the published "
        f"architecture suggests."
    )
    print(
        "(with AND completion the sharing would be provably harmless — "
        "eq. 11 == eq. 6 of the paper; with OR it is not — eq. 12 vs eq. 7.)"
    )


if __name__ == "__main__":
    main()
