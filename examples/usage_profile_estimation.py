"""Estimating a usage profile from noisy observations (Hidden Markov Model).

The paper assumes the usage-profile Markov chain "is completely known" and
points at Roshandel & Medvidovic for the realistic case: the profile must
be estimated from imperfect observations (section 5, ref [16]).  This
example closes that gap with the library's HMM module:

1. a "true" two-mode client (browse-heavy vs checkout-heavy) drives a
   storefront service; we only see noisy request logs;
2. Baum-Welch re-estimates the hidden mode-switching structure from the
   logs;
3. the estimated transition probabilities parameterize the storefront's
   flow, and the predicted reliability under the *estimated* profile is
   compared with the prediction under the *true* profile.

Run:  python examples/usage_profile_estimation.py
"""

import numpy as np

from repro.core import ReliabilityEvaluator
from repro.markov import HiddenMarkovModel
from repro.model import (
    AnalyticInterface,
    Assembly,
    CompositeService,
    CpuResource,
    FlowBuilder,
    FormalParameter,
    IntegerDomain,
    ServiceRequest,
    perfect_connector,
)
from repro.reliability import per_operation_internal
from repro.symbolic import Parameter

#: hidden modes and their observable request symbols
BROWSE, CHECKOUT = 0, 1


def true_client_model() -> HiddenMarkovModel:
    """The ground-truth client: sticky modes, slightly noisy logs."""
    return HiddenMarkovModel(
        initial=np.array([0.8, 0.2]),
        transition=np.array([[0.9, 0.1], [0.3, 0.7]]),
        emission=np.array([[0.95, 0.05], [0.1, 0.9]]),
        state_labels=("browse", "checkout"),
    )


def sample_traces(model: HiddenMarkovModel, n_traces: int, length: int, seed: int):
    rng = np.random.default_rng(seed)
    traces = []
    for _ in range(n_traces):
        state = int(rng.choice(2, p=model.initial))
        trace = []
        for _ in range(length):
            trace.append(int(rng.choice(2, p=model.emission[state])))
            state = int(rng.choice(2, p=model.transition[state]))
        traces.append(trace)
    return traces


def storefront_assembly(p_browse_to_checkout: float) -> Assembly:
    """A storefront whose flow branches by the estimated client behavior:
    after browsing, the client proceeds to checkout with the estimated
    mode-switch probability (checkout costs 20x the work)."""
    items = Parameter("items")
    interface = AnalyticInterface(
        formal_parameters=(FormalParameter("items", domain=IntegerDomain(low=0)),),
        attributes={"software_failure_rate": 1e-7},
        description="storefront session handler",
    )
    flow = (
        FlowBuilder(formals=("items",))
        .state(
            "browse",
            requests=[
                ServiceRequest(
                    "cpu", actuals={"N": items * 100},
                    internal_failure=per_operation_internal(
                        "software_failure_rate", items * 100
                    ),
                )
            ],
        )
        .state(
            "checkout",
            requests=[
                ServiceRequest(
                    "cpu", actuals={"N": items * 2000},
                    internal_failure=per_operation_internal(
                        "software_failure_rate", items * 2000
                    ),
                )
            ],
        )
        .transition("Start", "browse", 1)
        .transition("browse", "checkout", p_browse_to_checkout)
        .transition("browse", "End", 1 - p_browse_to_checkout)
        .transition("checkout", "End", 1)
        .build()
    )
    storefront = CompositeService("storefront", interface, flow)
    assembly = Assembly(f"storefront-p{p_browse_to_checkout:.3f}")
    assembly.add_services(
        storefront,
        CpuResource("cpu", speed=1e6, failure_rate=1e-7).service(),
        perfect_connector("loc"),
    )
    assembly.bind("storefront", "cpu", "cpu", connector="loc")
    return assembly


def main() -> None:
    truth = true_client_model()
    traces = sample_traces(truth, n_traces=30, length=120, seed=42)
    print(f"observed {len(traces)} request logs of {len(traces[0])} events each")

    # deliberately wrong starting point for EM
    start = HiddenMarkovModel(
        initial=np.array([0.5, 0.5]),
        transition=np.array([[0.6, 0.4], [0.4, 0.6]]),
        emission=np.array([[0.7, 0.3], [0.3, 0.7]]),
        state_labels=("browse", "checkout"),
    )
    fitted = start.baum_welch(traces, iterations=60)

    true_switch = float(truth.transition[BROWSE, CHECKOUT])
    estimated_switch = float(fitted.transition[BROWSE, CHECKOUT])
    print(f"true  P(browse -> checkout) = {true_switch:.3f}")
    print(f"fitted P(browse -> checkout) = {estimated_switch:.3f}")

    for label, p in (("true", true_switch), ("estimated", estimated_switch)):
        assembly = storefront_assembly(p)
        reliability = ReliabilityEvaluator(assembly).reliability(
            "storefront", items=200
        )
        print(f"R(storefront, items=200) under the {label:9s} profile: "
              f"{reliability:.6f}")

    path = fitted.viterbi(traces[0][:20])
    print("decoded modes of the first 20 events of trace 0:")
    print("  " + " ".join(label[:1] for label in path))


if __name__ == "__main__":
    main()
