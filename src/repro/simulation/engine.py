"""Monte Carlo fault-injection simulation of a service assembly.

The paper is purely analytical; this simulator is the reproduction's
independent cross-check.  It executes the *operational* semantics that the
analytic model abstracts — walking each composite service's flow, sampling
transitions, recursively invoking providers and connectors per request, and
injecting failures — under exactly the paper's assumptions:

- **fail-stop, no repair**: any failure aborts the whole invocation;
- **internal failures** are independent Bernoulli draws per request;
- **external failures** follow from recursively simulated provider and
  connector invocations (a request's external invocation fails if *either*
  fails — the operational form of eq. 13);
- **completion models**: a state succeeds when at least ``k`` of its
  requests succeed (AND: all, OR: one);
- **sharing**: if any request in a shared state suffers an external
  failure, the shared service is dead and *every* request in the state
  fails (the conditioning step of eqs. 9/10); otherwise requests fail only
  through their internal draws.

Because every probability in the model is a deterministic function of the
top-level actual parameters, the simulator first *compiles* the invocation
into a plan tree (all expressions evaluated once), then samples the plan —
so per-trial cost is pure random drawing.

Agreement between the estimated and analytic ``Pfail`` (within Monte Carlo
error) is asserted by ``tests/integration/test_monte_carlo_validation.py``
for every scenario in the repository.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.errors import EvaluationError, ModelError
from repro.model.assembly import Assembly
from repro.model.flow import END, START
from repro.model.service import CompositeService, Service, SimpleService
from repro.model.validation import validate_assembly
from repro.runtime.budget import EvaluationBudget
from repro.runtime.guards import check_probability

__all__ = ["SimulationResult", "MonteCarloSimulator"]

#: Recursion-depth cap: the simulator supports the acyclic assemblies the
#: recursive evaluator supports; runaway recursion indicates a cycle.
_MAX_DEPTH = 512

#: Deadline checks are amortized over batches of this many trials.
_DEADLINE_STRIDE = 256

#: Per-trial step cap: healthy flows absorb within a handful of steps, so
#: a walk this long means the flow traps probability mass in a cycle.
_MAX_WALK_STEPS = 100_000


class SimulationResult:
    """Outcome of a Monte Carlo unreliability estimation.

    Attributes:
        trials: number of simulated invocations.
        failures: number that ended in failure.
    """

    def __init__(self, trials: int, failures: int):
        if trials <= 0:
            raise ModelError("a simulation needs at least one trial")
        if not 0 <= failures <= trials:
            raise ModelError(f"failures {failures} out of range for {trials} trials")
        self.trials = trials
        self.failures = failures

    @property
    def pfail(self) -> float:
        """Point estimate of the unreliability."""
        return self.failures / self.trials

    @property
    def reliability(self) -> float:
        """Point estimate of the reliability."""
        return 1.0 - self.pfail

    @property
    def standard_error(self) -> float:
        """Binomial standard error of the ``pfail`` estimate."""
        p = self.pfail
        return math.sqrt(p * (1.0 - p) / self.trials)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson score interval for ``pfail`` (robust near 0 and 1)."""
        n, p = self.trials, self.pfail
        denominator = 1.0 + z * z / n
        center = (p + z * z / (2 * n)) / denominator
        half = (z / denominator) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
        return (max(0.0, center - half), min(1.0, center + half))

    def consistent_with(self, analytic_pfail: float, z: float = 4.0) -> bool:
        """True when the analytic value lies within ``z`` standard errors
        (or within the z-Wilson interval when the estimate touches 0/1)."""
        if self.failures in (0, self.trials):
            low, high = self.confidence_interval(z)
            return low <= analytic_pfail <= high
        return abs(analytic_pfail - self.pfail) <= z * self.standard_error

    def __repr__(self) -> str:
        return (
            f"SimulationResult(trials={self.trials}, failures={self.failures}, "
            f"pfail={self.pfail:.6e} +/- {self.standard_error:.2e})"
        )


# ---------------------------------------------------------------------------
# compiled invocation plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _SimplePlan:
    """A simple-service invocation: one Bernoulli draw."""

    pfail: float


@dataclass(frozen=True)
class _RequestPlan:
    """One request of a state: internal draw + recursive sub-invocations,
    plus the error-masking probability of the extension (0 = fail-stop)."""

    p_internal: float
    provider: "_SimplePlan | _CompositePlan"
    connector: "_SimplePlan | _CompositePlan | None"
    masking: float = 0.0


@dataclass(frozen=True)
class _StatePlan:
    """One internal state: its requests under a completion model and the
    normalized dependency partition (singletons = independent; a
    multi-request group = one shared external service)."""

    name: str
    required_successes: int
    groups: tuple[tuple[int, ...], ...]
    requests: tuple[_RequestPlan, ...]


@dataclass(frozen=True)
class _CompositePlan:
    """A composite-service invocation: states plus concrete transitions."""

    service: str
    states: dict[str, _StatePlan]
    # state name -> (target names, cumulative probabilities)
    transitions: dict[str, tuple[tuple[str, ...], np.ndarray]]


class MonteCarloSimulator:
    """Fault-injection simulator over one (acyclic) assembly.

    Args:
        assembly: the assembly to simulate.
        seed: seed for the numpy PCG64 generator (reproducible runs).
        validate: run structural validation up front.
        budget: optional :class:`~repro.runtime.EvaluationBudget`; trials
            are charged against the cumulative trial cap and the deadline
            is checked every few hundred trials, raising
            :class:`~repro.errors.BudgetExceededError`.
    """

    def __init__(
        self,
        assembly: Assembly,
        seed: int | None = None,
        validate: bool = True,
        budget: EvaluationBudget | None = None,
    ):
        self.assembly = assembly
        self.budget = budget
        if validate:
            validate_assembly(assembly).raise_if_invalid()
        # Kept for parallel estimation: worker blocks derive their streams
        # from SeedSequence(seed).spawn(), so runs stay reproducible per
        # (seed, jobs) pair.
        self._seed = seed
        self.rng = np.random.default_rng(seed)

    # -- public API ----------------------------------------------------------

    def simulate_once(self, service: str | Service, **actuals: float) -> bool:
        """Simulate one invocation; returns True on success."""
        if self.budget is not None:
            self.budget.check_deadline("simulation")
            self.budget.charge_trials(1, "simulation")
        plan = self.compile(service, **actuals)
        return self._run(plan)

    def estimate_pfail(
        self,
        service: str | Service,
        trials: int,
        *,
        jobs: int = 1,
        **actuals: float,
    ) -> SimulationResult:
        """Estimate ``Pfail(service, actuals)`` over ``trials`` invocations.

        With ``jobs > 1`` the trials are split into near-equal blocks and
        run on a process pool, each block with an independent child stream
        spawned from this simulator's seed (``SeedSequence.spawn``), so an
        estimate is reproducible for a given ``(seed, jobs)`` pair.  The
        trial cap is charged once here, in the parent; workers enforce
        only the remaining deadline.
        """
        from repro.engine.parallel import resolve_jobs

        if self.budget is not None:
            self.budget.check_deadline("Monte Carlo estimation")
            self.budget.charge_trials(trials, "Monte Carlo estimation")
        jobs = resolve_jobs(jobs)
        if jobs > 1 and trials > 1:
            return self._estimate_parallel(service, trials, jobs, actuals)
        plan = self.compile(service, **actuals)
        failures = 0
        for trial in range(trials):
            if (
                self.budget is not None
                and trial % _DEADLINE_STRIDE == 0
                and trial
            ):
                self.budget.check_deadline("Monte Carlo estimation")
            if not self._run(plan):
                failures += 1
        return SimulationResult(trials, failures)

    def _estimate_parallel(
        self, service: str | Service, trials: int, jobs: int, actuals: dict
    ) -> SimulationResult:
        from concurrent.futures.process import BrokenProcessPool

        from repro.engine.fingerprint import canonical_json
        from repro.engine.parallel import (
            WorkerFailure,
            broken_pool_error,
            make_executor,
            rebuild_error,
            remaining_deadline,
            simulate_block,
            unpack_worker_payload,
        )

        name = service.name if isinstance(service, Service) else str(service)
        blocks = min(jobs, trials)
        base, extra = divmod(trials, blocks)
        sizes = [base + (1 if i < extra else 0) for i in range(blocks)]
        seeds = np.random.SeedSequence(self._seed).spawn(blocks)
        assembly_json = canonical_json(self.assembly)
        executor = make_executor(jobs, "process")
        total_trials = total_failures = 0
        with executor:
            futures = [
                executor.submit(
                    simulate_block,
                    {
                        "assembly_json": assembly_json,
                        "service": name,
                        "actuals": dict(actuals),
                        "trials": size,
                        "seed": seed,
                        "deadline": remaining_deadline(self.budget),
                        "observe": obs.enabled(),
                        "dispatched_at": time.time(),
                    },
                )
                for size, seed in zip(sizes, seeds)
            ]
            try:
                for block, future in enumerate(futures):
                    outcome = unpack_worker_payload(future.result())
                    if isinstance(outcome, WorkerFailure):
                        raise rebuild_error(outcome)
                    block_trials, block_failures = outcome
                    total_trials += block_trials
                    total_failures += block_failures
            except BrokenProcessPool as exc:
                raise broken_pool_error(
                    "Monte Carlo trial blocks",
                    range(block, len(futures)),
                    exc,
                ) from exc
        return SimulationResult(total_trials, total_failures)

    def compile(self, service: str | Service, **actuals: float):
        """Compile the invocation of ``service`` with ``actuals`` into a
        plan tree (all model expressions evaluated once)."""
        svc = service if isinstance(service, Service) else self.assembly.service(service)
        memo: dict[tuple, _SimplePlan | _CompositePlan] = {}
        return self._compile(svc, tuple(sorted(
            (k, float(v)) for k, v in actuals.items()
        )), memo, depth=0)

    # -- compilation -----------------------------------------------------------

    def _compile(self, service: Service, actuals: tuple, memo: dict, depth: int):
        if depth > _MAX_DEPTH:
            raise EvaluationError(
                "simulation recursion too deep; the simulator supports "
                "acyclic assemblies only (evaluate cyclic ones with "
                "FixedPointEvaluator)"
            )
        if self.budget is not None:
            self.budget.check_depth(depth + 1, "simulation plan compilation")
        key = (service.name, actuals)
        if key in memo:
            return memo[key]
        env = service.evaluation_environment(dict(actuals), check=False)

        if isinstance(service, SimpleService):
            # A NaN or out-of-range draw threshold would silently bias
            # every trial; reject it here with a typed error instead.
            plan = _SimplePlan(check_probability(
                f"Pfail({service.name})",
                float(service.failure_probability.evaluate(env)),
            ))
            memo[key] = plan
            return plan
        if not isinstance(service, CompositeService):
            raise ModelError(f"cannot simulate service type {type(service)!r}")

        states: dict[str, _StatePlan] = {}
        for state in service.flow.states:
            request_plans = []
            for request in state.requests:
                resolved = self.assembly.resolve_request(service.name, request)
                p_int = check_probability(
                    f"internal failure of {service.name}/{state.name}",
                    float(request.internal_failure.evaluate(env)),
                )
                callee_actuals = tuple(sorted(
                    (name, float(request.actuals[name].evaluate(env)))
                    for name in resolved.provider.formal_parameters
                ))
                provider_plan = self._compile(
                    resolved.provider, callee_actuals, memo, depth + 1
                )
                connector_plan = None
                if resolved.connector is not None:
                    connector_actuals = tuple(sorted(
                        (name, float(resolved.connector_actuals[name].evaluate(env)))
                        for name in resolved.connector.formal_parameters
                    ))
                    connector_plan = self._compile(
                        resolved.connector, connector_actuals, memo, depth + 1
                    )
                request_plans.append(
                    _RequestPlan(
                        p_int, provider_plan, connector_plan,
                        masking=check_probability(
                            f"masking of {service.name}/{state.name}",
                            float(request.masking.evaluate(env)),
                        ),
                    )
                )
            states[state.name] = _StatePlan(
                state.name,
                state.completion.required_successes(len(state.requests))
                if state.requests else 0,
                state.effective_groups(),
                tuple(request_plans),
            )

        transitions: dict[str, tuple[tuple[str, ...], np.ndarray]] = {}
        for source in [START, *(s.name for s in service.flow.states)]:
            outgoing = service.flow.outgoing(source)
            targets = tuple(t.target for t in outgoing)
            probabilities = np.array(
                [float(t.probability.evaluate(env)) for t in outgoing]
            )
            if np.any(probabilities < -1e-12) or not math.isclose(
                probabilities.sum(), 1.0, abs_tol=1e-9
            ):
                raise EvaluationError(
                    f"transition probabilities out of {source!r} in "
                    f"{service.name!r} do not form a distribution: {probabilities}"
                )
            cumulative = np.cumsum(np.clip(probabilities, 0.0, 1.0))
            cumulative[-1] = 1.0
            transitions[source] = (targets, cumulative)

        plan = _CompositePlan(service.name, states, transitions)
        memo[key] = plan
        return plan

    # -- sampling -----------------------------------------------------------

    def _run(self, plan) -> bool:
        if isinstance(plan, _SimplePlan):
            return bool(self.rng.random() >= plan.pfail)
        current = self._next(plan, START)
        steps = 0
        while current != END:
            # A flow can pass structural validation (End reachable from
            # Start) and still hold a never-failing cycle that traps the
            # walk; bound every trial so a corrupt model cannot hang us.
            steps += 1
            if steps % _DEADLINE_STRIDE == 0 and self.budget is not None:
                self.budget.check_deadline("simulation walk")
            if steps > _MAX_WALK_STEPS:
                raise EvaluationError(
                    f"simulation walk through {plan.service!r} exceeded "
                    f"{_MAX_WALK_STEPS} steps without absorbing; the flow "
                    f"likely traps probability mass in a cycle"
                )
            if not self._execute_state(plan.states[current]):
                return False
            current = self._next(plan, current)
        return True

    def _next(self, plan: _CompositePlan, current: str) -> str:
        targets, cumulative = plan.transitions[current]
        if len(targets) == 1:
            return targets[0]
        draw = self.rng.random()
        index = int(np.searchsorted(cumulative, draw, side="right"))
        return targets[min(index, len(targets) - 1)]

    def _execute_state(self, state: _StatePlan) -> bool:
        if not state.requests:
            return True

        external_ok = []
        internal_ok = []
        for request in state.requests:
            internal_ok.append(self.rng.random() >= request.p_internal)
            ok = self._run(request.provider)
            if request.connector is not None:
                ok = self._run(request.connector) and ok
            external_ok.append(ok)

        def masked(request: _RequestPlan) -> bool:
            """A failed request still counts as fulfilled when masked
            (the error-propagation extension; masking = 0 never fires)."""
            return request.masking > 0.0 and self.rng.random() < request.masking

        # one external failure inside a multi-request group destroys that
        # group's shared service (no repair) and with it every member
        # request — masking aside; distinct groups are independent
        dead: set[int] = set()
        for group in state.groups:
            if len(group) >= 2 and any(not external_ok[j] for j in group):
                dead.update(group)

        successes = 0
        for j, request in enumerate(state.requests):
            if j in dead:
                fulfilled = masked(request)
            else:
                fulfilled = (internal_ok[j] and external_ok[j]) or masked(request)
            if fulfilled:
                successes += 1
        return successes >= state.required_successes
