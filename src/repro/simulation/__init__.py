"""Monte Carlo fault-injection simulation — the analytic model's
independent cross-check."""

from repro.simulation.engine import MonteCarloSimulator, SimulationResult

__all__ = ["MonteCarloSimulator", "SimulationResult"]
