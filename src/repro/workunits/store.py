"""The resumable results store: a JSONL journal of work-unit attempts.

One append-only file per campaign, one JSON record per line:

- a **campaign header** (first line) naming the campaign fingerprint,
  unit count and config — resuming against the wrong store is a typed
  error, not silent result mixing;
- one **attempt record** per execution attempt of a unit (status
  ``done``/``failed``/``timeout``/``crashed``/``corrupt``, the result
  payload for successful attempts, the flattened error chain otherwise);
- a **quarantine record** when a unit exhausts its attempts;
- a **validation record** per redundant re-execution (match/mismatch).

Appends are atomic-enough for crash recovery: each record is a single
``write`` of one complete line, flushed and ``fsync``'d before the
supervisor moves on — so after a SIGKILL the journal contains every
acknowledged record plus at most one truncated trailing line, which
:func:`load_state` skips.  Replay is **idempotent**: loading a store any
number of times, or resuming a completed campaign, reconstructs the same
state and schedules no new work (property-tested).

The format is deliberately dumb — grep-able, ``jq``-able, mergeable by
concatenation of disjoint campaigns — and schema-checked by
``tools/validate_store.py`` in CI.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro import observability as obs
from repro.errors import CampaignStoreError

from repro.workunits.units import Campaign

__all__ = ["ResultStore", "StoreState", "SCHEMA"]

SCHEMA = "repro/workunits/1"

#: Attempt statuses a journal may record.  ``done`` is terminal for the
#: unit; the rest describe one failed attempt (the unit may still retry).
ATTEMPT_STATUSES = ("done", "failed", "timeout", "crashed", "corrupt")


@dataclass
class StoreState:
    """Replayed journal state: what a resumed campaign may skip.

    Attributes:
        header: the campaign header record (``None`` for a fresh store).
        results: ``unit_id -> result payload`` for units already done.
        attempts: ``unit_id -> attempts recorded so far``.
        quarantined: unit ids with a quarantine record.
        validated: unit ids with a validation record (any verdict).
        mismatches: unit ids whose validation record flagged a mismatch.
        records: total well-formed records replayed.
        skipped_lines: malformed/truncated lines ignored during replay.
    """

    header: dict | None = None
    results: dict[str, object] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)
    quarantined: set[str] = field(default_factory=set)
    validated: set[str] = field(default_factory=set)
    mismatches: set[str] = field(default_factory=set)
    records: int = 0
    skipped_lines: int = 0

    @property
    def campaign_id(self) -> str | None:
        return self.header.get("campaign") if self.header else None


def load_state(path: str | Path) -> StoreState:
    """Replay a journal file into a :class:`StoreState`.

    Tolerates a truncated trailing line (the partially-written record of
    a process killed mid-append) and ignores record kinds it does not
    know, so newer journals stay readable by older code.  A missing file
    replays to the empty state — resuming a campaign that never started
    is the same as starting it.
    """
    state = StoreState()
    path = Path(path)
    if not path.exists():
        return state
    with path.open("r", encoding="utf-8") as fh:
        lines = fh.readlines()
    for lineno, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            # a torn append: only legitimate as the very last line
            state.skipped_lines += 1
            continue
        if not isinstance(record, dict):
            state.skipped_lines += 1
            continue
        kind = record.get("kind")
        if kind == "campaign":
            if state.header is None:
                state.header = record
            state.records += 1
        elif kind == "attempt":
            unit = record.get("unit")
            if not isinstance(unit, str):
                state.skipped_lines += 1
                continue
            state.attempts[unit] = max(
                state.attempts.get(unit, 0), int(record.get("attempt", 0))
            )
            if record.get("status") == "done" and unit not in state.results:
                state.results[unit] = record.get("result")
            state.records += 1
        elif kind == "quarantine":
            unit = record.get("unit")
            if isinstance(unit, str):
                state.quarantined.add(unit)
            state.records += 1
        elif kind == "validation":
            unit = record.get("unit")
            if isinstance(unit, str):
                state.validated.add(unit)
                if record.get("match") is False:
                    state.mismatches.add(unit)
            state.records += 1
        else:
            state.skipped_lines += 1
    return state


class ResultStore:
    """Append-side handle on a campaign journal.

    Open with :meth:`for_campaign`, which replays any existing journal,
    verifies it belongs to the same campaign, and writes the header for a
    fresh file.  ``None``-path stores journal to memory only (unit tests,
    throwaway runs) — same interface, no durability.
    """

    def __init__(self, path: str | Path | None):
        self.path = Path(path) if path is not None else None
        self._fh = None
        self.memory: list[dict] = []

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def for_campaign(
        cls, path: str | Path | None, campaign: Campaign
    ) -> tuple["ResultStore", StoreState]:
        """Open (or create) the journal for ``campaign``; replay its state.

        Raises :class:`~repro.errors.CampaignStoreError` when the file
        belongs to a different campaign or is not a work-unit journal.
        """
        store = cls(path)
        state = load_state(path) if path is not None else StoreState()
        if state.records and state.header is None:
            raise CampaignStoreError(
                f"{path} is not a repro/workunits/1 journal "
                f"(no campaign header)"
            )
        if state.header is not None:
            if state.header.get("schema") != SCHEMA:
                raise CampaignStoreError(
                    f"{path}: unknown store schema "
                    f"{state.header.get('schema')!r} (expected {SCHEMA})"
                )
            if state.campaign_id != campaign.campaign_id:
                raise CampaignStoreError(
                    f"{path} was written for campaign "
                    f"{str(state.campaign_id)[:12]}..., not "
                    f"{campaign.campaign_id[:12]}... — same model, grid, "
                    f"seed and config are required to resume"
                )
        store._open()
        if state.header is None:
            store.append({
                "schema": SCHEMA,
                "kind": "campaign",
                "campaign": campaign.campaign_id,
                "campaign_kind": campaign.kind,
                "units": len(campaign.units),
                "config": dict(campaign.config),
            })
        return store, state

    def _open(self) -> None:
        if self.path is not None and self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- appends -----------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one record: single write, flush, fsync.

        A crash between fsyncs loses at most the current line, and a
        crash mid-write leaves a torn line that replay skips — either
        way every previously acknowledged record survives.
        """
        self.memory.append(record)
        if self._fh is None:
            return
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # -- journal helpers (the supervisor's vocabulary) ---------------------

    def record_attempt(
        self,
        unit_id: str,
        attempt: int,
        status: str,
        *,
        elapsed: float,
        result=None,
        error: str | None = None,
    ) -> None:
        if status not in ATTEMPT_STATUSES:  # pragma: no cover - internal
            raise ValueError(f"unknown attempt status {status!r}")
        record = {
            "kind": "attempt",
            "unit": unit_id,
            "attempt": attempt,
            "status": status,
            "elapsed": round(float(elapsed), 6),
        }
        if result is not None:
            record["result"] = result
        if error is not None:
            record["error"] = error
        self.append(record)
        obs.count(f"workunits.attempt.{status}")

    def record_quarantine(self, unit_id: str, attempts: int, error: str) -> None:
        self.append({
            "kind": "quarantine",
            "unit": unit_id,
            "attempts": attempts,
            "error": error,
        })
        obs.count("workunits.quarantined")

    def record_validation(
        self, unit_id: str, match: bool, error: str | None = None
    ) -> None:
        record = {"kind": "validation", "unit": unit_id, "match": bool(match)}
        if error is not None:
            record["error"] = error
        self.append(record)
        obs.count("workunits.validation.runs")
        if not match:
            obs.count("workunits.validation.mismatch")
