"""Fault-tolerant campaign execution over the batch/parallel stack.

The engine's process pools (:mod:`repro.engine.parallel`) are fail-fast:
a worker killed by the OOM killer sinks the whole run with one typed
error.  For long campaigns — thousand-point sweeps, overnight fuzz runs,
model-selection batches — that is the wrong trade.  This package adds the
BOINC-style layer on top:

- :mod:`~repro.workunits.units` — shard a campaign into self-describing
  :class:`WorkUnit` s with stable content-hash ids (same inputs ⇒ same
  ids, across processes, hosts and days);
- :mod:`~repro.workunits.store` — an append-only, fsync'd JSONL journal
  of every attempt, replayable into "what is already done";
- :mod:`~repro.workunits.supervisor` — dispatch to sacrificial worker
  processes with hard per-unit timeouts, crash detection, pool restarts,
  capped exponential backoff with deterministic jitter, quarantine for
  poison units, and optional redundant-execution validation;
- :mod:`~repro.workunits.runner` — reassemble completed campaigns into
  the sweep/batch/fuzz result shapes the rest of the stack renders.

On the command line: ``python -m repro sweep|batch|fuzz ... --store
results.jsonl``, then ``--resume`` after any interruption — the resumed
run skips journaled units and its output is bit-identical to an
uninterrupted run.
"""

from repro.workunits.runner import (
    assemble_batch,
    assemble_fuzz,
    assemble_sweep,
    run_campaign,
)
from repro.workunits.store import ResultStore, StoreState, load_state
from repro.workunits.supervisor import (
    CampaignReport,
    Supervisor,
    backoff_delay,
)
from repro.workunits.units import (
    Campaign,
    WorkUnit,
    batch_campaign,
    fuzz_campaign,
    sweep_campaign,
)

__all__ = [
    "Campaign",
    "CampaignReport",
    "ResultStore",
    "StoreState",
    "Supervisor",
    "WorkUnit",
    "assemble_batch",
    "assemble_fuzz",
    "assemble_sweep",
    "backoff_delay",
    "batch_campaign",
    "fuzz_campaign",
    "load_state",
    "run_campaign",
    "sweep_campaign",
]
