"""Assemble supervised campaign results back into the engine's shapes.

The supervisor deals in opaque unit payloads; this module turns a
finished :class:`~repro.workunits.supervisor.CampaignReport` back into
the objects the rest of the stack (and the CLI) already knows how to
render:

- sweep campaigns  → :class:`~repro.analysis.sweep.SweepResult`
  (quarantined slices appear as ``NaN`` — a hole, not a lie);
- batch campaigns  → ordered :class:`~repro.engine.batch.BatchEntry`
  rows with typed errors rebuilt by class name;
- fuzz campaigns   → :class:`~repro.robustness.harness.FuzzReport`.

Because unit payloads are bit-identical across runs (PR 5 determinism)
and the assembly here is pure bookkeeping, a resumed campaign's rendered
output is byte-for-byte the output of the uninterrupted run.
"""

from __future__ import annotations

import math

from repro.errors import EvaluationError, ReproError

from repro.workunits.supervisor import CampaignReport, Supervisor
from repro.workunits.units import Campaign

__all__ = [
    "assemble_batch",
    "assemble_fuzz",
    "assemble_sweep",
    "run_campaign",
]


def run_campaign(
    campaign: Campaign,
    store_path=None,
    **supervisor_options,
) -> CampaignReport:
    """Run ``campaign`` under a :class:`Supervisor`; journal to ``store_path``.

    Keyword options are forwarded to the supervisor (``jobs``,
    ``unit_timeout``, ``retries``, ``validate_redundancy``, ``budget``,
    ``chaos``, ``mode``, backoff tuning).
    """
    return Supervisor(campaign, **supervisor_options).run(store_path)


def assemble_sweep(campaign: Campaign, report: CampaignReport):
    """A :class:`~repro.analysis.sweep.SweepResult` from sweep units.

    Slices of quarantined units are filled with ``NaN`` so the grid keeps
    its shape — downstream tooling sees a visible hole instead of a
    silently shortened series.
    """
    import numpy as np

    from repro.analysis.sweep import SweepResult

    _require_kind(campaign, "sweep")
    config = campaign.config
    values: list[float] = []
    pfail: list[float] = []
    for unit in campaign.units:
        slice_values = [float(v) for v in unit.payload["values"]]
        values.extend(slice_values)
        payload = report.payload_for(unit)
        if payload is None:
            pfail.extend([math.nan] * len(slice_values))
        else:
            pfail.extend(float(v) for v in payload)
    return SweepResult(
        str(config.get("assembly", "")),
        str(config["service"]),
        str(config["parameter"]),
        np.asarray(values, dtype=float),
        np.asarray(pfail, dtype=float),
        dict(config["fixed"]),
    )


def _rebuild_error(name: str, message: str) -> ReproError:
    """A raisable typed error from a journaled ``(class name, message)``.

    Classes with non-trivial constructors fall back to
    :class:`EvaluationError` — the message still carries the original
    class name, and isinstance-based exit codes stay in the right family.
    """
    from repro import errors as errors_module

    cls = getattr(errors_module, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        try:
            return cls(message)
        except TypeError:
            pass
    return EvaluationError(f"{name}: {message}" if name else message)


def assemble_batch(campaign: Campaign, report: CampaignReport) -> list:
    """Ordered :class:`~repro.engine.batch.BatchEntry` rows from batch units.

    Entries of quarantined units become typed-error rows (class
    ``EvaluationError``, message naming the quarantine) at their original
    request index — the batch keeps submission order and length.
    """
    from repro.engine.batch import BatchEntry

    _require_kind(campaign, "batch")
    service = str(campaign.config["service"])
    entries: list = []
    for unit in campaign.units:
        label = str(unit.payload["label"])
        requested = {
            int(e["request_index"]): dict(e["actuals"])
            for e in unit.payload["entries"]
        }
        payload = report.payload_for(unit)
        if payload is None:
            reason = report.quarantined.get(
                unit.unit_id, "work unit not completed"
            )
            for index, actuals in requested.items():
                entries.append(BatchEntry(
                    index, label, service, actuals,
                    error=EvaluationError(
                        f"work unit {unit.unit_id[:12]} quarantined: "
                        f"{reason:.200}"
                    ),
                ))
            continue
        for record in payload:
            index = int(record["request_index"])
            actuals = requested[index]
            if "pfail" in record:
                entries.append(BatchEntry(
                    index, label, service, actuals,
                    pfail=float(record["pfail"]),
                    backend=str(record.get("backend", "")),
                ))
            else:
                entries.append(BatchEntry(
                    index, label, service, actuals,
                    error=_rebuild_error(
                        str(record.get("error", "")),
                        str(record.get("message", "")),
                    ),
                ))
    entries.sort(key=lambda entry: entry.index)
    return entries


def assemble_fuzz(campaign: Campaign, report: CampaignReport):
    """A :class:`~repro.robustness.harness.FuzzReport` from fuzz units.

    Cases of quarantined units are absent from the report (their count is
    visible in the campaign summary); present cases carry exactly the
    classification the sequential harness would have produced.
    """
    from repro.robustness.harness import FuzzCase, FuzzReport

    _require_kind(campaign, "fuzz")
    fuzz = FuzzReport()
    for unit in campaign.units:
        payload = report.payload_for(unit)
        if payload is None:
            continue
        for record in payload:
            fuzz.cases.append(FuzzCase(
                index=int(record["index"]),
                operator=str(record["operator"]),
                detail=str(record["detail"]),
                status=str(record["status"]),
                pfail=record.get("pfail"),
                tier=record.get("tier"),
                error=str(record.get("error") or ""),
            ))
    fuzz.cases.sort(key=lambda case: case.index)
    fuzz.elapsed = report.elapsed
    return fuzz


def _require_kind(campaign: Campaign, kind: str) -> None:
    if campaign.kind != kind:
        raise EvaluationError(
            f"expected a {kind} campaign, got {campaign.kind!r}"
        )
