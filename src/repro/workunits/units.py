"""Self-describing work units: shard a campaign into resumable pieces.

A :class:`WorkUnit` is the atom of a fault-tolerant campaign: everything a
fresh worker process — today or after a host restart — needs to produce
its slice of the results:

- the **model** as canonical ``repro/1`` JSON plus its structural
  fingerprint (live assemblies do not pickle and would not survive a
  restart anyway);
- the **configuration** that affects results (solver backend, kernel
  compilation, evaluation method, seeds);
- the **slice**: a contiguous run of grid values, batch points or fuzz
  cases.

Each unit carries a stable **content-hash id** — the SHA-256 of its
canonical JSON form — so a results journal written yesterday still knows
exactly which units of today's campaign are done: same inputs ⇒ same unit
ids ⇒ exact resume.  The PR 5 determinism audit guarantees the other half:
same unit ⇒ bit-identical result payload, which is what makes redundant
validation and resume-equals-uninterrupted possible at all.

Sharding is **independent of the worker count** (fixed slice sizes, not
``jobs``-derived), so a campaign started with ``--jobs 8`` can resume with
``--jobs 2`` and the unit ids still line up.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import EvaluationError
from repro.model.assembly import Assembly

__all__ = [
    "Campaign",
    "WorkUnit",
    "batch_campaign",
    "fuzz_campaign",
    "sweep_campaign",
]

#: Default slice sizes per campaign kind — small enough that losing a unit
#: to a crash wastes little work, large enough to amortize dispatch cost.
SWEEP_POINTS_PER_UNIT = 8
BATCH_POINTS_PER_UNIT = 4
FUZZ_CASES_PER_UNIT = 4

_SCHEMA = "repro/workunits/1"


def _canonical(document) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class WorkUnit:
    """One self-describing slice of a campaign.

    Attributes:
        kind: ``"sweep"``, ``"batch"`` or ``"fuzz"``.
        index: ordinal position within the campaign (0-based; chaos
            schedules and result assembly key on it).
        fingerprint: structural fingerprint of the model the unit
            evaluates (the batch kind may span one model per unit).
        config: result-affecting configuration (solver, compile, method,
            seed, trials, ...), shared across the campaign.
        payload: the slice itself — ``assembly_json`` plus kind-specific
            data (``values``/``entries``/``cases``).
    """

    kind: str
    index: int
    fingerprint: str
    config: Mapping[str, object]
    payload: Mapping[str, object]
    unit_id: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("sweep", "batch", "fuzz"):
            raise EvaluationError(f"unknown work-unit kind {self.kind!r}")
        if not self.unit_id:
            object.__setattr__(self, "unit_id", self._content_hash())

    def _content_hash(self) -> str:
        document = {
            "schema": _SCHEMA,
            "kind": self.kind,
            "index": self.index,
            "fingerprint": self.fingerprint,
            "config": dict(self.config),
            "payload": dict(self.payload),
        }
        return hashlib.sha256(_canonical(document).encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        """Plain-data form (shipped to workers, hashed for the id)."""
        return {
            "kind": self.kind,
            "index": self.index,
            "fingerprint": self.fingerprint,
            "config": dict(self.config),
            "payload": dict(self.payload),
            "unit_id": self.unit_id,
        }

    @classmethod
    def from_dict(cls, document: Mapping) -> "WorkUnit":
        return cls(
            kind=document["kind"],
            index=int(document["index"]),
            fingerprint=document["fingerprint"],
            config=dict(document["config"]),
            payload=dict(document["payload"]),
            unit_id=document.get("unit_id", ""),
        )


@dataclass(frozen=True)
class Campaign:
    """An ordered set of work units plus the shared configuration.

    The ``campaign_id`` digests the unit ids and config, so a results
    store written for one campaign refuses to resume a different one
    (different model, grid, seed or solver ⇒ different id).
    """

    kind: str
    units: tuple[WorkUnit, ...]
    config: Mapping[str, object]
    campaign_id: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.units:
            raise EvaluationError("a campaign needs at least one work unit")
        if not self.campaign_id:
            digest = hashlib.sha256()
            digest.update(_canonical(dict(self.config)).encode("utf-8"))
            for unit in self.units:
                digest.update(unit.unit_id.encode("ascii"))
            object.__setattr__(self, "campaign_id", digest.hexdigest())

    def __len__(self) -> int:
        return len(self.units)

    def unit_by_id(self, unit_id: str) -> WorkUnit:
        for unit in self.units:
            if unit.unit_id == unit_id:
                return unit
        raise EvaluationError(f"no unit {unit_id!r} in this campaign")


def _slices(count: int, per_unit: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` slices of fixed size (last may be short)."""
    per_unit = max(1, int(per_unit))
    return [
        (start, min(start + per_unit, count))
        for start in range(0, count, per_unit)
    ]


def _per_unit(total: int, units: int | None, default: int) -> int:
    """Slice size from an explicit unit-count request or the kind default."""
    if units is None:
        return default
    units = int(units)
    if units < 1:
        raise EvaluationError(f"units must be >= 1, got {units}")
    return max(1, -(-total // units))  # ceil division


# ---------------------------------------------------------------------------
# campaign builders
# ---------------------------------------------------------------------------


def sweep_campaign(
    assembly: Assembly,
    service: str,
    parameter: str,
    values: Sequence[float],
    fixed: Mapping[str, float] | None = None,
    *,
    method: str = "symbolic",
    solver: str = "auto",
    compile: bool = True,
    incremental: bool = False,
    units: int | None = None,
) -> Campaign:
    """Shard a parameter sweep into work units.

    Mirrors :func:`repro.analysis.sweep_parameter`: each unit evaluates a
    contiguous slice of the grid through the same backend, so the
    concatenated unit payloads are element-for-element identical to the
    sequential sweep.

    Args:
        assembly: the assembly under analysis.
        service: the evaluated service name.
        parameter: the swept formal parameter.
        values: the full grid (ascending or not — order is preserved).
        fixed: the non-swept actuals.
        method: ``"symbolic"`` or ``"numeric"`` (as in ``sweep_parameter``).
        solver: linear-solver backend for the numeric method.
        compile: kernel compilation for the symbolic method.
        incremental: low-rank (Sherman-Morrison-Woodbury) re-solve updates
            for the numeric method (:mod:`repro.markov.updates`); recorded
            in the config — and the campaign id — only when enabled, so
            journals written before the flag existed still resume.
        units: optional shard count (default: ``ceil(points / 8)``).
    """
    from repro.engine.fingerprint import assembly_fingerprint, canonical_json

    if method not in ("symbolic", "numeric"):
        raise EvaluationError(f"unknown sweep method {method!r}")
    grid = [float(v) for v in values]
    if not grid:
        raise EvaluationError("sweep values must be a non-empty sequence")
    # same formal-parameter validation as the direct sweep path
    svc = assembly.service(service)
    if parameter not in svc.formal_parameters:
        raise EvaluationError(
            f"{parameter!r} is not a formal parameter of {service!r} "
            f"(has {svc.formal_parameters})"
        )
    assembly_json = canonical_json(assembly)
    fingerprint = assembly_fingerprint(assembly)
    config = {
        "assembly": assembly.name,
        "method": method,
        "solver": str(solver),
        "compile": bool(compile),
        "service": service,
        "parameter": parameter,
        "fixed": {k: float(v) for k, v in dict(fixed or {}).items()},
    }
    if incremental:
        config["incremental"] = True
    per_unit = _per_unit(len(grid), units, SWEEP_POINTS_PER_UNIT)
    built = [
        WorkUnit(
            kind="sweep",
            index=index,
            fingerprint=fingerprint,
            config=config,
            payload={
                "assembly_json": assembly_json,
                "start": start,
                "values": grid[start:stop],
            },
        )
        for index, (start, stop) in enumerate(_slices(len(grid), per_unit))
    ]
    return Campaign("sweep", tuple(built), {**config, "points": len(grid)})


def batch_campaign(
    models: Sequence[tuple[str, Assembly]],
    service: str,
    points: Sequence[Mapping[str, float]] | None,
    *,
    solver: str = "auto",
    compile: bool = True,
    incremental: bool = False,
    fused: bool = True,
    units: int | None = None,
) -> Campaign:
    """Shard a batch (many models × many points) into work units.

    Requests enumerate exactly as ``python -m repro batch`` does — every
    model at every point, models outermost — and each request keeps its
    global ``request_index`` so results reassemble in submission order.
    Units never span models (each carries one model's JSON).

    Args:
        models: ``(label, assembly)`` pairs, in submission order.
        points: the evaluation points; ``None`` evaluates each model at
            its domain-representative defaults (as the CLI does).
        solver: linear-solver backend threaded into every plan.
        compile: evaluate through compiled kernels.
        incremental: low-rank re-solve updates for numeric plan backends
            (recorded in the config only when enabled, as in
            :func:`sweep_campaign`).
        fused: stacked-kernel evaluation of a unit's symbolic entries
            (default on).  Recorded in the config — and the campaign id —
            only when *disabled*, so journals written before the flag
            existed resume as fused and default-on campaigns hash
            identically either side of the change.
        units: optional shard count (default: ``ceil(requests / 4)``).
    """
    from repro.engine.fingerprint import assembly_fingerprint, canonical_json
    from repro.robustness.harness import domain_representative

    if not models:
        raise EvaluationError("a batch campaign needs at least one model")
    config = {"solver": str(solver), "compile": bool(compile),
              "service": service}
    if incremental:
        config["incremental"] = True
    if not fused:
        config["fused"] = False
    total = 0
    per_model: list[tuple[str, Assembly, list[dict]]] = []
    for label, assembly in models:
        if points is None:
            svc = assembly.service(service)
            model_points = [{
                p.name: domain_representative(p.domain)
                for p in svc.interface.formal_parameters
            }]
        else:
            model_points = [dict(p) for p in points]
        entries = []
        for point in model_points:
            entries.append({
                "request_index": total,
                "actuals": {k: float(v) for k, v in point.items()},
            })
            total += 1
        per_model.append((label, assembly, entries))

    per_unit = _per_unit(total, units, BATCH_POINTS_PER_UNIT)
    built: list[WorkUnit] = []
    for label, assembly, entries in per_model:
        assembly_json = canonical_json(assembly)
        fingerprint = assembly_fingerprint(assembly)
        for start, stop in _slices(len(entries), per_unit):
            built.append(
                WorkUnit(
                    kind="batch",
                    index=len(built),
                    fingerprint=fingerprint,
                    config=config,
                    payload={
                        "assembly_json": assembly_json,
                        "label": label,
                        "entries": entries[start:stop],
                    },
                )
            )
    return Campaign("batch", tuple(built), {**config, "requests": total})


def fuzz_campaign(
    assembly: Assembly,
    count: int,
    *,
    seed: int = 0,
    service: str | None = None,
    actuals: Mapping[str, float] | None = None,
    trials: int = 2_000,
    deadline: float = 10.0,
    operators: tuple[str, ...] | None = None,
    units: int | None = None,
) -> Campaign:
    """Shard a fuzz campaign into work units.

    The mutation corpus is generated here, up front, in the exact order
    :class:`~repro.robustness.FuzzHarness` would generate it (same seed ⇒
    same corpus), then sliced into blocks.  Each case's simulation seed
    depends only on its index, so a case classifies identically no matter
    which worker, attempt or resumed run executes it.

    Args:
        assembly: the healthy base assembly to corrupt.
        count: number of mutated models.
        seed: mutation + simulation seed.
        service: target service (default: auto-detected top composite).
        actuals: actual parameters (default: domain representatives).
        trials: Monte Carlo trials for the degradation tier.
        deadline: per-case cooperative wall-clock budget in seconds.
        operators: restrict mutation operators (default: all).
        units: optional shard count (default: ``ceil(count / 4)``).
    """
    from repro.engine.fingerprint import assembly_fingerprint
    from repro.robustness.harness import default_target
    from repro.robustness.mutator import ModelMutator

    if count < 1:
        raise EvaluationError(f"fuzz count must be >= 1, got {count}")
    if service is None or actuals is None:
        detected_service, detected_actuals = default_target(assembly)
        service = service if service is not None else detected_service
        actuals = actuals if actuals is not None else detected_actuals
    mutator = ModelMutator(assembly, seed=seed, operators=operators)
    corpus = [
        {
            "index": index,
            "operator": mutation.operator,
            "detail": mutation.detail,
            "data": mutation.data,
            "text": mutation.text,
        }
        for index, mutation in enumerate(mutator.generate(count))
    ]
    fingerprint = assembly_fingerprint(assembly)
    config = {
        "service": service,
        "actuals": {k: float(v) for k, v in dict(actuals).items()},
        "seed": int(seed),
        "trials": int(trials),
        "deadline": float(deadline),
    }
    per_unit = _per_unit(count, units, FUZZ_CASES_PER_UNIT)
    built = [
        WorkUnit(
            kind="fuzz",
            index=index,
            fingerprint=fingerprint,
            config=config,
            payload={"cases": corpus[start:stop]},
        )
        for index, (start, stop) in enumerate(_slices(count, per_unit))
    ]
    return Campaign("fuzz", tuple(built), {**config, "count": count})
