"""The campaign worker: execute one work unit in a sacrificial process.

Module-level and driven entirely by plain-data payloads (process pools
pickle by name), like :mod:`repro.engine.parallel`'s workers — but with a
harder contract: the supervisor assumes a worker may **die, hang or lie**
at any point, so nothing here is trusted until the parent has validated
the returned payload shape.

A worker payload carries the unit's dict form, the attempt number, a
cooperative deadline (the smaller of the per-unit timeout and the
campaign budget's remaining time), and optionally a
:class:`~repro.robustness.chaos.ChaosPolicy` — the fault-injection hook
the chaos tests and the chaos-smoke CI job use to force crashes, hangs
and corrupted results on schedule.

Outcomes are dicts, not exceptions: ``{"status": "done", "payload": ...}``
or ``{"status": "failed", "error": "<flattened cause chain>"}``.  Typed
errors inside a unit are *data* (the unit will be retried or
quarantined); only infrastructure death (no return at all) is left for
the supervisor to detect.
"""

from __future__ import annotations

import time

from repro.engine.parallel import (
    _begin_worker_observation,
    _ship_worker_observation,
    worker_budget,
)
from repro.errors import ReproError, format_error_chain

__all__ = ["execute_unit", "validate_payload"]


def execute_unit(payload: dict) -> dict:
    """Execute one work unit; returns an outcome dict (never raises
    :class:`~repro.errors.ReproError`).

    Payload keys: ``unit`` (dict form of a
    :class:`~repro.workunits.units.WorkUnit`), ``attempt`` (1-based),
    ``deadline`` (cooperative seconds or ``None``), ``chaos`` (optional
    :class:`~repro.robustness.chaos.ChaosPolicy`), plus the standard
    ``observe``/``dispatched_at`` observability keys.
    """
    owned = _begin_worker_observation(payload)
    unit = payload["unit"]
    attempt = int(payload.get("attempt", 1))
    chaos = payload.get("chaos")
    if chaos is not None:
        chaos.apply_before(unit["index"], attempt)
    budget = worker_budget(payload.get("deadline"))
    started = time.perf_counter()
    try:
        result = _EXECUTORS[unit["kind"]](unit, budget)
        outcome = {"status": "done", "payload": result}
    except ReproError as exc:
        outcome = {"status": "failed", "error": format_error_chain(exc)}
    outcome["elapsed"] = time.perf_counter() - started
    if chaos is not None:
        outcome = chaos.corrupt_outcome(unit["index"], attempt, outcome)
    return _ship_worker_observation(outcome, owned)


# ---------------------------------------------------------------------------
# kind-specific executors
# ---------------------------------------------------------------------------


def _execute_sweep(unit: dict, budget) -> list[float]:
    from repro.dsl import load_assembly

    config = unit["config"]
    values = [float(v) for v in unit["payload"]["values"]]
    assembly = load_assembly(unit["payload"]["assembly_json"])
    if config["method"] == "numeric":
        from repro.core.evaluator import ReliabilityEvaluator

        evaluator = ReliabilityEvaluator(
            assembly, validate=False, check_domains=False, budget=budget,
            solver=config["solver"],
            incremental=bool(config.get("incremental", False)),
        )
        fixed = config["fixed"]
        parameter = config["parameter"]
        return [
            float(evaluator.pfail(
                config["service"], **{**fixed, parameter: v}
            ))
            for v in values
        ]
    from repro.engine.plan import compile_plan

    plan = compile_plan(
        assembly, config["service"], backend="symbolic", budget=budget
    )
    grid = plan.pfail_grid(
        config["parameter"], values, config["fixed"],
        budget=budget, use_kernel=config["compile"],
    )
    return [float(v) for v in grid]


def _execute_batch(unit: dict, budget) -> list[dict]:
    from repro.dsl import load_assembly
    from repro.engine.plan import compile_plan

    config = unit["config"]
    assembly = load_assembly(unit["payload"]["assembly_json"])
    plan = compile_plan(
        assembly, config["service"], budget=budget, solver=config["solver"],
        incremental=bool(config.get("incremental", False)),
    )
    unit_entries = unit["payload"]["entries"]
    if (
        config.get("fused", True)
        and plan.backend == "symbolic"
        and len(unit_entries) > 1
    ):
        # one stacked kernel call for the whole unit (bitwise-identical
        # to the loop); any error falls back so isolation stays per-point
        try:
            stacked = plan.pfail_stack(
                [entry["actuals"] for entry in unit_entries],
                budget=budget, use_kernel=config["compile"],
            )
        except ReproError:
            pass
        else:
            return [
                {
                    "request_index": int(entry["request_index"]),
                    "pfail": float(stacked[i]),
                    "backend": plan.backend,
                }
                for i, entry in enumerate(unit_entries)
            ]
    entries: list[dict] = []
    for entry in unit_entries:
        record = {"request_index": int(entry["request_index"])}
        try:
            record["pfail"] = float(plan.pfail(
                entry["actuals"], budget=budget,
                use_kernel=config["compile"],
            ))
            record["backend"] = plan.backend
        except ReproError as exc:
            # per-point isolation, as in BatchEngine: a bad point is a
            # typed error entry, not a failed unit
            record["error"] = type(exc).__name__
            record["message"] = format_error_chain(exc)
        entries.append(record)
    return entries


def _execute_fuzz(unit: dict, budget) -> list[dict]:
    from repro.robustness.harness import run_fuzz_case
    from repro.robustness.mutator import Mutation

    config = unit["config"]
    cases: list[dict] = []
    for doc in unit["payload"]["cases"]:
        mutation = Mutation(
            doc["operator"], doc["detail"],
            data=doc.get("data"), text=doc.get("text"),
        )
        case = run_fuzz_case(
            int(doc["index"]),
            mutation,
            service=config["service"],
            actuals=config["actuals"],
            seed=config["seed"],
            trials=config["trials"],
            deadline=config["deadline"],
        )
        cases.append({
            "index": case.index,
            "operator": case.operator,
            "detail": case.detail,
            "status": case.status,
            "pfail": case.pfail,
            "tier": case.tier,
            "error": case.error,
        })
    return cases


_EXECUTORS = {
    "sweep": _execute_sweep,
    "batch": _execute_batch,
    "fuzz": _execute_fuzz,
}


# ---------------------------------------------------------------------------
# parent-side payload validation (workers may lie)
# ---------------------------------------------------------------------------


def validate_payload(unit: dict, payload) -> str | None:
    """Why ``payload`` is not a plausible result for ``unit`` (or ``None``).

    The supervisor treats an implausible payload exactly like a failed
    attempt (status ``corrupt``): retried, then quarantined.  Checks are
    structural — count and types — because the parent cannot recompute
    the values without redoing the work (that is what
    ``--validate-redundancy`` is for).
    """
    kind = unit["kind"]
    if kind == "sweep":
        expected = len(unit["payload"]["values"])
        if not isinstance(payload, list) or len(payload) != expected:
            return f"expected {expected} floats, got {payload!r:.80}"
        if not all(isinstance(v, float) for v in payload):
            return "non-float grid value in payload"
        return None
    if kind == "batch":
        entries = unit["payload"]["entries"]
        if not isinstance(payload, list) or len(payload) != len(entries):
            return f"expected {len(entries)} entries, got {payload!r:.80}"
        for record in payload:
            if not isinstance(record, dict) or "request_index" not in record:
                return "malformed batch entry record"
            if "pfail" not in record and "error" not in record:
                return "batch entry carries neither pfail nor error"
        return None
    if kind == "fuzz":
        cases = unit["payload"]["cases"]
        if not isinstance(payload, list) or len(payload) != len(cases):
            return f"expected {len(cases)} cases, got {payload!r:.80}"
        for record in payload:
            if not isinstance(record, dict) or "status" not in record:
                return "malformed fuzz case record"
        return None
    return f"unknown unit kind {kind!r}"  # pragma: no cover - ctor rejects
