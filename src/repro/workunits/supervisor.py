"""The campaign supervisor: dispatch, watch, retry, quarantine.

The supervisor turns the engine's fail-fast process pool into a
fault-tolerant campaign runner.  Its failure model is the BOINC/MapReduce
one — any worker may

- **crash** (SIGKILL, OOM): the pool breaks; every in-flight unit is
  charged a ``crashed`` attempt (attribution is impossible once the pool
  is dead), the pool is rebuilt and the survivors retry — so a *poison
  unit* that kills its host every time accumulates attempts fastest and
  ends in quarantine instead of an infinite crash loop;
- **hang** (stuck solve, livelock): each unit carries a hard wall-clock
  timeout enforced *from the parent*: overdue units get their pool
  processes terminated (then killed), a ``timeout`` attempt charged, and
  innocent co-scheduled units are re-enqueued uncharged;
- **lie** (bit flips, truncated writes): payloads are shape-validated on
  receipt; implausible ones are charged a ``corrupt`` attempt.

Retries back off exponentially (capped) with **deterministic jitter**
derived from the unit id — reproducible schedules, no thundering herd.
After ``retries`` failed attempts a unit is quarantined: recorded,
reported, and never allowed to sink the campaign.

Every attempt is journaled through :class:`~repro.workunits.store.ResultStore`
before the supervisor acts on it, so a campaign killed at *any* point
resumes exactly where the journal ends.
"""

from __future__ import annotations

import hashlib
import heapq
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from repro import observability as obs
from repro.errors import EvaluationError, format_error_chain
from repro.runtime.budget import EvaluationBudget

from repro.workunits.store import ResultStore, StoreState
from repro.workunits.units import Campaign, WorkUnit
from repro.workunits.worker import execute_unit, validate_payload

__all__ = ["CampaignReport", "Supervisor", "backoff_delay"]

#: Default retry envelope: 1 + RETRIES attempts per unit.
DEFAULT_RETRIES = 2
BACKOFF_BASE = 0.05
BACKOFF_CAP = 5.0


def backoff_delay(
    unit_id: str,
    attempt: int,
    base: float = BACKOFF_BASE,
    cap: float = BACKOFF_CAP,
) -> float:
    """Capped exponential backoff with deterministic jitter.

    ``min(cap, base * 2^(attempt-1))`` stretched by up to +50%, where the
    jitter is a hash of ``(unit id, attempt)`` — so retry schedules are
    reproducible run-to-run yet decorrelated unit-to-unit.
    """
    if base <= 0.0:
        return 0.0
    delay = min(cap, base * (2.0 ** (attempt - 1)))
    digest = hashlib.sha256(f"{unit_id}:{attempt}".encode("ascii")).hexdigest()
    jitter = int(digest[:8], 16) / 0xFFFFFFFF
    return delay * (1.0 + 0.5 * jitter)


@dataclass
class CampaignReport:
    """What happened to a campaign run (fresh or resumed)."""

    campaign: Campaign
    results: dict[str, object] = field(default_factory=dict)
    quarantined: dict[str, str] = field(default_factory=dict)
    executed: set[str] = field(default_factory=set)
    resumed: int = 0
    attempts: int = 0
    pool_restarts: int = 0
    validations: int = 0
    mismatches: dict[str, str] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def complete(self) -> bool:
        """True when every unit is accounted for (done or quarantined)."""
        return len(self.results) + len(self.quarantined) == len(self.campaign)

    @property
    def ok(self) -> bool:
        """True when every unit completed and every validation matched."""
        return self.complete and not self.quarantined and not self.mismatches

    def payload_for(self, unit: WorkUnit):
        """The unit's result payload, or ``None`` if quarantined."""
        return self.results.get(unit.unit_id)

    def summary(self) -> str:
        """Human-readable campaign outcome (printed to stderr by the CLI)."""
        total = len(self.campaign)
        lines = [
            f"campaign {self.campaign.kind} "
            f"{self.campaign.campaign_id[:12]}: "
            f"{len(self.results)}/{total} units done "
            f"({self.resumed} resumed, {len(self.executed)} executed), "
            f"{len(self.quarantined)} quarantined",
            f"  attempts this run: {self.attempts}, "
            f"pool restarts: {self.pool_restarts}, "
            f"validations: {self.validations} "
            f"({len(self.mismatches)} mismatched), "
            f"elapsed: {self.elapsed:.1f}s",
        ]
        for unit_id, error in sorted(self.quarantined.items()):
            lines.append(f"  QUARANTINED {unit_id[:12]}: {error:.120}")
        for unit_id, error in sorted(self.mismatches.items()):
            lines.append(f"  MISMATCH {unit_id[:12]}: {error:.120}")
        return "\n".join(lines)


@dataclass
class _Flight:
    """Book-keeping for one dispatched attempt."""

    unit: WorkUnit
    attempt: int
    overdue_at: float | None  # monotonic deadline, None = no timeout


class Supervisor:
    """Run a :class:`~repro.workunits.units.Campaign` to completion.

    Args:
        campaign: the sharded campaign to run.
        jobs: worker processes (``resolve_jobs`` semantics: 0 = all cores).
        unit_timeout: hard per-attempt wall-clock seconds (``None`` = no
            timeout; hung workers then run until the budget or forever).
        retries: failed attempts a unit may retry before quarantine
            (``max attempts = retries + 1``).
        validate_redundancy: when >= 2, every ``N``-th completed unit
            (deterministically sampled by id) is re-executed once and the
            payloads compared — a cheap nondeterminism tripwire.
        budget: optional campaign-wide :class:`EvaluationBudget`; its
            remaining time caps every unit's cooperative deadline and the
            supervisor load-sheds (typed error) when it expires.
        chaos: optional :class:`~repro.robustness.chaos.ChaosPolicy`
            shipped to workers — fault injection for tests and CI.
        mode: ``"process"`` (sacrificial pool, the default) or
            ``"inline"`` (in-process sequential execution; refuses
            crash/hang chaos, enforces no hard timeouts — for doctests
            and unit tests only).
        backoff_base / backoff_cap: retry backoff envelope in seconds.
    """

    def __init__(
        self,
        campaign: Campaign,
        *,
        jobs: int = 1,
        unit_timeout: float | None = None,
        retries: int = DEFAULT_RETRIES,
        validate_redundancy: int = 0,
        budget: EvaluationBudget | None = None,
        chaos=None,
        mode: str = "process",
        backoff_base: float = BACKOFF_BASE,
        backoff_cap: float = BACKOFF_CAP,
    ):
        from repro.engine.parallel import resolve_jobs

        if mode not in ("process", "inline"):
            raise EvaluationError(f"unknown supervisor mode {mode!r}")
        if retries < 0:
            raise EvaluationError(f"retries must be >= 0, got {retries}")
        if unit_timeout is not None and unit_timeout <= 0:
            raise EvaluationError(
                f"unit timeout must be positive, got {unit_timeout}"
            )
        if mode == "inline" and chaos is not None and chaos.needs_isolation:
            raise EvaluationError(
                "crash/hang chaos requires process isolation "
                "(mode='inline' would kill or stall the supervisor itself)"
            )
        self.campaign = campaign
        self.jobs = max(1, resolve_jobs(jobs))
        self.unit_timeout = unit_timeout
        self.max_attempts = retries + 1
        self.validate_redundancy = int(validate_redundancy)
        self.budget = budget
        self.chaos = chaos
        self.mode = mode
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap

    # -- entry point -------------------------------------------------------

    def run(self, store_path: str | Path | None = None) -> CampaignReport:
        """Execute the campaign, journaling to ``store_path`` (if given).

        An existing journal for the *same* campaign is resumed: done units
        are skipped (their recorded payloads reused bit-for-bit),
        quarantined units stay quarantined, and interrupted units keep
        their attempt counts.  Returns a :class:`CampaignReport`.
        """
        started = time.monotonic()
        report = CampaignReport(self.campaign)
        with obs.span(
            "workunits.campaign",
            kind=self.campaign.kind,
            units=len(self.campaign),
            jobs=self.jobs,
            mode=self.mode,
        ) as sp:
            store, state = ResultStore.for_campaign(store_path, self.campaign)
            try:
                pending = self._absorb_state(state, report)
                if pending:
                    if self.mode == "inline":
                        self._run_inline(pending, state, store, report)
                    else:
                        self._run_pool(pending, state, store, report)
                self._validate(store, report)
            finally:
                store.close()
            sp.set_tag(
                done=len(report.results),
                quarantined=len(report.quarantined),
                restarts=report.pool_restarts,
            )
        report.elapsed = time.monotonic() - started
        return report

    # -- resume ------------------------------------------------------------

    def _absorb_state(
        self, state: StoreState, report: CampaignReport
    ) -> list[WorkUnit]:
        """Fold the replayed journal into the report; return work left."""
        pending: list[WorkUnit] = []
        for unit in self.campaign.units:
            if unit.unit_id in state.results:
                report.results[unit.unit_id] = state.results[unit.unit_id]
                report.resumed += 1
                obs.count("workunits.resume.skipped")
            elif unit.unit_id in state.quarantined:
                report.quarantined[unit.unit_id] = "quarantined in prior run"
            else:
                pending.append(unit)
        return pending

    # -- shared attempt bookkeeping ---------------------------------------

    def _dispatch_payload(self, unit: WorkUnit, attempt: int) -> dict:
        deadline = self.unit_timeout
        if self.budget is not None:
            deadline = self.budget.sub_deadline(self.unit_timeout)
            self.budget.check_deadline("work-unit campaign")
        return {
            "unit": unit.to_dict(),
            "attempt": attempt,
            "deadline": deadline,
            "chaos": self.chaos,
            "observe": obs.enabled(),
            "dispatched_at": time.time(),
        }

    def _complete(
        self,
        unit: WorkUnit,
        attempt: int,
        payload,
        elapsed: float,
        store: ResultStore,
        report: CampaignReport,
    ) -> None:
        store.record_attempt(
            unit.unit_id, attempt, "done", elapsed=elapsed, result=payload
        )
        obs.observe("workunits.attempt.seconds", elapsed)
        report.results[unit.unit_id] = payload
        report.executed.add(unit.unit_id)
        report.attempts += 1

    def _fail(
        self,
        unit: WorkUnit,
        attempt: int,
        status: str,
        error: str,
        elapsed: float,
        store: ResultStore,
        report: CampaignReport,
        state: StoreState,
    ) -> float | None:
        """Journal a failed attempt; return the retry delay (None = quarantined)."""
        store.record_attempt(
            unit.unit_id, attempt, status, elapsed=elapsed, error=error
        )
        obs.observe("workunits.attempt.seconds", elapsed)
        state.attempts[unit.unit_id] = attempt
        report.attempts += 1
        if attempt >= self.max_attempts:
            store.record_quarantine(unit.unit_id, attempt, error)
            report.quarantined[unit.unit_id] = error
            return None
        delay = backoff_delay(
            unit.unit_id, attempt, self.backoff_base, self.backoff_cap
        )
        obs.count("workunits.retry")
        obs.observe("workunits.backoff.seconds", delay)
        return delay

    def _classify(self, unit: WorkUnit, raw) -> tuple[str, object, str, float]:
        """Turn a worker return value into ``(status, payload, error, elapsed)``."""
        from repro.engine.parallel import unpack_worker_payload

        outcome = unpack_worker_payload(raw)
        if not isinstance(outcome, dict) or "status" not in outcome:
            return "corrupt", None, f"malformed worker outcome {outcome!r:.80}", 0.0
        elapsed = float(outcome.get("elapsed", 0.0) or 0.0)
        if outcome["status"] == "done":
            payload = outcome.get("payload")
            problem = validate_payload(unit.to_dict(), payload)
            if problem is not None:
                return "corrupt", None, f"implausible payload: {problem}", elapsed
            return "done", payload, "", elapsed
        if outcome["status"] == "failed":
            return "failed", None, str(outcome.get("error", "unknown")), elapsed
        return (
            "corrupt", None,
            f"unknown outcome status {outcome.get('status')!r}", elapsed,
        )

    # -- inline execution (tests, doctests) --------------------------------

    def _run_inline(
        self,
        pending: list[WorkUnit],
        state: StoreState,
        store: ResultStore,
        report: CampaignReport,
    ) -> None:
        ready: list[tuple[float, int, WorkUnit]] = []
        seq = 0
        for unit in pending:
            heapq.heappush(ready, (0.0, seq, unit))
            seq += 1
        while ready:
            not_before, _, unit = heapq.heappop(ready)
            delay = not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            attempt = state.attempts.get(unit.unit_id, 0) + 1
            obs.count("workunits.dispatched")
            obs.gauge("workunits.pending", len(ready) + 1)
            raw = execute_unit(self._dispatch_payload(unit, attempt))
            status, payload, error, elapsed = self._classify(unit, raw)
            if status == "done":
                self._complete(unit, attempt, payload, elapsed, store, report)
                continue
            retry_in = self._fail(
                unit, attempt, status, error, elapsed, store, report, state
            )
            if retry_in is not None:
                heapq.heappush(
                    ready, (time.monotonic() + retry_in, seq, unit)
                )
                seq += 1
        obs.gauge("workunits.pending", 0)

    # -- pooled execution --------------------------------------------------

    def _run_pool(
        self,
        pending: list[WorkUnit],
        state: StoreState,
        store: ResultStore,
        report: CampaignReport,
    ) -> None:
        ready: list[tuple[float, int, WorkUnit]] = []
        seq = 0
        for unit in pending:
            heapq.heappush(ready, (0.0, seq, unit))
            seq += 1
        executor = self._make_pool()
        inflight: dict = {}  # future -> _Flight
        try:
            while ready or inflight:
                if self.budget is not None:
                    self.budget.check_deadline("work-unit campaign")
                now = time.monotonic()
                # dispatch up to `jobs` units so submission ~= start and
                # the per-unit timeout measures actual runtime
                while (
                    ready and len(inflight) < self.jobs
                    and ready[0][0] <= now
                ):
                    _, _, unit = heapq.heappop(ready)
                    attempt = state.attempts.get(unit.unit_id, 0) + 1
                    future = executor.submit(
                        execute_unit, self._dispatch_payload(unit, attempt)
                    )
                    overdue_at = (
                        now + self.unit_timeout
                        if self.unit_timeout is not None else None
                    )
                    inflight[future] = _Flight(unit, attempt, overdue_at)
                    obs.count("workunits.dispatched")
                obs.gauge(
                    "workunits.pending", len(ready) + len(inflight)
                )
                if not inflight:
                    # nothing running: sleep until the next retry matures
                    time.sleep(max(0.0, ready[0][0] - time.monotonic()))
                    continue
                done = self._await_some(ready, inflight)
                broken = False
                for future in done:
                    flight = inflight.pop(future)
                    try:
                        raw = future.result()
                    except BrokenProcessPool:
                        # the pool died; this future carried no result —
                        # keep harvesting the ones that finished before the
                        # break, then charge whatever is left in flight
                        inflight[future] = flight
                        broken = True
                        continue
                    except Exception as exc:  # worker bug surfaced via pickle
                        retry_in = self._fail(
                            flight.unit, flight.attempt, "failed",
                            format_error_chain(exc), 0.0,
                            store, report, state,
                        )
                        if retry_in is not None:
                            heapq.heappush(
                                ready,
                                (time.monotonic() + retry_in, seq, flight.unit),
                            )
                            seq += 1
                        continue
                    status, payload, error, elapsed = self._classify(
                        flight.unit, raw
                    )
                    if status == "done":
                        self._complete(
                            flight.unit, flight.attempt, payload, elapsed,
                            store, report,
                        )
                        continue
                    retry_in = self._fail(
                        flight.unit, flight.attempt, status, error, elapsed,
                        store, report, state,
                    )
                    if retry_in is not None:
                        heapq.heappush(
                            ready,
                            (time.monotonic() + retry_in, seq, flight.unit),
                        )
                        seq += 1
                if broken:
                    seq = self._handle_broken_pool(
                        inflight, ready, seq, store, report, state
                    )
                    self._destroy_pool(executor)
                    executor = self._make_pool()
                    report.pool_restarts += 1
                    obs.count("workunits.pool_restarts")
                    continue
                seq, restarted = self._enforce_timeouts(
                    executor, inflight, ready, seq, store, report, state
                )
                if restarted:
                    executor = self._make_pool()
                    report.pool_restarts += 1
                    obs.count("workunits.pool_restarts")
        finally:
            self._destroy_pool(executor)
        obs.gauge("workunits.pending", 0)

    def _make_pool(self):
        """A sacrificial process pool — even ``jobs=1`` gets one, because
        isolation (not parallelism) is what the supervisor needs."""
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=self.jobs)

    def _await_some(self, ready, inflight):
        """Block until a future resolves, a timeout nears, or a retry matures."""
        now = time.monotonic()
        horizon = 0.5
        if ready:
            horizon = min(horizon, max(0.0, ready[0][0] - now))
        for flight in inflight.values():
            if flight.overdue_at is not None:
                horizon = min(horizon, max(0.0, flight.overdue_at - now))
        done, _ = wait(
            list(inflight), timeout=max(horizon, 0.01),
            return_when=FIRST_COMPLETED,
        )
        return done

    def _handle_broken_pool(
        self, inflight, ready, seq, store, report, state
    ) -> int:
        """Charge a ``crashed`` attempt to every unit the dead pool held."""
        obs.count("engine.worker_crashes")
        for future, flight in inflight.items():
            retry_in = self._fail(
                flight.unit, flight.attempt, "crashed",
                "worker process died unexpectedly (SIGKILL/OOM or native "
                "crash); attribution impossible, all in-flight units charged",
                0.0, store, report, state,
            )
            if retry_in is not None:
                heapq.heappush(
                    ready, (time.monotonic() + retry_in, seq, flight.unit)
                )
                seq += 1
        inflight.clear()
        return seq

    def _enforce_timeouts(
        self, executor, inflight, ready, seq, store, report, state
    ) -> tuple[int, bool]:
        """Kill the pool when any in-flight unit is past its hard deadline.

        Overdue units are charged a ``timeout`` attempt; innocents that
        were merely co-resident in the killed pool are re-enqueued with no
        attempt charged (their work is lost but not their retry budget).
        """
        now = time.monotonic()
        overdue = [
            (future, flight)
            for future, flight in inflight.items()
            if flight.overdue_at is not None and now >= flight.overdue_at
        ]
        if not overdue:
            return seq, False
        self._destroy_pool(executor)
        overdue_futures = {future for future, _ in overdue}
        for future, flight in list(inflight.items()):
            if future in overdue_futures:
                retry_in = self._fail(
                    flight.unit, flight.attempt, "timeout",
                    f"hard per-unit timeout of {self.unit_timeout}s exceeded "
                    f"(worker killed)",
                    self.unit_timeout or 0.0, store, report, state,
                )
                if retry_in is not None:
                    heapq.heappush(
                        ready, (time.monotonic() + retry_in, seq, flight.unit)
                    )
                    seq += 1
            else:
                heapq.heappush(ready, (time.monotonic(), seq, flight.unit))
                seq += 1
        inflight.clear()
        return seq, True

    @staticmethod
    def _destroy_pool(executor) -> None:
        """Hard-stop a process pool: terminate, then kill stragglers."""
        processes = list(getattr(executor, "_processes", {}).values())
        for process in processes:
            process.terminate()
        deadline = time.monotonic() + 2.0
        for process in processes:
            process.join(max(0.0, deadline - time.monotonic()))
        for process in processes:
            if process.is_alive():
                process.kill()
                process.join(1.0)
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - best-effort teardown
            pass

    # -- redundant validation ----------------------------------------------

    def _validate(self, store: ResultStore, report: CampaignReport) -> None:
        """Re-execute a deterministic sample of this run's completed units.

        Only units *executed in this run* are sampled — resuming an
        already-complete store therefore schedules nothing, keeping
        resume a strict no-op (property-tested).  Validation runs inline,
        without chaos, under the campaign budget.
        """
        if self.validate_redundancy < 2:
            return
        for unit in self.campaign.units:
            if unit.unit_id not in report.executed:
                continue
            if int(unit.unit_id[:8], 16) % self.validate_redundancy != 0:
                continue
            payload = {
                "unit": unit.to_dict(),
                "attempt": self.max_attempts + 1,
                "deadline": (
                    self.budget.sub_deadline(self.unit_timeout)
                    if self.budget is not None else self.unit_timeout
                ),
                "chaos": None,
                "observe": False,
                "dispatched_at": time.time(),
            }
            status, check, error, _ = self._classify(unit, execute_unit(payload))
            report.validations += 1
            if status != "done":
                report.mismatches[unit.unit_id] = (
                    f"redundant execution failed: {error}"
                )
                store.record_validation(unit.unit_id, False, error=error)
                continue
            import json

            original = json.dumps(
                report.results[unit.unit_id], sort_keys=True
            )
            redundant = json.dumps(check, sort_keys=True)
            if original == redundant:
                store.record_validation(unit.unit_id, True)
            else:
                detail = "redundant execution produced a different payload"
                report.mismatches[unit.unit_id] = detail
                store.record_validation(unit.unit_id, False, error=detail)
