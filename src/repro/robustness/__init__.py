"""Fault injection against the engine itself.

- :mod:`repro.robustness.mutator` — :class:`ModelMutator`, generating
  corrupted assemblies (unnormalized rows, NaN/negative attributes,
  unbound parameters, dangling/dropped bindings, recursion bombs,
  absorbing-state removal, trap cycles, truncated/garbage JSON);
- :mod:`repro.robustness.harness` — :class:`FuzzHarness`, asserting that
  every corruption yields a correct answer or a typed
  :class:`~repro.errors.ReproError` — never a crash, never an
  out-of-``[0, 1]`` probability;
- :mod:`repro.robustness.chaos` — :class:`ChaosPolicy`, process-level
  fault injection (scheduled worker crashes, hangs, corrupted payloads)
  used to test the :mod:`repro.workunits` campaign supervisor.

Exposed on the command line as ``python -m repro fuzz`` (and ``--chaos``
on campaign runs).
"""

from repro.robustness.chaos import ChaosPolicy
from repro.robustness.harness import (
    FuzzCase,
    FuzzHarness,
    FuzzReport,
    default_target,
)
from repro.robustness.mutator import OPERATOR_NAMES, ModelMutator, Mutation

__all__ = [
    "ChaosPolicy",
    "FuzzCase",
    "FuzzHarness",
    "FuzzReport",
    "ModelMutator",
    "Mutation",
    "OPERATOR_NAMES",
    "default_target",
]
