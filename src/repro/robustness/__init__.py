"""Fault injection against the engine itself.

- :mod:`repro.robustness.mutator` — :class:`ModelMutator`, generating
  corrupted assemblies (unnormalized rows, NaN/negative attributes,
  unbound parameters, dangling/dropped bindings, recursion bombs,
  absorbing-state removal, trap cycles, truncated/garbage JSON);
- :mod:`repro.robustness.harness` — :class:`FuzzHarness`, asserting that
  every corruption yields a correct answer or a typed
  :class:`~repro.errors.ReproError` — never a crash, never an
  out-of-``[0, 1]`` probability.

Exposed on the command line as ``python -m repro fuzz``.
"""

from repro.robustness.harness import (
    FuzzCase,
    FuzzHarness,
    FuzzReport,
    default_target,
)
from repro.robustness.mutator import OPERATOR_NAMES, ModelMutator, Mutation

__all__ = [
    "FuzzCase",
    "FuzzHarness",
    "FuzzReport",
    "ModelMutator",
    "Mutation",
    "OPERATOR_NAMES",
    "default_target",
]
