"""Process-level fault injection: make workers crash, hang or lie on cue.

:mod:`repro.robustness.mutator` corrupts the *model*; this module corrupts
the *execution substrate*.  A :class:`ChaosPolicy` is a deterministic
schedule of worker-level faults keyed by ``(work-unit index, attempt
number)``:

- ``crash``   — the worker SIGKILLs itself before touching the unit (the
  OOM-killer / hard-crash scenario; the pool breaks and the supervisor
  must recover);
- ``hang``    — the worker sleeps far past any sane deadline (the stuck
  solve; the supervisor must enforce the per-unit timeout and kill it);
- ``corrupt`` — the worker completes but replaces its result with a
  garbage payload (the lying-worker scenario; the supervisor's payload
  validation must reject it and retry).

Schedules are plain data (picklable, serializable) so they travel inside
work-unit payloads to pool workers.  The CLI exposes them as
``--chaos SPEC`` on campaign commands; the chaos-smoke CI job uses exactly
this hook to prove a campaign survives one forced crash and one forced
hang on every push.

Spec grammar (comma-separated)::

    crash@2            unit 2, first attempt only (retry then succeeds)
    hang@5             unit 5, first attempt only
    corrupt@0x3        unit 0, attempts 1..3
    crash@7x*          unit 7, every attempt (a poison unit: must
                       end up quarantined, never loop forever)
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from repro.errors import EvaluationError

__all__ = ["ChaosPolicy", "CRASH", "HANG", "CORRUPT"]

CRASH = "crash"
HANG = "hang"
CORRUPT = "corrupt"

_ACTIONS = (CRASH, HANG, CORRUPT)

#: The payload a corrupting worker returns — wrong shape on purpose, so
#: supervisor-side validation must catch it (a list where a dict belongs).
GARBAGE_PAYLOAD = ["\x00garbage", -1]


@dataclass(frozen=True)
class ChaosPolicy:
    """A deterministic schedule of injected worker faults.

    Attributes:
        schedule: ``(unit_index, action, last_attempt)`` triples —
            the fault fires for attempts ``1..last_attempt`` of that unit
            (``None`` = every attempt, the poison-unit case).
        hang_seconds: how long a hanging worker sleeps (far beyond any
            per-unit timeout; the supervisor is expected to kill it).
    """

    schedule: tuple[tuple[int, str, int | None], ...]
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        for index, action, last_attempt in self.schedule:
            if action not in _ACTIONS:
                raise EvaluationError(
                    f"unknown chaos action {action!r} "
                    f"(expected one of {', '.join(_ACTIONS)})"
                )
            if index < 0:
                raise EvaluationError(
                    f"chaos unit index must be >= 0, got {index}"
                )
            if last_attempt is not None and last_attempt < 1:
                raise EvaluationError(
                    f"chaos attempt bound must be >= 1, got {last_attempt}"
                )

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, hang_seconds: float = 3600.0) -> "ChaosPolicy":
        """Parse a ``--chaos`` spec like ``"crash@1,hang@3,corrupt@0x*"``.

        Each entry is ``ACTION@INDEX`` (first attempt only),
        ``ACTION@INDEXxN`` (attempts 1..N) or ``ACTION@INDEXx*`` (every
        attempt).  Raises :class:`~repro.errors.EvaluationError` on
        malformed specs — a typo must not silently disable the injection.
        """
        schedule: list[tuple[int, str, int | None]] = []
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            action, sep, target = entry.partition("@")
            if not sep or not target:
                raise EvaluationError(
                    f"chaos entry {entry!r} is not ACTION@INDEX[xN|x*]"
                )
            index_text, sep, attempts_text = target.partition("x")
            last_attempt: int | None = 1
            if sep:
                if attempts_text == "*":
                    last_attempt = None
                else:
                    try:
                        last_attempt = int(attempts_text)
                    except ValueError:
                        raise EvaluationError(
                            f"chaos entry {entry!r}: bad attempt bound "
                            f"{attempts_text!r}"
                        ) from None
            try:
                index = int(index_text)
            except ValueError:
                raise EvaluationError(
                    f"chaos entry {entry!r}: bad unit index {index_text!r}"
                ) from None
            schedule.append((index, action.strip(), last_attempt))
        if not schedule:
            raise EvaluationError(f"empty chaos spec {spec!r}")
        return cls(tuple(schedule), hang_seconds=hang_seconds)

    # -- queries -----------------------------------------------------------

    def action_for(self, unit_index: int, attempt: int) -> str | None:
        """The fault to inject for this ``(unit, attempt)``, or ``None``."""
        for index, action, last_attempt in self.schedule:
            if index == unit_index and (
                last_attempt is None or attempt <= last_attempt
            ):
                return action
        return None

    @property
    def needs_isolation(self) -> bool:
        """True when the schedule can kill or stall its host process —
        such a policy must only ever run inside a sacrificial worker."""
        return any(action in (CRASH, HANG) for _, action, _ in self.schedule)

    def describe(self) -> str:
        """One-line human rendering (mirrors the spec grammar)."""
        parts = []
        for index, action, last_attempt in self.schedule:
            suffix = ""
            if last_attempt is None:
                suffix = "x*"
            elif last_attempt != 1:
                suffix = f"x{last_attempt}"
            parts.append(f"{action}@{index}{suffix}")
        return ",".join(parts)

    # -- worker-side application ------------------------------------------

    def apply_before(self, unit_index: int, attempt: int) -> None:
        """Fire crash/hang faults; called by the worker before execution.

        ``crash`` SIGKILLs the *current process* — exactly the signal an
        OOM kill delivers, with no chance to flush or report back.
        """
        action = self.action_for(unit_index, attempt)
        if action == CRASH:
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover
        elif action == HANG:
            time.sleep(self.hang_seconds)

    def corrupt_outcome(self, unit_index: int, attempt: int, outcome: dict) -> dict:
        """Replace a completed result with garbage when scheduled to."""
        if self.action_for(unit_index, attempt) == CORRUPT:
            return {
                "status": "done",
                "payload": list(GARBAGE_PAYLOAD),
                "elapsed": outcome.get("elapsed", 0.0),
            }
        return outcome
