"""The fault-injection harness: assert the engine never lies or crashes.

For each corrupted model produced by
:class:`~repro.robustness.mutator.ModelMutator`, the harness runs the full
hardened path — load, validate, :class:`~repro.runtime.RobustEvaluator`
degradation chain under an :class:`~repro.runtime.EvaluationBudget` — and
classifies the outcome:

- ``ok``           — a result with ``0 <= pfail <= 1`` was produced;
- ``typed-error``  — a :class:`~repro.errors.ReproError` subclass was
  raised (the *correct* response to a corrupt model);
- ``out-of-range`` — a probability escaped ``[0, 1]`` (**violation**);
- ``crash``        — an unhandled non-``ReproError`` exception
  (**violation**).

A run with zero violations is the robustness contract the CI smoke job
(``python -m repro fuzz --smoke``) enforces on every push.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro import observability as obs
from repro.errors import ReproError, format_error_chain
from repro.model.assembly import Assembly
from repro.model.parameters import FiniteDomain, IntegerDomain, RealDomain
from repro.model.service import CompositeService
from repro.robustness.mutator import ModelMutator, Mutation
from repro.runtime.budget import EvaluationBudget
from repro.runtime.robust import RobustEvaluator

__all__ = [
    "FuzzCase",
    "FuzzHarness",
    "FuzzReport",
    "default_target",
    "domain_representative",
    "run_fuzz_case",
]

OK = "ok"
TYPED_ERROR = "typed-error"
OUT_OF_RANGE = "out-of-range"
CRASH = "crash"


@dataclass
class FuzzCase:
    """Outcome of one mutated model."""

    index: int
    operator: str
    detail: str
    status: str
    pfail: float | None = None
    tier: str | None = None
    error: str = ""

    @property
    def violation(self) -> bool:
        """True for contract-breaking outcomes (crash / range escape)."""
        return self.status in (CRASH, OUT_OF_RANGE)


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzzing run."""

    cases: list[FuzzCase] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """True when no case violated the robustness contract."""
        return not self.violations

    @property
    def violations(self) -> list[FuzzCase]:
        """Contract-breaking cases (empty on a healthy engine)."""
        return [c for c in self.cases if c.violation]

    def count(self, status: str) -> int:
        """Number of cases with the given status."""
        return sum(1 for c in self.cases if c.status == status)

    def by_operator(self) -> dict[str, dict[str, int]]:
        """``{operator: {status: count}}`` breakdown."""
        out: dict[str, dict[str, int]] = {}
        for case in self.cases:
            bucket = out.setdefault(case.operator, {})
            bucket[case.status] = bucket.get(case.status, 0) + 1
        return out

    def summary(self) -> str:
        """Human-readable run summary."""
        lines = [
            f"fuzz: {len(self.cases)} mutated models in {self.elapsed:.1f}s — "
            f"{self.count(OK)} ok, {self.count(TYPED_ERROR)} typed errors, "
            f"{self.count(OUT_OF_RANGE)} out-of-range, "
            f"{self.count(CRASH)} crashes"
        ]
        for operator, buckets in sorted(self.by_operator().items()):
            detail = ", ".join(f"{k}={v}" for k, v in sorted(buckets.items()))
            lines.append(f"  {operator:22s} {detail}")
        for case in self.violations:
            lines.append(
                f"  VIOLATION #{case.index} [{case.operator}] "
                f"{case.detail}: {case.status} {case.error}"
            )
        lines.append("contract " + ("HELD" if self.ok else "VIOLATED"))
        return "\n".join(lines)


def domain_representative(domain) -> float:
    """A safe in-domain value: first finite choice, smallest positive
    integer, or interval midpoint — so any healthy model evaluates."""
    if isinstance(domain, FiniteDomain):
        return float(domain.values[0])
    if isinstance(domain, IntegerDomain):
        low = domain.low if math.isfinite(domain.low) else 1
        return float(max(low, 1))
    if isinstance(domain, RealDomain):
        if math.isfinite(domain.low) and math.isfinite(domain.high):
            return (domain.low + domain.high) / 2.0
        if math.isfinite(domain.low):
            return domain.low + 1.0
        if math.isfinite(domain.high):
            return domain.high - 1.0
    return 1.0


def default_target(assembly: Assembly) -> tuple[str, dict[str, float]]:
    """Pick the top-level composite service and in-domain actuals for it.

    The "top" service is the composite at the highest recursion level —
    the one representing the whole architecture.  Actuals are domain
    representatives (first finite value, smallest positive integer,
    interval midpoint), so any healthy model evaluates cleanly.
    """
    levels = assembly.recursion_levels()
    composites = [
        s for s in assembly.services if isinstance(s, CompositeService)
    ]
    if not composites:
        raise ReproError("assembly has no composite service to fuzz")
    top = max(composites, key=lambda s: levels.get(s.name, 0))
    actuals = {
        p.name: domain_representative(p.domain)
        for p in top.interface.formal_parameters
    }
    return top.name, actuals


def run_fuzz_case(
    index: int,
    mutation: Mutation,
    *,
    service: str,
    actuals: dict[str, float],
    seed: int,
    trials: int,
    deadline: float,
) -> FuzzCase:
    """Evaluate one mutated model and classify the outcome.

    Module-level (and driven entirely by picklable arguments — mutations
    are plain documents) so the engine's process-pool worker
    (:func:`repro.engine.parallel.fuzz_block`) can run cases remotely;
    :meth:`FuzzHarness.run_case` delegates here.
    """
    try:
        assembly = mutation.build()
        budget = EvaluationBudget(
            deadline=deadline,
            max_depth=64,
            max_sweeps=1_000,
            max_trials=trials * 4,
        )
        evaluator = RobustEvaluator(
            assembly, budget=budget, trials=trials,
            seed=seed + index,
        )
        result = evaluator.evaluate(service, **actuals)
    except ReproError as exc:
        # format_error_chain keeps nested causes (raise ... from ...) in the
        # string-only case record instead of flattening to the outer message
        return FuzzCase(
            index, mutation.operator, mutation.detail, TYPED_ERROR,
            error=format_error_chain(exc),
        )
    except Exception as exc:  # the contract violation we hunt
        return FuzzCase(
            index, mutation.operator, mutation.detail, CRASH,
            error=format_error_chain(exc),
        )
    if not (
        isinstance(result.pfail, float)
        and math.isfinite(result.pfail)
        and 0.0 <= result.pfail <= 1.0
    ):
        return FuzzCase(
            index, mutation.operator, mutation.detail, OUT_OF_RANGE,
            pfail=result.pfail, tier=result.tier,
            error=f"pfail={result.pfail!r}",
        )
    return FuzzCase(
        index, mutation.operator, mutation.detail, OK,
        pfail=result.pfail, tier=result.tier,
    )


class FuzzHarness:
    """Run the mutation contract over many corrupted models.

    Args:
        base: the healthy assembly to corrupt.
        service: target service name (default: auto-detected top service).
        actuals: actual parameters (default: domain representatives).
        seed: mutation + simulation seed for reproducible runs.
        trials: Monte Carlo trials for the degradation tier.
        deadline: per-case wall-clock budget in seconds.
        operators: restrict mutation operators (default: all).
    """

    def __init__(
        self,
        base: Assembly,
        service: str | None = None,
        actuals: dict[str, float] | None = None,
        seed: int = 0,
        trials: int = 2_000,
        deadline: float = 10.0,
        operators: tuple[str, ...] | None = None,
    ):
        self.base = base
        if service is None or actuals is None:
            detected_service, detected_actuals = default_target(base)
            service = service if service is not None else detected_service
            actuals = actuals if actuals is not None else detected_actuals
        self.service = service
        self.actuals = dict(actuals)
        self.seed = seed
        self.trials = trials
        self.deadline = deadline
        self.mutator = ModelMutator(base, seed=seed, operators=operators)

    # -- execution ---------------------------------------------------------

    def run_case(self, index: int, mutation: Mutation) -> FuzzCase:
        """Evaluate one mutated model and classify the outcome."""
        return run_fuzz_case(
            index,
            mutation,
            service=self.service,
            actuals=self.actuals,
            seed=self.seed,
            trials=self.trials,
            deadline=self.deadline,
        )

    def run(self, count: int = 200, jobs: int = 1) -> FuzzReport:
        """Run ``count`` mutated models and aggregate the outcomes.

        With ``jobs > 1`` the mutations are still generated here, in
        order (so the corpus is identical regardless of worker count),
        then sharded across a process pool; cases land in the report in
        index order either way, and each case's simulation seed depends
        only on its index, so classification matches the serial run
        exactly.
        """
        from repro.engine.parallel import resolve_jobs

        started = time.monotonic()
        report = FuzzReport()
        mutations = list(enumerate(self.mutator.generate(count)))
        jobs = resolve_jobs(jobs)
        with obs.span("fuzz.run", cases=len(mutations), jobs=jobs) as sp:
            if jobs > 1 and len(mutations) > 1:
                report.cases = self._run_parallel(mutations, jobs)
            else:
                report.cases = [
                    self.run_case(index, mutation)
                    for index, mutation in mutations
                ]
            for case in report.cases:
                obs.count(f"fuzz.case.{case.status}")
            sp.set_tag(violations=len(report.violations))
        report.elapsed = time.monotonic() - started
        return report

    def _run_parallel(self, mutations: list, jobs: int) -> list[FuzzCase]:
        from concurrent.futures.process import BrokenProcessPool

        from repro.engine.parallel import (
            broken_pool_error,
            fuzz_block,
            make_executor,
            split_evenly,
            unpack_worker_payload,
        )

        executor = make_executor(jobs, "process")
        cases: list[FuzzCase] = []
        shards = split_evenly(mutations, jobs)
        with executor:
            futures = [
                executor.submit(
                    fuzz_block,
                    {
                        "cases": shard,
                        "service": self.service,
                        "actuals": self.actuals,
                        "seed": self.seed,
                        "trials": self.trials,
                        "deadline": self.deadline,
                        "observe": obs.enabled(),
                        "dispatched_at": time.time(),
                    },
                )
                for shard in shards
            ]
            collected = 0
            try:
                for future in futures:
                    cases.extend(unpack_worker_payload(future.result()))
                    collected += 1
            except BrokenProcessPool as exc:
                affected = [
                    index
                    for shard in shards[collected:]
                    for index, _ in shard
                ]
                raise broken_pool_error(
                    "fuzz campaign", affected, exc
                ) from exc
        return sorted(cases, key=lambda case: case.index)
