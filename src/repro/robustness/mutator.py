"""Model fault injection: corrupted assemblies that attack the engine.

The Monte Carlo engine injects faults into the *modeled system*; this
module injects faults into the *model itself* — the adversarial inputs a
production prediction service will inevitably receive from buggy
generators, truncated uploads and hostile clients.  Each operator takes a
healthy assembly (in its ``repro/1`` dictionary form) and applies one
targeted corruption:

========================  ====================================================
operator                  corruption
========================  ====================================================
``unnormalized-row``      a transition probability scaled past a valid
                          distribution
``negative-probability``  a negative transition probability
``huge-probability``      a transition probability of 1e6
``nan-attribute``         a published interface attribute set to NaN
``negative-attribute``    a published interface attribute made negative
``unbound-parameter``     a failure expression referencing a parameter
                          nobody binds
``dangling-binding``      a binding pointing at a service that does not exist
``dropped-binding``       a required-service binding deleted
``recursion-bomb``        a binding rewired onto the consumer itself
``no-absorbing-state``    every path to End redirected back into the flow
``trap-cycle``            a never-failing two-state cycle grafted onto a
                          flow (End stays reachable, so structural
                          validation passes, but probability mass is
                          trapped)
``truncated-json``        the serialized document cut mid-stream (text level)
``garbage-json``          a randomly corrupted byte (text level)
========================  ====================================================

The contract under test (see :mod:`repro.robustness.harness`): every
mutation must yield a correct answer or a typed
:class:`~repro.errors.ReproError` — never an unhandled exception, never a
silently wrong probability.
"""

from __future__ import annotations

import copy
import json
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.dsl.loader import assembly_from_dict, load_assembly
from repro.dsl.serializer import assembly_to_dict
from repro.model.assembly import Assembly

__all__ = ["Mutation", "ModelMutator", "OPERATOR_NAMES"]


@dataclass
class Mutation:
    """One corrupted model.

    Attributes:
        operator: name of the mutation operator applied.
        detail: human-readable description of the specific corruption.
        data: the mutated document (dict form), or ``None`` for
            text-level mutations.
        text: the mutated serialized form, for text-level operators.
    """

    operator: str
    detail: str
    data: dict | None = None
    text: str | None = None

    def build(self) -> Assembly:
        """Materialize the corrupted assembly (may raise typed errors)."""
        if self.text is not None:
            return load_assembly(self.text)
        return assembly_from_dict(copy.deepcopy(self.data))


def _transitions(data: dict) -> list[dict]:
    out = []
    for service in data.get("services", ()):
        flow = service.get("flow")
        if flow:
            out.extend(flow.get("transitions", ()))
    return out


def _attributed_services(data: dict) -> list[dict]:
    return [
        s for s in data.get("services", ())
        if s.get("interface", {}).get("attributes")
    ]


def _simple_services(data: dict) -> list[dict]:
    return [s for s in data.get("services", ()) if s.get("kind") == "simple"]


def _composite_services(data: dict) -> list[dict]:
    return [s for s in data.get("services", ()) if s.get("kind") == "composite"]


class ModelMutator:
    """Deterministic generator of corrupted assemblies.

    Args:
        base: the healthy assembly (or its dict form) to corrupt.
        seed: seed for the operator/site selection stream; the same seed
            reproduces the same mutation sequence.
        operators: restrict to a subset of operator names (default: all).
    """

    def __init__(
        self,
        base: Assembly | dict,
        seed: int = 0,
        operators: tuple[str, ...] | None = None,
    ):
        self._base = (
            assembly_to_dict(base) if isinstance(base, Assembly) else dict(base)
        )
        self.rng = np.random.default_rng(seed)
        self._operators = {
            name: fn for name, fn in self._all_operators().items()
            if operators is None or name in operators
        }
        if not self._operators:
            raise ValueError(f"no known operators among {operators!r}")

    # -- public API --------------------------------------------------------

    @property
    def operator_names(self) -> tuple[str, ...]:
        """The active operator names."""
        return tuple(self._operators)

    def mutate(self) -> Mutation:
        """Produce one mutation (round-robin randomized over operators)."""
        names = list(self._operators)
        self.rng.shuffle(names)
        for name in names:
            mutation = self._apply(name)
            if mutation is not None:
                return mutation
        raise RuntimeError(
            "no mutation operator applies to this model"
        )  # pragma: no cover - every operator applies to non-trivial models

    def generate(self, count: int) -> Iterator[Mutation]:
        """Yield ``count`` mutations, cycling through all operators so the
        stream covers every corruption class."""
        names = list(self._operators)
        for i in range(count):
            name = names[i % len(names)]
            mutation = self._apply(name)
            if mutation is None:  # operator not applicable to this model
                mutation = self.mutate()
            yield mutation

    # -- operators ---------------------------------------------------------

    def _apply(self, name: str) -> Mutation | None:
        data = copy.deepcopy(self._base)
        detail = self._operators[name](data)
        if detail is None:
            return None
        if isinstance(detail, tuple):  # text-level operator: (detail, text)
            return Mutation(name, detail[0], text=detail[1])
        return Mutation(name, detail, data=data)

    def _all_operators(self):
        return {
            "unnormalized-row": self._op_unnormalized_row,
            "negative-probability": self._op_negative_probability,
            "huge-probability": self._op_huge_probability,
            "nan-attribute": self._op_nan_attribute,
            "negative-attribute": self._op_negative_attribute,
            "unbound-parameter": self._op_unbound_parameter,
            "dangling-binding": self._op_dangling_binding,
            "dropped-binding": self._op_dropped_binding,
            "recursion-bomb": self._op_recursion_bomb,
            "no-absorbing-state": self._op_no_absorbing_state,
            "trap-cycle": self._op_trap_cycle,
            "truncated-json": self._op_truncated_json,
            "garbage-json": self._op_garbage_json,
        }

    def _choice(self, items: list):
        return items[int(self.rng.integers(len(items)))]

    def _op_unnormalized_row(self, data: dict) -> str | None:
        transitions = _transitions(data)
        if not transitions:
            return None
        t = self._choice(transitions)
        value = float(self.rng.uniform(1.2, 5.0))
        t["probability"] = value
        return f"transition {t['source']}->{t['target']} set to {value:.3f}"

    def _op_negative_probability(self, data: dict) -> str | None:
        transitions = _transitions(data)
        if not transitions:
            return None
        t = self._choice(transitions)
        value = -float(self.rng.uniform(0.05, 0.9))
        t["probability"] = value
        return f"transition {t['source']}->{t['target']} set to {value:.3f}"

    def _op_huge_probability(self, data: dict) -> str | None:
        transitions = _transitions(data)
        if not transitions:
            return None
        t = self._choice(transitions)
        t["probability"] = 1e6
        return f"transition {t['source']}->{t['target']} set to 1e6"

    def _op_nan_attribute(self, data: dict) -> str | None:
        services = _attributed_services(data)
        if not services:
            return None
        service = self._choice(services)
        attr = self._choice(sorted(service["interface"]["attributes"]))
        service["interface"]["attributes"][attr] = float("nan")
        return f"attribute {service['name']}::{attr} set to NaN"

    def _op_negative_attribute(self, data: dict) -> str | None:
        services = _attributed_services(data)
        if not services:
            return None
        service = self._choice(services)
        attr = self._choice(sorted(service["interface"]["attributes"]))
        old = float(service["interface"]["attributes"][attr])
        service["interface"]["attributes"][attr] = -abs(old) - 0.5
        return f"attribute {service['name']}::{attr} made negative"

    def _op_unbound_parameter(self, data: dict) -> str | None:
        services = _simple_services(data)
        if not services:
            return None
        service = self._choice(services)
        service["failure_probability"] = "ghost_unbound_parameter"
        return (
            f"failure probability of {service['name']!r} references an "
            f"unbound parameter"
        )

    def _op_dangling_binding(self, data: dict) -> str | None:
        bindings = data.get("bindings") or []
        if not bindings:
            return None
        binding = self._choice(bindings)
        binding["provider"] = "ghost-service"
        return (
            f"binding {binding['consumer']}.{binding['slot']} points at a "
            f"nonexistent provider"
        )

    def _op_dropped_binding(self, data: dict) -> str | None:
        bindings = data.get("bindings") or []
        if not bindings:
            return None
        binding = self._choice(bindings)
        bindings.remove(binding)
        return f"binding {binding['consumer']}.{binding['slot']} deleted"

    def _op_recursion_bomb(self, data: dict) -> str | None:
        bindings = data.get("bindings") or []
        composites = {s["name"] for s in _composite_services(data)}
        candidates = [b for b in bindings if b["consumer"] in composites]
        if not candidates:
            return None
        binding = self._choice(candidates)
        binding["provider"] = binding["consumer"]
        binding["connector"] = None
        return (
            f"binding {binding['consumer']}.{binding['slot']} rewired onto "
            f"the consumer itself"
        )

    def _op_no_absorbing_state(self, data: dict) -> str | None:
        composites = [
            s for s in _composite_services(data)
            if s.get("flow", {}).get("states")
        ]
        if not composites:
            return None
        service = self._choice(composites)
        flow = service["flow"]
        trap = flow["states"][0]["name"]
        redirected = 0
        for t in flow.get("transitions", ()):
            if t["target"] == "End":
                t["target"] = trap
                redirected += 1
        if not redirected:
            return None
        return (
            f"{redirected} End transitions of {service['name']!r} "
            f"redirected to {trap!r}"
        )

    def _op_trap_cycle(self, data: dict) -> str | None:
        """Graft a never-failing two-state cycle onto a flow.

        End stays reachable from Start, so structural validation passes —
        but 40% of the probability mass enters a cycle it can never leave
        and in which nothing ever fails.  The absorbing analysis must
        refuse (singular ``I - Q``) and the simulator must bound its walk
        instead of hanging.
        """
        composites = [
            s for s in _composite_services(data)
            if s.get("flow", {}).get("transitions")
        ]
        if not composites:
            return None
        service = self._choice(composites)
        flow = service["flow"]
        flow.setdefault("states", []).extend(
            [{"name": "__trap_a", "requests": []},
             {"name": "__trap_b", "requests": []}]
        )
        scale = {"kind": "const", "value": 0.6}
        for t in flow["transitions"]:
            if t["source"] == "Start":
                t["probability"] = {
                    "kind": "binary", "op": "*",
                    "left": t["probability"], "right": scale,
                }
        one = {"kind": "const", "value": 1.0}
        flow["transitions"].extend(
            [
                {"source": "Start", "target": "__trap_a",
                 "probability": {"kind": "const", "value": 0.4}},
                {"source": "__trap_a", "target": "__trap_b",
                 "probability": one},
                {"source": "__trap_b", "target": "__trap_a",
                 "probability": one},
            ]
        )
        return (
            f"never-failing trap cycle grafted onto {service['name']!r} "
            f"(0.4 of the Start mass can never absorb)"
        )

    def _op_truncated_json(self, data: dict) -> tuple[str, str] | None:
        text = json.dumps(self._base)
        cut = int(self.rng.integers(1, max(len(text) - 1, 2)))
        return f"document truncated at byte {cut}/{len(text)}", text[:cut]

    def _op_garbage_json(self, data: dict) -> tuple[str, str] | None:
        text = json.dumps(self._base)
        position = int(self.rng.integers(len(text)))
        garbage = self._choice(list("}{[]:,x\x00"))
        mutated = text[:position] + garbage + text[position + 1:]
        return f"byte {position} replaced with {garbage!r}", mutated


OPERATOR_NAMES: tuple[str, ...] = tuple(
    ModelMutator(
        {"services": [], "bindings": []}, operators=None
    )._all_operators()
)
