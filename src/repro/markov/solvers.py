"""Pluggable linear-solver backends for Markov-chain analysis.

The analytic core of the library is the absorbing solve ``(I - Q) x = r``
(eqs. 6-8): every composite-service evaluation, every sweep point and every
batch entry funnels into it.  The historical implementation was dense —
``numpy.linalg.solve`` against full matrices plus an exact ``O(n^3)``
condition number — which is fine for paper-sized flows and hopeless for the
production-scale ones the ROADMAP targets, where a state calls a handful of
services and ``nnz(Q) << n^2``.

This module makes the solve *pluggable* and *structure-aware*:

- **dense** — the compatibility backend.  ``numpy.linalg.solve`` semantics;
  when scipy is importable the LU factors are computed once
  (``scipy.linalg.lu_factor``) and reused across absorption, visits, steps
  and the condition estimate.
- **sparse** — assemble ``I - Q`` in CSR and factor once with
  ``scipy.sparse.linalg.splu``; every subsequent right-hand side is a pair
  of triangular substitutions.  Requires scipy.
- **sparse triangular fast path** — when the transient graph (minus
  self-loops) is a DAG — the common case for composed service usage
  profiles — a topological permutation makes ``I - Q`` triangular, so each
  solve is a single ``O(nnz)`` substitution and **no numeric factorization
  ever happens**.
- ``auto`` picks per system: dense below :data:`SPARSE_THRESHOLD` states or
  above :data:`SPARSE_DENSITY` fill, dense whenever scipy is missing,
  sparse (triangular when possible) otherwise.

The exact condition number is replaced everywhere by a 1-norm *estimate*
(``scipy.sparse.linalg.onenormest`` over the factorization, or a pure-numpy
Hager estimator without scipy) — a handful of extra solves instead of an
extra ``O(n^3)`` inversion.

**Structural plan cache.**  The value-independent part of a solve — the
transient/absorbing partition, the sparsity pattern of ``Q``, the
topological permutation, the backend choice — is captured in a
:class:`ChainSolvePlan` and cached on the shared
:class:`repro.caching.LRUCache` under a structural fingerprint (shape +
nonzero pattern + absorbing mask).  A sweep that varies only rates hits the
cache on every point: the DAG fast path then re-solves in ``O(nnz)`` with
zero re-factorization, and the LU paths skip all pattern/permutation work.
Hit/miss counters (:func:`solver_cache_stats`) and the
:func:`plan_count` / :func:`factorization_count` monotone counters make
that reuse assertable in tests and benchmarks.

**Base-factorization slot (low-rank updates).**  Each plan additionally
carries one *base factorization* slot: the factored system and the value
vector it was factored from.  Callers that opt in
(``factorize_chain(..., incremental=True)``) get the next speed tier — a
re-solve whose values differ from the base in only ``k`` rows is served by
a Sherman-Morrison-Woodbury rank-``k`` update against the cached
factorization (:mod:`repro.markov.updates`) instead of a fresh one, with
automatic fallback (and a slot refresh) above a rank crossover or when the
capacitance matrix is ill-conditioned.  The ``solver.updates.*`` counters
record applied updates and both fallback reasons.
"""

from __future__ import annotations

import hashlib
import threading
import warnings

import numpy as np

from repro import observability as obs
from repro.caching import CacheStats, LRUCache
from repro.errors import EvaluationError

try:  # pragma: no cover - exercised through both branches in CI
    import scipy.linalg as _scipy_linalg
    import scipy.sparse as _scipy_sparse
    import scipy.sparse.linalg as _scipy_sparse_linalg

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - the numpy-only environment
    _scipy_linalg = None
    _scipy_sparse = None
    _scipy_sparse_linalg = None
    _HAVE_SCIPY = False

__all__ = [
    "SOLVERS",
    "SPARSE_DENSITY",
    "SPARSE_THRESHOLD",
    "ChainSolvePlan",
    "Factorization",
    "SingularSystemError",
    "chain_fingerprint",
    "chain_plan",
    "default_solver_cache",
    "factorization_count",
    "factorize",
    "factorize_chain",
    "plan_count",
    "reset_counters",
    "scipy_available",
    "solver_cache_stats",
    "validate_solver",
]

#: The recognized solver-backend requests.
SOLVERS = ("auto", "dense", "sparse")

#: Systems below this order stay dense under ``auto`` — LAPACK on a tiny
#: dense block beats any sparse setup cost.
SPARSE_THRESHOLD = 256

#: Fill ratio (``nnz / n^2``) above which ``auto`` stays dense even for
#: large systems; past it the CSR indirection stops paying for itself.
SPARSE_DENSITY = 0.25

#: Dense systems up to this order get the exact ``np.linalg.cond`` check
#: (cheap at this size, and bit-compatible with the historical guard);
#: larger systems use the 1-norm estimate.
EXACT_COND_SIZE = 512


class SingularSystemError(Exception):
    """The system factored exactly singular.

    Deliberately *not* a :class:`~repro.errors.ReproError`: what a singular
    system *means* depends on the caller (a trapped transient state for the
    absorbing solve, a reducible chain for the stationary one), so callers
    catch this and raise their own typed error.
    """


def scipy_available() -> bool:
    """True when the sparse backend can be used in this environment."""
    return _HAVE_SCIPY


def validate_solver(solver: str) -> str:
    """Normalize and validate a solver request (typed error otherwise)."""
    name = str(solver).lower()
    if name not in SOLVERS:
        raise EvaluationError(
            f"unknown solver backend {solver!r} (expected one of {SOLVERS})"
        )
    if name == "sparse" and not _HAVE_SCIPY:
        raise EvaluationError(
            "solver 'sparse' requires scipy, which is not installed; "
            "use 'auto' (falls back to dense) or 'dense'"
        )
    return name


# ---------------------------------------------------------------------------
# counters (test/benchmark observability, same pattern as engine.plan)
# ---------------------------------------------------------------------------

_counter_lock = threading.Lock()
_plans = 0
_factorizations = 0


def plan_count() -> int:
    """Structural solve plans actually built (cache hits never build)."""
    return _plans


def factorization_count() -> int:
    """Numeric LU factorizations performed in this process.

    The triangular fast path never increments it — a permuted triangular
    system is solved by substitution alone — which is exactly what the
    "sweeps skip re-factorization" benchmark asserts.
    """
    return _factorizations


def reset_counters() -> None:
    """Zero both counters (test isolation helper)."""
    global _plans, _factorizations
    with _counter_lock:
        _plans = 0
        _factorizations = 0


def _charge(counter: str) -> None:
    global _plans, _factorizations
    with _counter_lock:
        if counter == "plans":
            _plans += 1
        else:
            _factorizations += 1
    # mirrored onto the metrics registry (no-op unless collection is on);
    # the module counters above stay the in-process compatibility surface
    obs.count(f"solver.{counter}")


# ---------------------------------------------------------------------------
# condition estimation
# ---------------------------------------------------------------------------


def _hager_inverse_norm(solve, solve_transpose, n: int, itmax: int = 5) -> float:
    """Hager's 1-norm estimator for ``||A^{-1}||_1`` from solves only.

    The classic LAPACK ``xLACON`` scheme: a forward solve scores a
    candidate, a transpose solve picks the next coordinate direction.  A
    lower bound in theory, near-exact in practice for the diagonally
    dominant systems this library produces.
    """
    if n == 0:
        return 0.0
    x = np.full(n, 1.0 / n)
    estimate = 0.0
    visited: set[int] = set()
    for _ in range(itmax):
        y = np.asarray(solve(x), dtype=float)
        if not np.all(np.isfinite(y)):
            return float("inf")
        estimate = max(estimate, float(np.abs(y).sum()))
        sign = np.where(y >= 0.0, 1.0, -1.0)
        z = np.asarray(solve_transpose(sign), dtype=float)
        if not np.all(np.isfinite(z)):
            return float("inf")
        j = int(np.argmax(np.abs(z)))
        if float(np.abs(z[j])) <= float(z @ x) or j in visited:
            break
        visited.add(j)
        x = np.zeros(n)
        x[j] = 1.0
    return estimate


def _inverse_norm_estimate(fact: "Factorization") -> float:
    """Estimated ``||A^{-1}||_1`` through a factorization's solves."""
    n = fact.n
    if n == 0:
        return 0.0
    if n <= 4:
        # exact at trivial size: solve the identity and read the norm
        obs.count("solver.condition.exact")
        inverse = fact.solve(np.eye(n))
        if not np.all(np.isfinite(inverse)):
            return float("inf")
        return float(np.abs(inverse).sum(axis=0).max())
    obs.count("solver.condition.estimated")
    if _HAVE_SCIPY:
        operator = _scipy_sparse_linalg.LinearOperator(
            (n, n),
            matvec=lambda v: fact.solve(np.asarray(v, dtype=float).ravel()),
            rmatvec=lambda v: fact.solve_transpose(
                np.asarray(v, dtype=float).ravel()
            ),
        )
        try:
            return float(_scipy_sparse_linalg.onenormest(operator))
        except (ValueError, RuntimeError):  # pragma: no cover - defensive
            pass
    return _hager_inverse_norm(fact.solve, fact.solve_transpose, n)


# ---------------------------------------------------------------------------
# factorizations
# ---------------------------------------------------------------------------


class Factorization:
    """A reusable factorization of one square system ``A``.

    Subclasses implement :meth:`solve`, :meth:`solve_transpose` and
    :meth:`matvec`; the 1-norm condition estimate is computed lazily from
    those and memoized.

    Attributes:
        n: the system order.
        method: ``"dense"``, ``"sparse-lu"`` or ``"sparse-tri"``.
        reusable: True when additional right-hand sides are cheap (a kept
            factorization or a triangular substitution) — callers use this
            to pick between per-column and batched lazy strategies.
    """

    method = "abstract"
    reusable = False

    def __init__(self, n: int):
        self.n = int(n)
        self._condition: float | None = None
        self._norm1: float | None = None

    # -- interface ---------------------------------------------------------

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` (vector or matrix right-hand side)."""
        raise NotImplementedError

    def solve_transpose(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A^T x = rhs`` (used by the condition estimator)."""
        raise NotImplementedError

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` (for residual checks, without re-densifying)."""
        raise NotImplementedError

    def norm1(self) -> float:
        """``||A||_1`` (exact; cheap for every representation)."""
        raise NotImplementedError

    # -- shared ------------------------------------------------------------

    def condition_estimate(self) -> float:
        """Estimated 1-norm condition number, memoized per factorization."""
        if self._condition is None:
            self._condition = float(self.norm1() * _inverse_norm_estimate(self))
        return self._condition


class _DenseFactorization(Factorization):
    """Dense backend: LAPACK via numpy, LU kept when scipy is importable.

    Without scipy every solve re-factors (exactly the historical
    ``numpy.linalg.solve`` behavior, preserved on purpose); with scipy the
    ``getrf`` factors are computed once and reused by ``getrs``.
    """

    method = "dense"

    def __init__(self, system: np.ndarray):
        super().__init__(system.shape[0])
        self._system = system
        self._lu_piv = None
        if _HAVE_SCIPY and self.n:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")  # lu_factor warns, we raise
                lu, piv = _scipy_linalg.lu_factor(system, check_finite=False)
            _charge("factorizations")
            if not np.all(np.isfinite(lu)) or np.any(np.diag(lu) == 0.0):
                raise SingularSystemError("dense LU factored singular")
            self._lu_piv = (lu, piv)
            self.reusable = True

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        if self._lu_piv is not None:
            return _scipy_linalg.lu_solve(
                self._lu_piv, rhs, check_finite=False
            )
        try:
            _charge("factorizations")
            return np.linalg.solve(self._system, rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularSystemError(str(exc)) from exc

    def solve_transpose(self, rhs: np.ndarray) -> np.ndarray:
        if self._lu_piv is not None:
            return _scipy_linalg.lu_solve(
                self._lu_piv, rhs, trans=1, check_finite=False
            )
        try:
            return np.linalg.solve(self._system.T, rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularSystemError(str(exc)) from exc

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._system @ x

    def norm1(self) -> float:
        if self._norm1 is None:
            self._norm1 = float(
                np.abs(self._system).sum(axis=0).max(initial=0.0)
            )
        return self._norm1

    def condition_estimate(self) -> float:
        if self._condition is None and self.n <= EXACT_COND_SIZE:
            # exact at small size — bit-compatible with the historical guard
            obs.count("solver.condition.exact")
            try:
                self._condition = float(np.linalg.cond(self._system, 1))
            except np.linalg.LinAlgError:  # pragma: no cover - defensive
                self._condition = float("inf")
        return super().condition_estimate()


class _SparseLUFactorization(Factorization):
    """CSR assembly + one ``splu`` factorization, reused for every RHS."""

    method = "sparse-lu"
    reusable = True

    def __init__(self, system_csr):
        super().__init__(system_csr.shape[0])
        self._csr = system_csr
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                self._lu = _scipy_sparse_linalg.splu(system_csr.tocsc())
        except RuntimeError as exc:  # splu signals exact singularity this way
            raise SingularSystemError(str(exc)) from exc
        _charge("factorizations")

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return self._lu.solve(np.asarray(rhs, dtype=float))

    def solve_transpose(self, rhs: np.ndarray) -> np.ndarray:
        return self._lu.solve(np.asarray(rhs, dtype=float), trans="T")

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._csr @ x

    def norm1(self) -> float:
        if self._norm1 is None:
            sums = np.asarray(np.abs(self._csr).sum(axis=0)).ravel()
            self._norm1 = float(np.max(sums, initial=0.0))
        return self._norm1


class _SparseTriangularFactorization(Factorization):
    """The DAG fast path: permuted ``I - Q`` is upper triangular.

    With the transient states in topological order every edge points
    forward, so the permuted system is upper triangular with diagonal
    ``1 - Q_ii > 0`` — each right-hand side is one ``O(nnz)`` back
    substitution and there is *nothing to factor*.
    """

    method = "sparse-tri"
    reusable = True

    def __init__(self, system_csr, order: np.ndarray):
        super().__init__(system_csr.shape[0])
        self._order = order
        self._inverse = np.empty_like(order)
        self._inverse[order] = np.arange(order.size)
        permuted = system_csr[order][:, order].tocsr()
        diagonal = permuted.diagonal()
        if np.any(diagonal == 0.0):
            raise SingularSystemError(
                "triangular system has a zero diagonal entry"
            )
        self._permuted = permuted
        self._permuted_t = None  # lazily built for the condition estimate

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        solution = _scipy_sparse_linalg.spsolve_triangular(
            self._permuted, rhs[self._order], lower=False
        )
        return solution[self._inverse]

    def solve_transpose(self, rhs: np.ndarray) -> np.ndarray:
        if self._permuted_t is None:
            self._permuted_t = self._permuted.T.tocsr()
        rhs = np.asarray(rhs, dtype=float)
        solution = _scipy_sparse_linalg.spsolve_triangular(
            self._permuted_t, rhs[self._order], lower=True
        )
        return solution[self._inverse]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return (self._permuted @ x[self._order])[self._inverse]

    def norm1(self) -> float:
        if self._norm1 is None:
            sums = np.asarray(np.abs(self._permuted).sum(axis=0)).ravel()
            self._norm1 = float(np.max(sums, initial=0.0))
        return self._norm1


# ---------------------------------------------------------------------------
# structural plans + cache
# ---------------------------------------------------------------------------


class ChainSolvePlan:
    """The value-independent structure of one absorbing solve.

    Everything here depends only on the chain's *shape* — which states are
    absorbing, where ``Q`` has nonzeros, the topological permutation — so a
    plan computed once serves every re-solve of a structurally identical
    chain (a sweep varying only rates, a fixed-point iteration, a batch of
    same-flow models).

    Attributes:
        fingerprint: the structural digest this plan was built from.
        backend: resolved backend (``"dense"``, ``"sparse-lu"``,
            ``"sparse-tri"``).
        transient / absorbing: original state indices of each class.
        q_rows / q_cols: the sparsity pattern of ``Q`` in transient-local
            coordinates (unused by the dense backend).
        order: topological permutation of the transient states
            (``"sparse-tri"`` only).
        update_slot: the base-factorization slot used by the incremental
            (low-rank update) path; see :class:`_UpdateSlot`.
    """

    __slots__ = (
        "fingerprint", "backend", "transient", "absorbing",
        "q_rows", "q_cols", "order", "update_slot",
    )

    def __init__(self, fingerprint, backend, transient, absorbing,
                 q_rows, q_cols, order):
        self.fingerprint = fingerprint
        self.backend = backend
        self.transient = transient
        self.absorbing = absorbing
        self.q_rows = q_rows
        self.q_cols = q_cols
        self.order = order
        self.update_slot = _UpdateSlot()


class _UpdateSlot:
    """One plan's cached *base* factorization for the incremental path.

    Holds the last fully-factored system and the ``Q``-pattern value
    vector it was factored from.  The slot always stores a *full*
    factorization, never an SMW view — deltas are taken against the base
    directly, so update error never compounds across a sweep.  Guarded by
    its own lock; the plan itself is shared through the structural cache
    across threads.
    """

    __slots__ = ("lock", "values", "factorization")

    def __init__(self):
        self.lock = threading.Lock()
        self.values: np.ndarray | None = None
        self.factorization: Factorization | None = None


_default_cache: LRUCache | None = None
_default_cache_lock = threading.Lock()


def default_solver_cache() -> LRUCache:
    """The process-wide structural-plan cache (created on first use)."""
    global _default_cache
    with _default_cache_lock:
        if _default_cache is None:
            _default_cache = LRUCache(max_size=256, name="solver")
        return _default_cache


def solver_cache_stats() -> CacheStats:
    """Hit/miss/eviction counters of the default structural-plan cache."""
    return default_solver_cache().stats


def chain_fingerprint(matrix: np.ndarray, absorbing_mask: np.ndarray) -> str:
    """Structural digest of one chain: shape + nonzero pattern + partition.

    Two chains share a fingerprint exactly when they have the same order,
    the same transient/absorbing split and the same ``Q`` sparsity pattern
    — i.e. when one :class:`ChainSolvePlan` serves both.  Values do *not*
    enter the digest: that is the point (sweeps vary values only).
    """
    digest = hashlib.sha256()
    digest.update(np.int64(matrix.shape[0]).tobytes())
    digest.update(np.packbits(matrix != 0.0, axis=None).tobytes())
    digest.update(np.packbits(np.asarray(absorbing_mask, dtype=bool)).tobytes())
    return digest.hexdigest()


def _topological_order(
    m: int, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray | None:
    """Topological permutation of the transient graph minus self-loops,
    or ``None`` when it has a cycle (Kahn's algorithm on index arrays)."""
    off = rows != cols
    rows, cols = rows[off], cols[off]
    if rows.size == 0:
        return np.arange(m)
    sort = np.argsort(rows, kind="stable")
    rows_sorted, cols_sorted = rows[sort], cols[sort]
    starts = np.searchsorted(rows_sorted, np.arange(m + 1))
    indegree = np.bincount(cols_sorted, minlength=m)
    stack = [int(i) for i in np.flatnonzero(indegree == 0)]
    order: list[int] = []
    while stack:
        node = stack.pop()
        order.append(node)
        for target in cols_sorted[starts[node]:starts[node + 1]]:
            indegree[target] -= 1
            if indegree[target] == 0:
                stack.append(int(target))
    if len(order) != m:
        return None
    return np.asarray(order, dtype=np.int64)


def _resolve_backend(solver: str, m: int, nnz: int) -> str:
    """Backend choice (before the DAG refinement) for one system."""
    if solver == "dense":
        return "dense"
    if solver == "sparse":
        return "sparse"
    # auto: structure-aware heuristic with a dense fallback
    if not _HAVE_SCIPY or m < SPARSE_THRESHOLD:
        return "dense"
    if m and nnz / (m * m) > SPARSE_DENSITY:
        return "dense"
    return "sparse"


def chain_plan(
    matrix: np.ndarray,
    absorbing_mask: np.ndarray,
    solver: str = "auto",
    cache: LRUCache | None = None,
) -> ChainSolvePlan:
    """The (cached) structural solve plan for one chain matrix.

    Args:
        matrix: the full row-stochastic transition matrix.
        absorbing_mask: boolean mask of absorbing states, aligned with
            ``matrix`` rows.
        solver: ``"auto"``, ``"dense"`` or ``"sparse"`` (validated).
        cache: the structural-plan :class:`~repro.caching.LRUCache`;
            ``None`` uses the process-wide default, ``False`` disables
            caching for this call.
    """
    solver = validate_solver(solver)
    mask = np.asarray(absorbing_mask, dtype=bool)
    key = (solver, chain_fingerprint(matrix, mask))
    if cache is False:
        return _build_plan(matrix, mask, solver, key[1])
    lru = cache if cache is not None else default_solver_cache()
    return lru.get_or_create(
        key, lambda: _build_plan(matrix, mask, solver, key[1])
    )


def _build_plan(
    matrix: np.ndarray, mask: np.ndarray, solver: str, fingerprint: str
) -> ChainSolvePlan:
    _charge("plans")
    transient = np.flatnonzero(~mask)
    absorbing = np.flatnonzero(mask)
    m = transient.size
    q_block = matrix[np.ix_(transient, transient)]
    q_rows, q_cols = np.nonzero(q_block)
    backend = _resolve_backend(solver, m, q_rows.size)
    order = None
    if backend == "sparse":
        order = _topological_order(m, q_rows, q_cols)
        backend = "sparse-tri" if order is not None else "sparse-lu"
    return ChainSolvePlan(
        fingerprint, backend, transient, absorbing, q_rows, q_cols, order
    )


def factorize_chain(
    matrix: np.ndarray, plan: ChainSolvePlan, incremental: bool = False
) -> Factorization:
    """Factor ``I - Q`` for the *values* in ``matrix`` along a structural
    plan.

    This is the per-solve (value-dependent) half of the split: a cached
    plan makes it ``O(nnz)`` gather + assembly for the sparse backends —
    and for ``"sparse-tri"`` nothing is numerically factored at all.

    With ``incremental=True`` the plan's base-factorization slot is
    consulted first: when the values differ from the cached base in only a
    few rows, a Sherman-Morrison-Woodbury rank-``k`` view of the base
    factorization is returned instead of a fresh one
    (:mod:`repro.markov.updates`), falling back — and refreshing the slot —
    above the rank crossover or when the capacitance matrix is
    ill-conditioned.  Requires a reusable base (any backend with scipy);
    without scipy the flag is a no-op, since the dense path re-factors per
    solve anyway.

    Raises :class:`SingularSystemError` when the system is exactly
    singular (the caller decides what that means).
    """
    transient = plan.transient
    if incremental and _HAVE_SCIPY and transient.size:
        return _factorize_incremental(matrix, plan)
    obs.count(f"solver.backend.{plan.backend}")
    return _full_factorize(matrix, plan)


def _full_factorize(matrix: np.ndarray, plan: ChainSolvePlan) -> Factorization:
    transient = plan.transient
    m = transient.size
    if plan.backend == "dense":
        system = np.eye(m) - matrix[np.ix_(transient, transient)]
        return _DenseFactorization(system)
    values = matrix[transient[plan.q_rows], transient[plan.q_cols]]
    q_sparse = _scipy_sparse.csr_matrix(
        (values, (plan.q_rows, plan.q_cols)), shape=(m, m)
    )
    system = (_scipy_sparse.identity(m, format="csr") - q_sparse).tocsr()
    if plan.backend == "sparse-tri":
        return _SparseTriangularFactorization(system, plan.order)
    return _SparseLUFactorization(system)


def _factorize_incremental(
    matrix: np.ndarray, plan: ChainSolvePlan
) -> Factorization:
    """The update path: serve off the plan's base slot when the delta is
    low-rank and well-conditioned, otherwise re-factor and refresh it."""
    from repro.markov import updates

    transient = plan.transient
    m = transient.size
    values = matrix[transient[plan.q_rows], transient[plan.q_cols]]
    slot = plan.update_slot
    with slot.lock:
        base = slot.factorization
        base_values = slot.values
    if base is not None and base.reusable:
        delta = updates.extract_row_delta(
            plan.q_rows, plan.q_cols, base_values, values, m
        )
        if delta is None:
            # rank 0: the values are bit-identical to the factored base
            updates._charge("applied")
            return base
        try:
            return updates.apply_low_rank_update(
                base, delta, rank_limit=updates.rank_crossover(m)
            )
        except updates.UpdateRejected:
            pass  # fall through to a fresh factorization + slot refresh
    obs.count(f"solver.backend.{plan.backend}")
    fresh = _full_factorize(matrix, plan)
    if fresh.reusable:
        with slot.lock:
            slot.factorization = fresh
            slot.values = values
    return fresh


def factorize(a: np.ndarray, solver: str = "auto") -> Factorization:
    """Factor an arbitrary square dense-input system through the backend
    heuristic (no structural cache — for one-off systems like the
    stationary-distribution solve).

    Raises :class:`SingularSystemError` on exact singularity.
    """
    solver = validate_solver(solver)
    a = np.asarray(a, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise EvaluationError(
            f"factorize expects a square matrix, got shape {a.shape}"
        )
    n = a.shape[0]
    backend = _resolve_backend(solver, n, int(np.count_nonzero(a)))
    if backend == "dense":
        return _DenseFactorization(a)
    return _SparseLUFactorization(_scipy_sparse.csr_matrix(a))
