"""Absorbing-chain analysis: the numerical engine behind equation (3).

The failure-augmented flow of a composite service is an absorbing DTMC with
two absorbing states, ``End`` (successful completion) and ``Fail``.  The
service unreliability is ``Pfail(S, fp) = 1 - p*(Start, End)`` where
``p*(Start, End)`` is the probability of eventual absorption in ``End``
starting from ``Start`` (eq. 3) — "standard Markov methods" in the paper's
words.  This module implements those standard methods:

given the canonical partition of the transition matrix into

.. math::

    P = \\begin{pmatrix} Q & R \\\\ 0 & I \\end{pmatrix}

with ``Q`` the transient-to-transient block and ``R`` the
transient-to-absorbing block, the fundamental matrix ``N = (I - Q)^{-1}``
yields absorption probabilities ``B = N R``, expected visit counts ``N``
itself, and expected steps-to-absorption ``t = N 1``.

Rather than forming the inverse we solve the linear systems through a
pluggable :mod:`repro.markov.solvers` backend.  The constructor performs
exactly one factorization and the *absorption* solve (which doubles as the
chain's well-posedness check); expected visits and expected steps are
solved lazily against that same factorization, and visit counts are solved
**per requested column** rather than eagerly against the full identity — a
caller that only wants ``absorption_probability`` pays one ``O(nnz)``-ish
solve, not three dense ones.  Backend selection (``solver="auto"``)
switches to sparse ``splu`` — or a pure-substitution triangular fast path
for DAG-like flows — on large sparse chains; see the solvers module.

The solves are *guarded*: a singular system still raises
:class:`~repro.errors.NotAbsorbingError` (the classical "transient state
cannot reach absorption" diagnosis), but a nearly-singular system — one
whose condition estimate or residual says the computed probabilities are
numerically untrustworthy — raises
:class:`~repro.errors.NumericalInstabilityError` instead of returning
garbage.  The condition check now uses the backend's cheap 1-norm
*estimate* (exact, and bit-identical to the historical guard, for small
dense systems) instead of an unconditional ``O(n^3)``
``np.linalg.cond``.  Absorption probabilities are clamped to ``[0, 1]``;
drift beyond ``DRIFT_TOL`` is itself treated as instability.
"""

from __future__ import annotations

from collections.abc import Hashable

import numpy as np

from repro.errors import (
    NotAbsorbingError,
    NumericalInstabilityError,
    UnknownStateError,
)
from repro.markov import solvers
from repro.markov.dtmc import DiscreteTimeMarkovChain

__all__ = ["AbsorbingChainAnalysis", "absorption_probability", "DRIFT_TOL"]

#: Maximum tolerated drift of an absorption probability beyond [0, 1]
#: before clamping is no longer honest and the solve is rejected.
DRIFT_TOL = 1e-6


class AbsorbingChainAnalysis:
    """Cached analysis of an absorbing DTMC.

    Args:
        chain: the chain to analyze.  It must contain at least one absorbing
            state; transient states from which no absorbing state is
            reachable make the analysis ill-posed and raise
            :class:`NotAbsorbingError`.
        solver: linear-solver backend request — ``"auto"`` (default),
            ``"dense"`` or ``"sparse"``; see :mod:`repro.markov.solvers`.
        solver_cache: structural-plan cache override (``None`` shares the
            process-wide cache, ``False`` disables plan caching).
        incremental: opt into low-rank (Sherman-Morrison-Woodbury) reuse
            of the plan's cached base factorization when only a few rows
            of ``Q`` changed since the last solve of this structure
            (:mod:`repro.markov.updates`); falls back to a fresh
            factorization automatically, so results stay within solver
            tolerance of the full solve either way.
    """

    def __init__(
        self,
        chain: DiscreteTimeMarkovChain,
        solver: str = "auto",
        solver_cache=None,
        incremental: bool = False,
    ):
        self._chain = chain
        self._solver = solvers.validate_solver(solver)
        self._transient = list(chain.transient_states())
        self._absorbing = list(chain.absorbing_states())
        if not self._absorbing:
            raise NotAbsorbingError("chain has no absorbing state")
        self._t_index = {s: i for i, s in enumerate(self._transient)}
        self._a_index = {s: i for i, s in enumerate(self._absorbing)}

        matrix = chain.matrix
        self._clamp_drift = 0.0
        self._factorization: solvers.Factorization | None = None
        self._plan: solvers.ChainSolvePlan | None = None
        self._visit_columns: dict[int, np.ndarray] = {}
        self._visits_matrix: np.ndarray | None = None
        self._steps: np.ndarray | None = None
        n_transient = len(self._transient)
        if not n_transient:
            self._absorption = np.zeros((0, len(self._absorbing)))
            self._visits_matrix = np.zeros((0, 0))
            self._steps = np.zeros(0)
            return

        from repro.runtime.guards import (
            MAX_CONDITION,
            RESIDUAL_TOL,
            check_finite_array,
        )

        check_finite_array("(I - Q) system: transition matrix", matrix)
        mask = np.zeros(len(matrix), dtype=bool)
        mask[[chain.index(s) for s in self._absorbing]] = True
        # Structural plan (partition, sparsity pattern, topological order,
        # backend choice) — cached across structurally identical chains, so
        # a sweep varying only rates skips straight to value extraction.
        plan = solvers.chain_plan(
            matrix, mask, solver=self._solver, cache=solver_cache
        )
        self._plan = plan
        r = matrix[np.ix_(plan.transient, plan.absorbing)]
        # Singular (I - Q) means some transient state can never reach an
        # absorbing state, i.e. the chain keeps probability mass cycling
        # forever; the reliability question is then ill-posed.
        try:
            factorization = solvers.factorize_chain(
                matrix, plan, incremental=incremental
            )
            self._absorption = np.asarray(factorization.solve(r))
        except solvers.SingularSystemError as exc:
            raise NotAbsorbingError(
                "some transient state cannot reach any absorbing state"
            ) from exc
        self._factorization = factorization
        # Near-singular systems factor without raising but produce numbers
        # no one should trust; measure instead of hoping.
        if not np.all(np.isfinite(self._absorption)):
            raise NumericalInstabilityError(
                "(I - Q) solve produced non-finite absorption "
                "probabilities"
            )
        condition = factorization.condition_estimate()
        if not np.isfinite(condition) or condition > MAX_CONDITION:
            raise NumericalInstabilityError(
                "(I - Q) system is ill-conditioned; absorption "
                "probabilities are untrustworthy",
                condition=condition,
            )
        residual = float(
            np.max(
                np.abs(factorization.matvec(self._absorption) - r),
                initial=0.0,
            )
        )
        if residual > RESIDUAL_TOL:
            raise NumericalInstabilityError(
                "(I - Q) solve failed the residual check",
                residual=residual, condition=condition,
            )
        # Clamp round-off drift outside [0, 1]; reject real violations.
        drift = float(
            max(
                np.max(-self._absorption, initial=0.0),
                np.max(self._absorption - 1.0, initial=0.0),
            )
        )
        self._clamp_drift = max(drift, 0.0)
        if drift > DRIFT_TOL:
            raise NumericalInstabilityError(
                "absorption probabilities drifted outside [0, 1] "
                "beyond tolerance",
                drift=drift, condition=condition,
            )
        self._absorption = np.clip(self._absorption, 0.0, 1.0)

    # -- accessors ------------------------------------------------------------

    @property
    def chain(self) -> DiscreteTimeMarkovChain:
        """The analyzed chain."""
        return self._chain

    @property
    def transient_states(self) -> tuple[Hashable, ...]:
        """Transient states, in analysis order."""
        return tuple(self._transient)

    @property
    def absorbing_states(self) -> tuple[Hashable, ...]:
        """Absorbing states, in analysis order."""
        return tuple(self._absorbing)

    @property
    def clamp_drift(self) -> float:
        """Largest round-off drift outside ``[0, 1]`` that was clamped
        (diagnostic; always ``<= DRIFT_TOL``, larger drift raises)."""
        return self._clamp_drift

    @property
    def solver_backend(self) -> str:
        """The resolved solver backend (``"dense"``, ``"sparse-lu"`` or
        ``"sparse-tri"``; ``"dense"`` for chains with no transient state)."""
        return self._plan.backend if self._plan is not None else "dense"

    @property
    def solve_method(self) -> str:
        """How this chain's system was actually solved: the factorization
        method (``"dense"``, ``"sparse-lu"``, ``"sparse-tri"``), with an
        ``"+smw"`` suffix when a low-rank update served the solve (e.g.
        ``"sparse-lu+smw"``); ``"none"`` for chains with no transient
        state."""
        if self._factorization is None:
            return "none"
        return self._factorization.method

    @property
    def structural_fingerprint(self) -> str | None:
        """The structural digest the solve plan was cached under (``None``
        for chains with no transient state)."""
        return self._plan.fingerprint if self._plan is not None else None

    # -- lazy solves ----------------------------------------------------------

    def _expected_steps(self) -> np.ndarray:
        """``t = N 1``, solved on first use against the kept factorization."""
        if self._steps is None:
            steps = np.asarray(
                self._factorization.solve(np.ones(len(self._transient)))
            )
            if not np.all(np.isfinite(steps)):
                raise NumericalInstabilityError(
                    "(I - Q) solve produced non-finite expected steps"
                )
            self._steps = steps
        return self._steps

    def _visits_column(self, column: int) -> np.ndarray:
        """Column ``column`` of the fundamental matrix ``N``.

        With a reusable factorization (kept LU or triangular substitution)
        each requested column is one cheap solve, memoized; without one
        (the scipy-less dense path, where every solve re-factors) the full
        ``N`` is computed lazily once — matching the historical total cost
        while still skipping it for absorption-only callers.
        """
        if self._visits_matrix is not None:
            return self._visits_matrix[:, column]
        if not self._factorization.reusable:
            visits = np.asarray(
                self._factorization.solve(np.eye(len(self._transient)))
            )
            if not np.all(np.isfinite(visits)):
                raise NumericalInstabilityError(
                    "(I - Q) solve produced non-finite expected visits"
                )
            self._visits_matrix = visits
            return visits[:, column]
        cached = self._visit_columns.get(column)
        if cached is None:
            unit = np.zeros(len(self._transient))
            unit[column] = 1.0
            cached = np.asarray(self._factorization.solve(unit))
            if not np.all(np.isfinite(cached)):
                raise NumericalInstabilityError(
                    "(I - Q) solve produced non-finite expected visits"
                )
            self._visit_columns[column] = cached
        return cached

    # -- queries --------------------------------------------------------------

    def absorption_probability(self, start: Hashable, target: Hashable) -> float:
        """Probability of eventual absorption in ``target`` from ``start``.

        ``start`` may itself be absorbing (probability is then 1 or 0).
        This is the paper's ``p*(start, target)`` of equation (3).
        """
        if target not in self._a_index:
            if target in self._t_index:
                return 0.0
            raise UnknownStateError(target)
        if start in self._a_index:
            return 1.0 if start == target else 0.0
        if start not in self._t_index:
            raise UnknownStateError(start)
        value = self._absorption[self._t_index[start], self._a_index[target]]
        return float(min(max(value, 0.0), 1.0))

    def absorption_distribution(self, start: Hashable) -> dict[Hashable, float]:
        """Absorption probabilities from ``start`` into every absorbing state."""
        return {
            target: self.absorption_probability(start, target)
            for target in self._absorbing
        }

    def expected_visits(self, start: Hashable, state: Hashable) -> float:
        """Expected number of visits to transient ``state`` from ``start``.

        This is entry ``(start, state)`` of the fundamental matrix ``N``.
        """
        if start in self._a_index:
            return 0.0
        if start not in self._t_index:
            raise UnknownStateError(start)
        if state not in self._t_index:
            if state in self._a_index:
                raise NotAbsorbingError(
                    "expected_visits is defined for transient states only"
                )
            raise UnknownStateError(state)
        column = self._visits_column(self._t_index[state])
        return float(column[self._t_index[start]])

    def expected_steps_to_absorption(self, start: Hashable) -> float:
        """Expected number of transitions until absorption from ``start``."""
        if start in self._a_index:
            return 0.0
        if start not in self._t_index:
            raise UnknownStateError(start)
        return float(self._expected_steps()[self._t_index[start]])


def absorption_probability(
    chain: DiscreteTimeMarkovChain,
    start: Hashable,
    target: Hashable,
    solver: str = "auto",
) -> float:
    """One-shot convenience wrapper around :class:`AbsorbingChainAnalysis`."""
    return AbsorbingChainAnalysis(chain, solver=solver).absorption_probability(
        start, target
    )
