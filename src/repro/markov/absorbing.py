"""Absorbing-chain analysis: the numerical engine behind equation (3).

The failure-augmented flow of a composite service is an absorbing DTMC with
two absorbing states, ``End`` (successful completion) and ``Fail``.  The
service unreliability is ``Pfail(S, fp) = 1 - p*(Start, End)`` where
``p*(Start, End)`` is the probability of eventual absorption in ``End``
starting from ``Start`` (eq. 3) — "standard Markov methods" in the paper's
words.  This module implements those standard methods on top of numpy:

given the canonical partition of the transition matrix into

.. math::

    P = \\begin{pmatrix} Q & R \\\\ 0 & I \\end{pmatrix}

with ``Q`` the transient-to-transient block and ``R`` the
transient-to-absorbing block, the fundamental matrix ``N = (I - Q)^{-1}``
yields absorption probabilities ``B = N R``, expected visit counts ``N``
itself, and expected steps-to-absorption ``t = N 1``.

Rather than forming the inverse we solve the linear systems directly
(``numpy.linalg.solve``), which is both faster and better conditioned.

The solves are *guarded*: a singular system still raises
:class:`~repro.errors.NotAbsorbingError` (the classical "transient state
cannot reach absorption" diagnosis), but a nearly-singular system — one
whose condition estimate or residual says the computed probabilities are
numerically untrustworthy — raises
:class:`~repro.errors.NumericalInstabilityError` instead of returning
garbage.  Absorption probabilities are clamped to ``[0, 1]``; drift beyond
``DRIFT_TOL`` is itself treated as instability.
"""

from __future__ import annotations

from collections.abc import Hashable

import numpy as np

from repro.errors import (
    NotAbsorbingError,
    NumericalInstabilityError,
    UnknownStateError,
)
from repro.markov.dtmc import DiscreteTimeMarkovChain

__all__ = ["AbsorbingChainAnalysis", "absorption_probability", "DRIFT_TOL"]

#: Maximum tolerated drift of an absorption probability beyond [0, 1]
#: before clamping is no longer honest and the solve is rejected.
DRIFT_TOL = 1e-6


class AbsorbingChainAnalysis:
    """Cached analysis of an absorbing DTMC.

    Args:
        chain: the chain to analyze.  It must contain at least one absorbing
            state; transient states from which no absorbing state is
            reachable make the analysis ill-posed and raise
            :class:`NotAbsorbingError`.
    """

    def __init__(self, chain: DiscreteTimeMarkovChain):
        self._chain = chain
        self._transient = list(chain.transient_states())
        self._absorbing = list(chain.absorbing_states())
        if not self._absorbing:
            raise NotAbsorbingError("chain has no absorbing state")
        self._t_index = {s: i for i, s in enumerate(self._transient)}
        self._a_index = {s: i for i, s in enumerate(self._absorbing)}

        matrix = chain.matrix
        t_rows = [chain.index(s) for s in self._transient]
        a_cols = [chain.index(s) for s in self._absorbing]
        self._clamp_drift = 0.0
        if t_rows:
            from repro.runtime.guards import (
                MAX_CONDITION,
                RESIDUAL_TOL,
                check_finite_array,
            )

            q = matrix[np.ix_(t_rows, t_rows)]
            r = matrix[np.ix_(t_rows, a_cols)]
            check_finite_array("(I - Q) system: transition matrix", q)
            check_finite_array("(I - Q) system: absorbing block", r)
            identity = np.eye(len(t_rows))
            system = identity - q
            # Singular (I - Q) means some transient state can never reach an
            # absorbing state, i.e. the chain keeps probability mass cycling
            # forever; the reliability question is then ill-posed.
            try:
                self._absorption = np.linalg.solve(system, r)
                self._expected_visits = np.linalg.solve(system, identity)
                self._expected_steps = np.linalg.solve(
                    system, np.ones(len(t_rows))
                )
            except np.linalg.LinAlgError as exc:
                raise NotAbsorbingError(
                    "some transient state cannot reach any absorbing state"
                ) from exc
            # Near-singular systems factor without raising but produce
            # numbers no one should trust; measure instead of hoping.
            if not np.all(np.isfinite(self._absorption)):
                raise NumericalInstabilityError(
                    "(I - Q) solve produced non-finite absorption "
                    "probabilities"
                )
            condition = float(np.linalg.cond(system, 1))
            if not np.isfinite(condition) or condition > MAX_CONDITION:
                raise NumericalInstabilityError(
                    "(I - Q) system is ill-conditioned; absorption "
                    "probabilities are untrustworthy",
                    condition=condition,
                )
            residual = float(
                np.max(np.abs(system @ self._absorption - r), initial=0.0)
            )
            if residual > RESIDUAL_TOL:
                raise NumericalInstabilityError(
                    "(I - Q) solve failed the residual check",
                    residual=residual, condition=condition,
                )
            # Clamp round-off drift outside [0, 1]; reject real violations.
            drift = float(
                max(
                    np.max(-self._absorption, initial=0.0),
                    np.max(self._absorption - 1.0, initial=0.0),
                )
            )
            self._clamp_drift = max(drift, 0.0)
            if drift > DRIFT_TOL:
                raise NumericalInstabilityError(
                    "absorption probabilities drifted outside [0, 1] "
                    "beyond tolerance",
                    drift=drift, condition=condition,
                )
            self._absorption = np.clip(self._absorption, 0.0, 1.0)
        else:
            self._absorption = np.zeros((0, len(a_cols)))
            self._expected_visits = np.zeros((0, 0))
            self._expected_steps = np.zeros(0)

    # -- accessors ------------------------------------------------------------

    @property
    def chain(self) -> DiscreteTimeMarkovChain:
        """The analyzed chain."""
        return self._chain

    @property
    def transient_states(self) -> tuple[Hashable, ...]:
        """Transient states, in analysis order."""
        return tuple(self._transient)

    @property
    def absorbing_states(self) -> tuple[Hashable, ...]:
        """Absorbing states, in analysis order."""
        return tuple(self._absorbing)

    @property
    def clamp_drift(self) -> float:
        """Largest round-off drift outside ``[0, 1]`` that was clamped
        (diagnostic; always ``<= DRIFT_TOL``, larger drift raises)."""
        return self._clamp_drift

    # -- queries --------------------------------------------------------------

    def absorption_probability(self, start: Hashable, target: Hashable) -> float:
        """Probability of eventual absorption in ``target`` from ``start``.

        ``start`` may itself be absorbing (probability is then 1 or 0).
        This is the paper's ``p*(start, target)`` of equation (3).
        """
        if target not in self._a_index:
            if target in self._t_index:
                return 0.0
            raise UnknownStateError(target)
        if start in self._a_index:
            return 1.0 if start == target else 0.0
        if start not in self._t_index:
            raise UnknownStateError(start)
        value = self._absorption[self._t_index[start], self._a_index[target]]
        return float(min(max(value, 0.0), 1.0))

    def absorption_distribution(self, start: Hashable) -> dict[Hashable, float]:
        """Absorption probabilities from ``start`` into every absorbing state."""
        return {
            target: self.absorption_probability(start, target)
            for target in self._absorbing
        }

    def expected_visits(self, start: Hashable, state: Hashable) -> float:
        """Expected number of visits to transient ``state`` from ``start``.

        This is entry ``(start, state)`` of the fundamental matrix ``N``.
        """
        if start in self._a_index:
            return 0.0
        if start not in self._t_index:
            raise UnknownStateError(start)
        if state not in self._t_index:
            if state in self._a_index:
                raise NotAbsorbingError(
                    "expected_visits is defined for transient states only"
                )
            raise UnknownStateError(state)
        return float(self._expected_visits[self._t_index[start], self._t_index[state]])

    def expected_steps_to_absorption(self, start: Hashable) -> float:
        """Expected number of transitions until absorption from ``start``."""
        if start in self._a_index:
            return 0.0
        if start not in self._t_index:
            raise UnknownStateError(start)
        return float(self._expected_steps[self._t_index[start]])


def absorption_probability(
    chain: DiscreteTimeMarkovChain, start: Hashable, target: Hashable
) -> float:
    """One-shot convenience wrapper around :class:`AbsorbingChainAnalysis`."""
    return AbsorbingChainAnalysis(chain).absorption_probability(start, target)
