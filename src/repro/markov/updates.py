"""Low-rank (Sherman-Morrison-Woodbury) updates of cached factorizations.

The what-if workloads — attribute sensitivities, crossover bisection,
pairwise architecture comparison, optimization loops — evaluate long runs
of *structurally identical* chains whose values differ in only a handful of
rows of ``Q``: perturbing one attribute changes the outgoing probabilities
of the states that call the perturbed service and nothing else.  PR 4's
structural plan cache already skips pattern/permutation work for those
re-solves; this module skips the *numeric re-factorization* too.

Write the perturbed system as a rank-``k`` row update of the base system:

.. math::

    A' \\;=\\; A + U W, \\qquad
    U \\in \\mathbb{R}^{m \\times k},\\; W \\in \\mathbb{R}^{k \\times m},

where ``A = I - Q`` is the *factored base*, the columns of ``U`` are the
unit vectors of the ``k`` changed rows and ``W`` stacks the row deltas
``\\Delta A = -\\Delta Q``.  Sherman-Morrison-Woodbury then solves the
perturbed system entirely through the *base* factorization:

.. math::

    A'^{-1} r \\;=\\; A^{-1} r \\;-\\; Z \\, C^{-1} \\, (W \\, A^{-1} r),
    \\qquad Z = A^{-1} U, \\quad C = I_k + W Z,

i.e. ``k`` extra base solves (amortized: ``Z`` is computed once per delta)
plus dense ``k \\times k`` work — ``O(n \\cdot k)`` per solve instead of a
fresh ``O(n^3)`` / nnz-factor factorization.

The update is *guarded*, never silently wrong:

- **rank crossover** — above :func:`rank_crossover` changed rows the
  ``k``-solve setup stops beating a fresh factorization and the caller
  falls back (counter ``solver.updates.fallback_rank``);
- **capacitance conditioning** — the exact 1-norm conditioning of the
  ``k \\times k`` capacitance matrix ``C`` (cheap at these ranks), taken
  as ``||C^{-1}||_1 \\cdot \\max(||C||_1, 1)`` so that a uniformly tiny
  ``C`` — nearly singular perturbed system, which the scale-invariant
  condition number would call perfect — still registers.  Past
  :data:`CAPACITANCE_MAX_CONDITION` the update formula itself would
  amplify error, so the caller falls back to a fresh factorization
  (counter ``solver.updates.fallback_condition``).

Every applied update still flows through the absorbing-chain guards in
:class:`~repro.markov.absorbing.AbsorbingChainAnalysis`:
:meth:`UpdatedFactorization.matvec` multiplies by the *exact* perturbed
system, so the residual check genuinely verifies the updated solution, and
the condition estimate runs through the updated solves.

Callers do not use this module directly — they pass
``incremental=True`` down the stack (evaluators, sweeps, sensitivities,
selection/comparison) and :func:`repro.markov.solvers.factorize_chain`
routes through :func:`apply_low_rank_update` against the plan's
base-factorization slot.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.markov.solvers import Factorization

__all__ = [
    "CAPACITANCE_MAX_CONDITION",
    "RowDelta",
    "UpdateRejected",
    "UpdatedFactorization",
    "apply_low_rank_update",
    "extract_row_delta",
    "rank_crossover",
    "reset_update_counters",
    "update_counts",
]

#: Maximum tolerated conditioning ``||C^{-1}||_1 * max(||C||_1, 1)`` of
#: the k-by-k capacitance matrix ``C = I + W Z`` before the update is
#: rejected in favor of a fresh factorization.  SMW amplifies base-solve
#: error by roughly this factor; past this bound the "exact parity"
#: contract with the full solve can no longer be honored.
CAPACITANCE_MAX_CONDITION = 1e8


def rank_crossover(m: int) -> int:
    """Largest delta rank worth updating for an ``m``-state system.

    The update costs ``k`` base solves plus ``O(k^2 m)`` dense work; a
    fresh sparse factorization costs roughly ``O(m^{1.5})`` on the flows
    this library produces.  ``k ~ sqrt(m)`` is where the two meet, with a
    floor of 4 so paper-sized systems still exercise the update path.
    """
    return max(4, int(round(float(m) ** 0.5)))


class UpdateRejected(Exception):
    """The low-rank update was rejected in favor of a fresh factorization.

    Attributes:
        reason: ``"rank"`` (delta rank above the crossover threshold) or
            ``"condition"`` (capacitance matrix ill-conditioned/singular).
    """

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


# ---------------------------------------------------------------------------
# counters (same pattern as the solvers module: in-process integers for
# tests/benchmarks, mirrored onto the metrics registry)
# ---------------------------------------------------------------------------

_counter_lock = threading.Lock()
_applied = 0
_fallback_rank = 0
_fallback_condition = 0


def update_counts() -> dict[str, int]:
    """Monotone per-process counters of the update path.

    ``applied`` counts solves served off a cached base factorization
    (including rank-0 reuse when the values did not change at all);
    ``fallback_rank`` / ``fallback_condition`` count rejections that fell
    back to a fresh factorization.
    """
    with _counter_lock:
        return {
            "applied": _applied,
            "fallback_rank": _fallback_rank,
            "fallback_condition": _fallback_condition,
        }


def reset_update_counters() -> None:
    """Zero the update counters (test isolation helper)."""
    global _applied, _fallback_rank, _fallback_condition
    with _counter_lock:
        _applied = 0
        _fallback_rank = 0
        _fallback_condition = 0


def _charge(counter: str) -> None:
    global _applied, _fallback_rank, _fallback_condition
    with _counter_lock:
        if counter == "applied":
            _applied += 1
        elif counter == "fallback_rank":
            _fallback_rank += 1
        else:
            _fallback_condition += 1
    obs.count(f"solver.updates.{counter}")


# ---------------------------------------------------------------------------
# delta extraction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RowDelta:
    """A row-sparse delta ``A' - A`` of one ``m``-state system ``I - Q``.

    Attributes:
        rows: sorted transient-local indices of the changed rows.
        delta: dense ``k x m`` stack of the changed rows of ``A' - A``
            (i.e. ``-(Q' - Q)`` restricted to those rows).
        m: the system order.
    """

    rows: np.ndarray
    delta: np.ndarray
    m: int

    @property
    def rank(self) -> int:
        """Number of changed rows ``k``."""
        return int(self.rows.size)


def extract_row_delta(
    q_rows: np.ndarray,
    q_cols: np.ndarray,
    base_values: np.ndarray,
    new_values: np.ndarray,
    m: int,
) -> RowDelta | None:
    """Diff two value vectors on a shared ``Q`` sparsity pattern.

    ``q_rows`` / ``q_cols`` are the plan's transient-local pattern arrays
    and the value vectors are the gathers ``Q[q_rows, q_cols]`` for the
    base and the perturbed matrix — structurally identical chains (same
    fingerprint) always gather on the same pattern, so a positional
    comparison is exact.  Returns ``None`` when nothing changed (rank 0).
    """
    changed = base_values != new_values
    if not np.any(changed):
        return None
    idx = np.flatnonzero(changed)
    rows = np.unique(q_rows[idx])
    delta = np.zeros((rows.size, m))
    # pattern entries are unique per (row, col): plain fancy assignment
    delta[np.searchsorted(rows, q_rows[idx]), q_cols[idx]] = -(
        new_values[idx] - base_values[idx]
    )
    return RowDelta(rows=rows, delta=delta, m=int(m))


# ---------------------------------------------------------------------------
# the updated factorization
# ---------------------------------------------------------------------------


class UpdatedFactorization(Factorization):
    """SMW view of ``A' = A + U W`` through a base factorization of ``A``.

    Behaves exactly like a factorization of the *perturbed* system:
    :meth:`solve` / :meth:`solve_transpose` apply the Woodbury correction,
    :meth:`matvec` multiplies by the exact perturbed matrix (so residual
    checks verify the updated solution, not the base one), and the
    inherited condition estimate runs through the corrected solves.

    ``norm1`` returns the triangle-inequality bound
    ``||A||_1 + ||\\Delta A||_1`` — an upper bound, which only makes the
    downstream condition guard *more* conservative.
    """

    reusable = True

    def __init__(self, base: Factorization, delta: RowDelta):
        super().__init__(base.n)
        if delta.m != base.n:
            raise ValueError(
                f"delta is for an order-{delta.m} system, base has order "
                f"{base.n}"
            )
        self.method = f"{base.method}+smw"
        self._base = base
        self._delta = delta
        rows = delta.rows
        k = rows.size
        u = np.zeros((base.n, k))
        u[rows, np.arange(k)] = 1.0
        z = np.asarray(base.solve(u), dtype=float)  # Z = A^{-1} U  (m x k)
        c = np.eye(k) + delta.delta @ z             # capacitance   (k x k)
        self._z = z
        self._c = c
        self._zt: np.ndarray | None = None  # A^{-T} W^T, lazily for transpose
        # ||C^{-1}||_1 * max(||C||_1, 1): the plain condition number is
        # scale-invariant, so a uniformly tiny C (nearly singular perturbed
        # system, huge SMW correction) would look perfectly conditioned —
        # flooring the scale at ||I_k||_1 = 1 makes the guard catch it.
        if not np.all(np.isfinite(c)):
            self._capacitance_condition = float("inf")
        else:
            try:
                inverse_norm = float(
                    np.abs(np.linalg.inv(c)).sum(axis=0).max()
                )
                scale = max(float(np.abs(c).sum(axis=0).max()), 1.0)
                self._capacitance_condition = inverse_norm * scale
            except np.linalg.LinAlgError:
                self._capacitance_condition = float("inf")

    # -- introspection -----------------------------------------------------

    @property
    def base(self) -> Factorization:
        """The factorization of the unperturbed system ``A``."""
        return self._base

    @property
    def rank(self) -> int:
        """Rank ``k`` of the applied update."""
        return self._delta.rank

    @property
    def capacitance_condition(self) -> float:
        """Conditioning ``||C^{-1}||_1 * max(||C||_1, 1)`` of the
        capacitance matrix ``C = I + W Z`` (the guarded quantity)."""
        return self._capacitance_condition

    # -- Factorization interface -------------------------------------------

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        y = np.asarray(self._base.solve(rhs), dtype=float)
        correction = np.linalg.solve(self._c, self._delta.delta @ y)
        return y - self._z @ correction

    def solve_transpose(self, rhs: np.ndarray) -> np.ndarray:
        # A'^T = A^T + W^T U^T; the capacitance of the transposed system
        # is exactly C^T, so no second capacitance factorization is needed.
        s = np.asarray(self._base.solve_transpose(rhs), dtype=float)
        if self._zt is None:
            self._zt = np.asarray(
                self._base.solve_transpose(self._delta.delta.T), dtype=float
            )
        correction = np.linalg.solve(self._c.T, s[self._delta.rows])
        return s - self._zt @ correction

    def matvec(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(self._base.matvec(x), dtype=float).copy()
        out[self._delta.rows] += self._delta.delta @ x
        return out

    def norm1(self) -> float:
        if self._norm1 is None:
            delta_norm = float(
                np.abs(self._delta.delta).sum(axis=0).max(initial=0.0)
            )
            self._norm1 = self._base.norm1() + delta_norm
        return self._norm1


def apply_low_rank_update(
    base: Factorization,
    delta: RowDelta,
    rank_limit: int | None = None,
    max_condition: float = CAPACITANCE_MAX_CONDITION,
) -> UpdatedFactorization:
    """Build the SMW view of ``base`` perturbed by ``delta``, or reject.

    Raises :class:`UpdateRejected` (charging the matching fallback
    counter) when the delta rank exceeds ``rank_limit`` or the capacitance
    matrix's exact condition number exceeds ``max_condition`` — the caller
    then re-factors from scratch.  On success charges
    ``solver.updates.applied``.
    """
    if rank_limit is not None and delta.rank > rank_limit:
        _charge("fallback_rank")
        raise UpdateRejected(
            "rank",
            f"delta rank {delta.rank} exceeds crossover threshold "
            f"{rank_limit}",
        )
    updated = UpdatedFactorization(base, delta)
    condition = updated.capacitance_condition
    if not np.isfinite(condition) or condition > max_condition:
        _charge("fallback_condition")
        raise UpdateRejected(
            "condition",
            f"capacitance matrix condition {condition:.3e} exceeds "
            f"{max_condition:.3e}",
        )
    _charge("applied")
    return updated
