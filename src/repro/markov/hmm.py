"""Hidden Markov Models for usage-profile estimation.

The paper (section 5) assumes "the Markov model specifying the service usage
profile is completely known" and points at Roshandel & Medvidovic [16] for
the realistic case: the profile must be *estimated* from imperfect
observations of the service's behavior, for which a Hidden Markov Model is
the standard tool.  This module provides that substrate:

- :meth:`HiddenMarkovModel.forward` / :meth:`backward` — scaled
  forward/backward passes (log-likelihood of an observation trace);
- :meth:`HiddenMarkovModel.viterbi` — most likely hidden state path;
- :meth:`HiddenMarkovModel.baum_welch` — EM re-estimation of transition and
  emission matrices from traces, from which a
  :class:`~repro.markov.dtmc.DiscreteTimeMarkovChain` usage profile can be
  extracted (:meth:`to_chain`).

Observations are integer symbol indices; callers map request labels to
symbols.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.errors import InvalidDistributionError, MarkovError
from repro.markov.dtmc import DiscreteTimeMarkovChain

__all__ = ["HiddenMarkovModel"]


def _validate_stochastic(name: str, matrix: np.ndarray, axis: int = -1) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    if np.any(matrix < 0.0):
        raise InvalidDistributionError(f"{name} has negative entries")
    sums = matrix.sum(axis=axis)
    if not np.allclose(sums, 1.0, atol=1e-6):
        raise InvalidDistributionError(f"{name} rows must sum to 1, got {sums}")
    return matrix / matrix.sum(axis=axis, keepdims=True)


class HiddenMarkovModel:
    """A discrete-emission HMM ``(pi, A, B)``.

    Args:
        initial: length-``n`` initial state distribution ``pi``.
        transition: ``n x n`` hidden-state transition matrix ``A``.
        emission: ``n x m`` emission matrix ``B`` (row = hidden state,
            column = observation symbol).
        state_labels: optional labels for hidden states (used by
            :meth:`to_chain`).
    """

    def __init__(
        self,
        initial: np.ndarray,
        transition: np.ndarray,
        emission: np.ndarray,
        state_labels: Sequence[Hashable] | None = None,
    ):
        self.initial = _validate_stochastic("initial distribution", np.atleast_1d(initial))
        self.transition = _validate_stochastic("transition matrix", transition)
        self.emission = _validate_stochastic("emission matrix", emission)
        n = self.initial.shape[0]
        if self.transition.shape != (n, n):
            raise InvalidDistributionError(
                f"transition matrix shape {self.transition.shape} != ({n}, {n})"
            )
        if self.emission.shape[0] != n:
            raise InvalidDistributionError(
                f"emission matrix has {self.emission.shape[0]} rows, expected {n}"
            )
        if state_labels is not None and len(tuple(state_labels)) != n:
            raise InvalidDistributionError("state_labels length must match state count")
        self.state_labels = tuple(state_labels) if state_labels is not None else tuple(range(n))

    @property
    def n_states(self) -> int:
        """Number of hidden states."""
        return self.initial.shape[0]

    @property
    def n_symbols(self) -> int:
        """Number of observation symbols."""
        return self.emission.shape[1]

    def _check_trace(self, trace: Sequence[int]) -> np.ndarray:
        obs = np.asarray(trace, dtype=int)
        if obs.ndim != 1 or obs.size == 0:
            raise MarkovError("observation trace must be a non-empty 1-D sequence")
        if np.any(obs < 0) or np.any(obs >= self.n_symbols):
            raise MarkovError(
                f"observation symbols must lie in [0, {self.n_symbols})"
            )
        return obs

    # -- inference ---------------------------------------------------------

    def forward(self, trace: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
        """Scaled forward pass.

        Returns ``(alpha, scale)`` where ``alpha[t, i]`` is the scaled
        probability of being in state ``i`` after observing ``trace[:t+1]``
        and ``scale[t]`` the per-step normalizers;
        ``log-likelihood = sum(log(scale))``.
        """
        obs = self._check_trace(trace)
        steps = obs.size
        alpha = np.zeros((steps, self.n_states))
        scale = np.zeros(steps)
        alpha[0] = self.initial * self.emission[:, obs[0]]
        scale[0] = alpha[0].sum()
        if scale[0] == 0.0:
            raise MarkovError("trace has zero likelihood under the model")
        alpha[0] /= scale[0]
        for t in range(1, steps):
            alpha[t] = (alpha[t - 1] @ self.transition) * self.emission[:, obs[t]]
            scale[t] = alpha[t].sum()
            if scale[t] == 0.0:
                raise MarkovError("trace has zero likelihood under the model")
            alpha[t] /= scale[t]
        return alpha, scale

    def backward(self, trace: Sequence[int], scale: np.ndarray) -> np.ndarray:
        """Scaled backward pass using the normalizers from :meth:`forward`."""
        obs = self._check_trace(trace)
        steps = obs.size
        beta = np.zeros((steps, self.n_states))
        beta[-1] = 1.0 / scale[-1]
        for t in range(steps - 2, -1, -1):
            beta[t] = (self.transition @ (self.emission[:, obs[t + 1]] * beta[t + 1]))
            beta[t] /= scale[t]
        return beta

    def log_likelihood(self, trace: Sequence[int]) -> float:
        """Log probability of ``trace`` under the model."""
        _, scale = self.forward(trace)
        return float(np.log(scale).sum())

    def viterbi(self, trace: Sequence[int]) -> list[Hashable]:
        """Most likely hidden-state path for ``trace`` (labels)."""
        obs = self._check_trace(trace)
        steps = obs.size
        with np.errstate(divide="ignore"):
            log_a = np.log(self.transition)
            log_b = np.log(self.emission)
            log_pi = np.log(self.initial)
        delta = np.zeros((steps, self.n_states))
        back = np.zeros((steps, self.n_states), dtype=int)
        delta[0] = log_pi + log_b[:, obs[0]]
        for t in range(1, steps):
            scores = delta[t - 1][:, None] + log_a
            back[t] = np.argmax(scores, axis=0)
            delta[t] = scores[back[t], np.arange(self.n_states)] + log_b[:, obs[t]]
        path = np.zeros(steps, dtype=int)
        path[-1] = int(np.argmax(delta[-1]))
        for t in range(steps - 2, -1, -1):
            path[t] = back[t + 1, path[t + 1]]
        return [self.state_labels[i] for i in path]

    # -- learning ------------------------------------------------------------

    def baum_welch(
        self,
        traces: Sequence[Sequence[int]],
        iterations: int = 50,
        tolerance: float = 1e-6,
    ) -> "HiddenMarkovModel":
        """EM re-estimation from one or more observation traces.

        Returns a *new* model; ``self`` is unchanged.  Iterates until the
        total log-likelihood improves by less than ``tolerance`` or
        ``iterations`` is reached.
        """
        if not traces:
            raise MarkovError("baum_welch requires at least one trace")
        model = self
        previous = -np.inf
        for _ in range(iterations):
            pi_acc = np.zeros(model.n_states)
            a_num = np.zeros((model.n_states, model.n_states))
            a_den = np.zeros(model.n_states)
            b_num = np.zeros((model.n_states, model.n_symbols))
            b_den = np.zeros(model.n_states)
            total_ll = 0.0
            for trace in traces:
                obs = model._check_trace(trace)
                alpha, scale = model.forward(obs)
                beta = model.backward(obs, scale)
                total_ll += float(np.log(scale).sum())
                gamma = alpha * beta * scale[:, None]
                gamma = gamma / gamma.sum(axis=1, keepdims=True)
                pi_acc += gamma[0]
                for t in range(obs.size - 1):
                    xi = (
                        alpha[t][:, None]
                        * model.transition
                        * model.emission[:, obs[t + 1]][None, :]
                        * beta[t + 1][None, :]
                    )
                    xi_sum = xi.sum()
                    if xi_sum > 0.0:
                        a_num += xi / xi_sum
                    a_den += gamma[t]
                for t in range(obs.size):
                    b_num[:, obs[t]] += gamma[t]
                    b_den += gamma[t]
            new_pi = pi_acc / pi_acc.sum()
            new_a = np.where(a_den[:, None] > 0.0, a_num / np.maximum(a_den[:, None], 1e-300), model.transition)
            new_a = new_a / new_a.sum(axis=1, keepdims=True)
            new_b = np.where(b_den[:, None] > 0.0, b_num / np.maximum(b_den[:, None], 1e-300), model.emission)
            new_b = new_b / new_b.sum(axis=1, keepdims=True)
            model = HiddenMarkovModel(new_pi, new_a, new_b, model.state_labels)
            if abs(total_ll - previous) < tolerance:
                break
            previous = total_ll
        return model

    # -- export ---------------------------------------------------------------

    def to_chain(self) -> DiscreteTimeMarkovChain:
        """The hidden-state transition structure as a plain DTMC.

        This is the estimated *usage profile*: feed its transition
        probabilities into a :class:`~repro.model.flow.ServiceFlow`.
        """
        return DiscreteTimeMarkovChain(self.state_labels, self.transition)
