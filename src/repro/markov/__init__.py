"""Discrete-time Markov chain substrate.

The usage profile of every composite service in the paper is a DTMC; this
subpackage provides the chain representation, the absorbing-chain analysis
behind equation (3), long-run (stationary) analysis, a Hidden Markov
Model module for estimating usage profiles from observation traces (the
paper's reference [16]), and the pluggable linear-solver backends
(:mod:`repro.markov.solvers`) the analyses run on.
"""

from repro.markov.absorbing import AbsorbingChainAnalysis, absorption_probability
from repro.markov.ctmc import ContinuousTimeMarkovChain
from repro.markov.dtmc import ChainBuilder, DiscreteTimeMarkovChain
from repro.markov.hmm import HiddenMarkovModel
from repro.markov.solvers import (
    SOLVERS,
    default_solver_cache,
    scipy_available,
    solver_cache_stats,
    validate_solver,
)
from repro.markov.stationary import (
    is_irreducible,
    mean_first_passage_time,
    stationary_distribution,
)
from repro.markov.updates import (
    UpdatedFactorization,
    rank_crossover,
    update_counts,
)

__all__ = [
    "SOLVERS",
    "AbsorbingChainAnalysis",
    "ChainBuilder",
    "ContinuousTimeMarkovChain",
    "DiscreteTimeMarkovChain",
    "HiddenMarkovModel",
    "UpdatedFactorization",
    "absorption_probability",
    "default_solver_cache",
    "is_irreducible",
    "mean_first_passage_time",
    "rank_crossover",
    "scipy_available",
    "solver_cache_stats",
    "stationary_distribution",
    "update_counts",
    "validate_solver",
]
