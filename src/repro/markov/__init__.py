"""Discrete-time Markov chain substrate.

The usage profile of every composite service in the paper is a DTMC; this
subpackage provides the chain representation, the absorbing-chain analysis
behind equation (3), long-run (stationary) analysis, and a Hidden Markov
Model module for estimating usage profiles from observation traces (the
paper's reference [16]).
"""

from repro.markov.absorbing import AbsorbingChainAnalysis, absorption_probability
from repro.markov.ctmc import ContinuousTimeMarkovChain
from repro.markov.dtmc import ChainBuilder, DiscreteTimeMarkovChain
from repro.markov.hmm import HiddenMarkovModel
from repro.markov.stationary import (
    is_irreducible,
    mean_first_passage_time,
    stationary_distribution,
)

__all__ = [
    "AbsorbingChainAnalysis",
    "ChainBuilder",
    "ContinuousTimeMarkovChain",
    "DiscreteTimeMarkovChain",
    "HiddenMarkovModel",
    "absorption_probability",
    "is_irreducible",
    "mean_first_passage_time",
    "stationary_distribution",
]
