"""Discrete-time Markov chains over arbitrary hashable state labels.

The paper models the abstract usage profile of every composite service as a
DTMC (section 2, point (b)).  This module is the generic substrate: chain
construction and validation, stepping, reachability, and classification of
transient vs absorbing states.  The reliability-specific analysis (absorbing
probabilities into ``End`` vs ``Fail``) lives in
:mod:`repro.markov.absorbing`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

import numpy as np

from repro.errors import InvalidDistributionError, UnknownStateError

__all__ = ["DiscreteTimeMarkovChain", "ChainBuilder"]

#: Tolerance for row-stochasticity checks.
_ROW_SUM_TOL = 1e-9


class DiscreteTimeMarkovChain:
    """An immutable DTMC with labeled states and a dense transition matrix.

    Args:
        states: ordered state labels (any hashable, must be unique).
        matrix: row-stochastic transition matrix aligned with ``states``.

    The matrix is validated on construction: entries must lie in ``[0, 1]``
    (within tolerance) and every row must sum to one.  States whose entire
    probability mass self-loops are *absorbing*.
    """

    __slots__ = ("_states", "_index", "_matrix")

    def __init__(self, states: Iterable[Hashable], matrix: np.ndarray):
        state_list = tuple(states)
        if len(set(state_list)) != len(state_list):
            raise InvalidDistributionError("state labels must be unique")
        if not state_list:
            raise InvalidDistributionError("a Markov chain needs at least one state")
        mat = np.asarray(matrix, dtype=float)
        n = len(state_list)
        if mat.shape != (n, n):
            raise InvalidDistributionError(
                f"matrix shape {mat.shape} does not match {n} states"
            )
        if np.any(mat < -_ROW_SUM_TOL) or np.any(mat > 1.0 + _ROW_SUM_TOL):
            raise InvalidDistributionError("transition probabilities must lie in [0, 1]")
        row_sums = mat.sum(axis=1)
        bad = np.where(np.abs(row_sums - 1.0) > 1e-6)[0]
        if bad.size:
            raise InvalidDistributionError(
                f"rows {[state_list[i] for i in bad]} sum to "
                f"{row_sums[bad]} instead of 1"
            )
        # renormalize away round-off so downstream linear algebra is clean
        mat = np.clip(mat, 0.0, 1.0)
        mat = mat / mat.sum(axis=1, keepdims=True)
        self._states = state_list
        self._index = {s: i for i, s in enumerate(state_list)}
        self._matrix = mat
        self._matrix.setflags(write=False)

    # -- basic accessors ---------------------------------------------------

    @property
    def states(self) -> tuple[Hashable, ...]:
        """The ordered state labels."""
        return self._states

    @property
    def matrix(self) -> np.ndarray:
        """The (read-only) row-stochastic transition matrix."""
        return self._matrix

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, state: Hashable) -> bool:
        return state in self._index

    def index(self, state: Hashable) -> int:
        """Row/column index of ``state`` (raises :class:`UnknownStateError`)."""
        try:
            return self._index[state]
        except KeyError:
            raise UnknownStateError(state) from None

    def probability(self, source: Hashable, target: Hashable) -> float:
        """One-step transition probability ``P(source -> target)``."""
        return float(self._matrix[self.index(source), self.index(target)])

    def successors(self, state: Hashable) -> dict[Hashable, float]:
        """Mapping of states reachable from ``state`` in one step (prob > 0)."""
        row = self._matrix[self.index(state)]
        return {
            self._states[j]: float(p) for j, p in enumerate(row) if p > 0.0
        }

    # -- classification ------------------------------------------------------

    def is_absorbing_state(self, state: Hashable) -> bool:
        """True when ``state`` self-loops with probability one."""
        i = self.index(state)
        return bool(self._matrix[i, i] >= 1.0 - _ROW_SUM_TOL)

    def absorbing_states(self) -> tuple[Hashable, ...]:
        """All absorbing states, in state order."""
        return tuple(s for s in self._states if self.is_absorbing_state(s))

    def transient_states(self) -> tuple[Hashable, ...]:
        """All non-absorbing states, in state order."""
        return tuple(s for s in self._states if not self.is_absorbing_state(s))

    def reachable_from(self, start: Hashable) -> frozenset[Hashable]:
        """States reachable from ``start`` (including itself) through
        positive-probability paths."""
        seen = {self.index(start)}
        frontier = [self.index(start)]
        while frontier:
            i = frontier.pop()
            for j in np.nonzero(self._matrix[i] > 0.0)[0]:
                if int(j) not in seen:
                    seen.add(int(j))
                    frontier.append(int(j))
        return frozenset(self._states[i] for i in seen)

    # -- dynamics --------------------------------------------------------------

    def step_distribution(
        self, distribution: Mapping[Hashable, float], steps: int = 1
    ) -> dict[Hashable, float]:
        """Push a state distribution ``steps`` transitions forward."""
        if steps < 0:
            raise InvalidDistributionError("steps must be non-negative")
        vec = np.zeros(len(self._states))
        for state, mass in distribution.items():
            vec[self.index(state)] = mass
        total = vec.sum()
        if not np.isclose(total, 1.0, atol=1e-6):
            raise InvalidDistributionError(
                f"initial distribution sums to {total}, expected 1"
            )
        for _ in range(steps):
            vec = vec @ self._matrix
        return {s: float(vec[i]) for i, s in enumerate(self._states) if vec[i] > 0.0}

    def n_step_matrix(self, steps: int) -> np.ndarray:
        """The ``steps``-step transition matrix ``P**steps``."""
        if steps < 0:
            raise InvalidDistributionError("steps must be non-negative")
        return np.linalg.matrix_power(self._matrix, steps)

    def __repr__(self) -> str:
        return (
            f"DiscreteTimeMarkovChain(states={len(self._states)}, "
            f"absorbing={len(self.absorbing_states())})"
        )


class ChainBuilder:
    """Incremental construction of a :class:`DiscreteTimeMarkovChain`.

    States are added implicitly by naming them in edges; probability mass
    not assigned on a row is reported as an error at :meth:`build` time
    (unless the state has no outgoing edges at all, in which case it is made
    absorbing with a self-loop — the convention for ``End``/``Fail`` states).
    """

    def __init__(self) -> None:
        self._order: list[Hashable] = []
        self._edges: dict[Hashable, dict[Hashable, float]] = {}

    def add_state(self, state: Hashable) -> "ChainBuilder":
        """Declare a state explicitly (useful to pin state ordering)."""
        if state not in self._edges:
            self._order.append(state)
            self._edges[state] = {}
        return self

    def add_edge(self, source: Hashable, target: Hashable, probability: float) -> "ChainBuilder":
        """Add (accumulate) transition probability from ``source`` to ``target``."""
        if probability < 0.0:
            raise InvalidDistributionError(
                f"negative probability {probability} on edge {source!r}->{target!r}"
            )
        self.add_state(source)
        self.add_state(target)
        row = self._edges[source]
        row[target] = row.get(target, 0.0) + float(probability)
        return self

    def build(self) -> DiscreteTimeMarkovChain:
        """Validate and freeze into a :class:`DiscreteTimeMarkovChain`."""
        n = len(self._order)
        index = {s: i for i, s in enumerate(self._order)}
        matrix = np.zeros((n, n))
        for source, row in self._edges.items():
            if not row:
                matrix[index[source], index[source]] = 1.0  # absorbing by convention
                continue
            for target, p in row.items():
                matrix[index[source], index[target]] = p
        return DiscreteTimeMarkovChain(self._order, matrix)
