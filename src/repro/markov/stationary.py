"""Long-run analysis of ergodic chains.

The reliability evaluation itself only needs absorbing-chain analysis, but a
usage-profile substrate is not complete without the long-run side: when a
flow model is built from *monitoring* data (the paper's section 6 points at
monitoring as the complementary activity to prediction), the observed
request stream is a recurrent chain whose stationary distribution gives the
per-state utilization used to calibrate transition probabilities.
"""

from __future__ import annotations

from collections.abc import Hashable

import numpy as np

from repro.errors import MarkovError, UnknownStateError
from repro.markov.dtmc import DiscreteTimeMarkovChain

__all__ = ["stationary_distribution", "mean_first_passage_time", "is_irreducible"]


def is_irreducible(chain: DiscreteTimeMarkovChain) -> bool:
    """True when every state can reach every other state."""
    n = len(chain)
    for state in chain.states:
        if len(chain.reachable_from(state)) != n:
            return False
    return True


def _solve_normalized_nullspace(
    deficient: np.ndarray, solver: str = "auto"
) -> np.ndarray:
    """Solve ``deficient @ x = 0`` with ``sum(x) = 1`` through the solver
    backend, falling back to least squares when the square system misfires.

    ``deficient`` is a rank-``n-1`` matrix (``P^T - I`` or a CTMC generator
    transpose): replacing its last row with the normalization constraint
    makes the system square and — for irreducible inputs — nonsingular, so
    the pluggable backend applies.  Degenerate inputs fall back to the
    historical overdetermined ``lstsq`` form rather than failing.
    """
    from repro.markov import solvers

    n = deficient.shape[0]
    square = deficient.copy()
    square[-1, :] = 1.0
    rhs = np.zeros(n)
    rhs[-1] = 1.0
    try:
        solution = np.asarray(solvers.factorize(square, solver).solve(rhs))
        residual = float(np.max(np.abs(square @ solution - rhs), initial=0.0))
        if np.all(np.isfinite(solution)) and residual <= 1e-8:
            return solution
    except solvers.SingularSystemError:
        pass
    stacked = np.vstack([deficient, np.ones((1, n))])
    stacked_rhs = np.zeros(n + 1)
    stacked_rhs[-1] = 1.0
    solution, *_ = np.linalg.lstsq(stacked, stacked_rhs, rcond=None)
    return solution


def stationary_distribution(
    chain: DiscreteTimeMarkovChain, solver: str = "auto"
) -> dict[Hashable, float]:
    """The stationary distribution ``pi`` with ``pi P = pi``.

    Solved as the null space of ``(P^T - I)`` with the last equation
    replaced by the normalization constraint — a square system the
    pluggable :mod:`repro.markov.solvers` backend handles (``lstsq`` on the
    overdetermined form remains the fallback for degenerate inputs).
    Raises :class:`MarkovError` for reducible chains (the distribution
    would not be unique).
    """
    if not is_irreducible(chain):
        raise MarkovError(
            "stationary distribution requires an irreducible chain"
        )
    n = len(chain)
    solution = _solve_normalized_nullspace(chain.matrix.T - np.eye(n), solver)
    solution = np.clip(solution, 0.0, None)
    solution = solution / solution.sum()
    return {s: float(solution[i]) for i, s in enumerate(chain.states)}


def mean_first_passage_time(
    chain: DiscreteTimeMarkovChain, source: Hashable, target: Hashable
) -> float:
    """Expected number of steps to first reach ``target`` from ``source``.

    Computed by making ``target`` absorbing and reading the expected
    steps-to-absorption; requires ``target`` to be reachable from
    ``source``.
    """
    if source not in chain or target not in chain:
        missing = source if source not in chain else target
        raise UnknownStateError(missing)
    if source == target:
        return 0.0
    if target not in chain.reachable_from(source):
        raise MarkovError(f"{target!r} is not reachable from {source!r}")

    from repro.markov.absorbing import AbsorbingChainAnalysis

    matrix = chain.matrix.copy()
    t = chain.index(target)
    matrix[t, :] = 0.0
    matrix[t, t] = 1.0
    # Other states unable to reach the (now absorbing) target would make the
    # analysis singular; restrict to the reachable sub-chain first.
    modified = DiscreteTimeMarkovChain(chain.states, matrix)
    reach_target = {
        s for s in modified.states
        if target in modified.reachable_from(s)
    }
    keep = [s for s in modified.states if s in reach_target]
    keep_idx = [modified.index(s) for s in keep]
    sub = modified.matrix[np.ix_(keep_idx, keep_idx)]
    # Redirect lost mass (edges into unreachable states) to a fresh sink...
    # by construction there is none: any state with an edge into a state that
    # cannot reach the target also cannot be on a path to the target once
    # that edge is taken, but the *state itself* may still reach the target
    # through other edges.  Renormalizing would bias the answer, so instead
    # route the lost mass to an explicit "lost" absorbing state and condition
    # on absorption at the target.
    lost = 1.0 - sub.sum(axis=1)
    states: list[Hashable] = list(keep) + ["__lost__"]
    n = len(states)
    full = np.zeros((n, n))
    full[: n - 1, : n - 1] = sub
    full[: n - 1, n - 1] = np.clip(lost, 0.0, 1.0)
    full[n - 1, n - 1] = 1.0
    analysis = AbsorbingChainAnalysis(DiscreteTimeMarkovChain(states, full))
    p_hit = analysis.absorption_probability(source, target)
    if p_hit <= 0.0:
        raise MarkovError(f"{target!r} is not reachable from {source!r}")
    # E[steps | absorbed at target] via visit counts weighted by the
    # probability of hitting the target from each visited state.
    total = 0.0
    for state in analysis.transient_states:
        visits = analysis.expected_visits(source, state)
        if visits > 0.0:
            total += visits * analysis.absorption_probability(state, target)
    return total / p_hit
