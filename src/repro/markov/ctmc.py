"""Continuous-time Markov chains.

The paper's simple-service failure models are CTMCs in disguise: eq. (1)'s
``Pfail(cpu, N) = 1 - e^(-lambda N / s)`` is the absorption probability of
the two-state working->failed chain over the execution duration ``N / s``.
This module makes that substrate explicit, which buys two things:

- a *validation* route for the exponential models (the test suite checks
  eq. (1) against :meth:`transient_distribution` of the two-state chain);
- the machinery for the **repair extension** (see
  :mod:`repro.reliability.availability`): the paper assumes "no repair
  occurs" — a failure/repair birth-death CTMC yields the steady-state
  availability that releases that assumption at the resource level.

Transient analysis uses **uniformization** (Jensen's method): with
``q >= max_i |Q_ii|``, ``P(t) = sum_k Poisson(qt, k) * P_hat^k`` where
``P_hat = I + Q/q`` — numerically robust, no matrix exponentials of
ill-conditioned generators.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

import numpy as np

from repro.errors import InvalidDistributionError, MarkovError, UnknownStateError

__all__ = ["ContinuousTimeMarkovChain"]


class ContinuousTimeMarkovChain:
    """A CTMC with labeled states and generator matrix ``Q``.

    Args:
        states: ordered unique state labels.
        generator: the ``n x n`` generator: non-negative off-diagonal rates,
            rows summing to zero (diagonal = minus the exit rate).
    """

    def __init__(self, states: Iterable[Hashable], generator: np.ndarray):
        state_list = tuple(states)
        if len(set(state_list)) != len(state_list) or not state_list:
            raise InvalidDistributionError("states must be unique and non-empty")
        q = np.asarray(generator, dtype=float)
        n = len(state_list)
        if q.shape != (n, n):
            raise InvalidDistributionError(
                f"generator shape {q.shape} does not match {n} states"
            )
        off_diagonal = q.copy()
        np.fill_diagonal(off_diagonal, 0.0)
        if np.any(off_diagonal < 0.0):
            raise InvalidDistributionError(
                "off-diagonal generator rates must be non-negative"
            )
        if not np.allclose(q.sum(axis=1), 0.0, atol=1e-9):
            raise InvalidDistributionError("generator rows must sum to zero")
        self._states = state_list
        self._index = {s: i for i, s in enumerate(state_list)}
        self._generator = q
        self._generator.setflags(write=False)

    # -- accessors ---------------------------------------------------------

    @property
    def states(self) -> tuple[Hashable, ...]:
        """The ordered state labels."""
        return self._states

    @property
    def generator(self) -> np.ndarray:
        """The (read-only) generator matrix."""
        return self._generator

    def index(self, state: Hashable) -> int:
        """Index of ``state`` (raises :class:`UnknownStateError`)."""
        try:
            return self._index[state]
        except KeyError:
            raise UnknownStateError(state) from None

    def rate(self, source: Hashable, target: Hashable) -> float:
        """Transition rate from ``source`` to ``target``."""
        return float(self._generator[self.index(source), self.index(target)])

    def is_absorbing_state(self, state: Hashable) -> bool:
        """True when the state has no exit rate."""
        i = self.index(state)
        return bool(abs(self._generator[i, i]) < 1e-15)

    # -- transient analysis ---------------------------------------------------

    def transient_distribution(
        self,
        initial: Mapping[Hashable, float],
        time: float,
        tolerance: float = 1e-12,
    ) -> dict[Hashable, float]:
        """State distribution at ``time`` by uniformization.

        Args:
            initial: the distribution at time 0 (must sum to 1).
            time: elapsed time (non-negative).
            tolerance: truncation bound on the neglected Poisson tail mass.
        """
        if time < 0:
            raise MarkovError("time must be non-negative")
        n = len(self._states)
        pi = np.zeros(n)
        for state, mass in initial.items():
            pi[self.index(state)] = mass
        if not np.isclose(pi.sum(), 1.0, atol=1e-9):
            raise InvalidDistributionError(
                f"initial distribution sums to {pi.sum()}, expected 1"
            )
        if time == 0.0:
            return {s: float(pi[i]) for i, s in enumerate(self._states)}

        q = float(max(-np.diag(self._generator).min(), 1e-300))
        p_hat = np.eye(n) + self._generator / q
        # Poisson(q t) weights, accumulated until the tail is below tol
        qt = q * time
        result = np.zeros(n)
        term_vector = pi.copy()
        log_weight = -qt  # log Poisson(k=0)
        weight = np.exp(log_weight)
        accumulated = weight
        result += weight * term_vector
        k = 0
        # cap well beyond the Poisson bulk: qt + 10 sqrt(qt) + 50
        cap = int(qt + 10.0 * np.sqrt(qt) + 50.0) + 1
        while accumulated < 1.0 - tolerance and k < cap:
            k += 1
            term_vector = term_vector @ p_hat
            weight = weight * qt / k
            accumulated += weight
            result += weight * term_vector
        # distribute any neglected tail proportionally (keeps a distribution)
        total = result.sum()
        if total > 0:
            result = result / total
        return {s: float(result[i]) for i, s in enumerate(self._states)}

    def absorption_probability_by(
        self,
        initial: Mapping[Hashable, float],
        target: Hashable,
        time: float,
    ) -> float:
        """Probability of being in absorbing ``target`` at ``time`` —
        for an absorbing target this is P(absorbed by ``time``)."""
        if not self.is_absorbing_state(target):
            raise MarkovError(
                f"{target!r} is not absorbing; absorption-by-time is "
                f"ill-defined"
            )
        return self.transient_distribution(initial, time)[target]

    # -- long-run analysis -----------------------------------------------------

    def steady_state(self) -> dict[Hashable, float]:
        """The stationary distribution ``pi Q = 0`` (requires an
        irreducible chain; raises :class:`MarkovError` otherwise)."""
        n = len(self._states)
        # irreducibility via the embedded adjacency
        adjacency = self._generator > 0.0
        for i in range(n):
            reach = {i}
            frontier = [i]
            while frontier:
                j = frontier.pop()
                for k in np.nonzero(adjacency[j])[0]:
                    if int(k) not in reach:
                        reach.add(int(k))
                        frontier.append(int(k))
            if len(reach) != n:
                raise MarkovError("steady state requires an irreducible CTMC")
        from repro.markov.stationary import _solve_normalized_nullspace

        solution = _solve_normalized_nullspace(self._generator.T.copy())
        solution = np.clip(solution, 0.0, None)
        solution = solution / solution.sum()
        return {s: float(solution[i]) for i, s in enumerate(self._states)}

    def mean_time_to_absorption(
        self, initial: Mapping[Hashable, float]
    ) -> float:
        """Expected time until *any* absorbing state is reached.

        Solves ``Q_TT tau = -1`` over the transient block; raises
        :class:`MarkovError` when no absorbing state exists or some
        transient state cannot reach one.
        """
        transient = [s for s in self._states if not self.is_absorbing_state(s)]
        absorbing = [s for s in self._states if self.is_absorbing_state(s)]
        if not absorbing:
            raise MarkovError("chain has no absorbing state")
        from repro.markov import solvers

        idx = [self.index(s) for s in transient]
        block = self._generator[np.ix_(idx, idx)]
        try:
            tau = np.asarray(
                solvers.factorize(block).solve(-np.ones(len(idx)))
            )
        except solvers.SingularSystemError as exc:
            raise MarkovError(
                "some transient state cannot reach an absorbing state"
            ) from exc
        by_state = {s: float(t) for s, t in zip(transient, tau)}
        total = 0.0
        for state, mass in initial.items():
            if mass == 0.0:
                continue
            if self.is_absorbing_state(state):
                continue  # already absorbed: contributes 0 time
            total += mass * by_state[state]
        return total
