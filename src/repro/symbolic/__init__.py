"""Symbolic expression engine.

This subpackage implements the parametric-dependency machinery of the paper
(section 2): actual parameters of cascading service requests, transition
probabilities, and simple-service failure probabilities are all expressions
over the formal parameters of the offered service.

Public surface:

- :class:`Expression` and node classes (:class:`Constant`,
  :class:`Parameter`, :class:`Binary`, :class:`Unary`, :class:`Call`);
- :func:`as_expression` coercion;
- :class:`Environment` for evaluation;
- :func:`parse_expression` for textual forms;
- :func:`simplify` and :func:`differentiate` passes;
- :func:`register_function` to extend the function library;
- :func:`compile_expression` / :class:`CompiledKernel` — the kernel
  compiler (CSE + constant folding + flat numpy tape) with its shared
  :func:`default_kernel_cache`.
"""

from repro.symbolic.compiler import (
    CompiledKernel,
    KernelCache,
    compile_expression,
    default_kernel_cache,
    gradient_kernels,
    kernel_cache_stats,
    reset_default_kernel_cache,
)
from repro.symbolic.derivative import differentiate
from repro.symbolic.environment import Environment
from repro.symbolic.expr import (
    Binary,
    Call,
    Constant,
    Expression,
    ExpressionLike,
    Parameter,
    Unary,
    Value,
    as_expression,
)
from repro.symbolic.functions import (
    FunctionSpec,
    function_names,
    get_function,
    register_function,
)
from repro.symbolic.parser import parse_expression
from repro.symbolic.simplify import simplify

__all__ = [
    "Binary",
    "Call",
    "CompiledKernel",
    "Constant",
    "Environment",
    "Expression",
    "ExpressionLike",
    "FunctionSpec",
    "KernelCache",
    "Parameter",
    "Unary",
    "Value",
    "as_expression",
    "compile_expression",
    "default_kernel_cache",
    "differentiate",
    "function_names",
    "get_function",
    "gradient_kernels",
    "kernel_cache_stats",
    "parse_expression",
    "register_function",
    "reset_default_kernel_cache",
    "simplify",
]
