"""Symbolic expression engine.

This subpackage implements the parametric-dependency machinery of the paper
(section 2): actual parameters of cascading service requests, transition
probabilities, and simple-service failure probabilities are all expressions
over the formal parameters of the offered service.

Public surface:

- :class:`Expression` and node classes (:class:`Constant`,
  :class:`Parameter`, :class:`Binary`, :class:`Unary`, :class:`Call`);
- :func:`as_expression` coercion;
- :class:`Environment` for evaluation;
- :func:`parse_expression` for textual forms;
- :func:`simplify` and :func:`differentiate` passes;
- :func:`register_function` to extend the function library.
"""

from repro.symbolic.derivative import differentiate
from repro.symbolic.environment import Environment
from repro.symbolic.expr import (
    Binary,
    Call,
    Constant,
    Expression,
    ExpressionLike,
    Parameter,
    Unary,
    Value,
    as_expression,
)
from repro.symbolic.functions import (
    FunctionSpec,
    function_names,
    get_function,
    register_function,
)
from repro.symbolic.parser import parse_expression
from repro.symbolic.simplify import simplify

__all__ = [
    "Binary",
    "Call",
    "Constant",
    "Environment",
    "Expression",
    "ExpressionLike",
    "FunctionSpec",
    "Parameter",
    "Unary",
    "Value",
    "as_expression",
    "differentiate",
    "function_names",
    "get_function",
    "parse_expression",
    "register_function",
    "simplify",
]
