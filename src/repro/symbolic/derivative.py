"""Symbolic differentiation of expressions.

Used by :mod:`repro.core.sensitivity` to rank which analytic-interface
attribute (a failure rate, a speed, a bandwidth) the predicted assembly
reliability is most sensitive to — the information a SOC broker needs when
negotiating which published service to swap for a more reliable one.

Only the standard rules are needed; functions with no registered derivative
rule (``ceil``, ``floor``, ...) raise :class:`SymbolicError`.
"""

from __future__ import annotations

from repro.errors import SymbolicError
from repro.symbolic.expr import (
    Binary,
    Call,
    Constant,
    Expression,
    Parameter,
    Unary,
)
from repro.symbolic.functions import get_function
from repro.symbolic.simplify import simplify

__all__ = ["differentiate"]


def differentiate(expr: Expression, name: str) -> Expression:
    """Partial derivative of ``expr`` with respect to parameter ``name``.

    The result is simplified before being returned.
    """
    return simplify(_diff(expr, name))


def _diff(expr: Expression, name: str) -> Expression:
    if isinstance(expr, Constant):
        return Constant(0.0)

    if isinstance(expr, Parameter):
        return Constant(1.0 if expr.name == name else 0.0)

    if isinstance(expr, Unary):
        return Unary(_diff(expr.operand, name))

    if isinstance(expr, Binary):
        u, v = expr.left, expr.right
        du, dv = _diff(u, name), _diff(v, name)
        if expr.op == "+":
            return Binary("+", du, dv)
        if expr.op == "-":
            return Binary("-", du, dv)
        if expr.op == "*":
            return Binary("+", Binary("*", du, v), Binary("*", u, dv))
        if expr.op == "/":
            numerator = Binary("-", Binary("*", du, v), Binary("*", u, dv))
            return Binary("/", numerator, Binary("**", v, Constant(2.0)))
        if expr.op == "**":
            if name not in v.free_parameters():
                # d/dx u^c = c * u^(c-1) * u'
                return Binary(
                    "*",
                    Binary("*", v, Binary("**", u, Binary("-", v, Constant(1.0)))),
                    du,
                )
            if name not in u.free_parameters():
                # d/dx c^v = c^v * ln(c) * v'
                return Binary(
                    "*",
                    Binary("*", expr, Call("log", (u,))),
                    dv,
                )
            # general u^v = exp(v*log u)
            inner = Binary(
                "+",
                Binary("*", dv, Call("log", (u,))),
                Binary("/", Binary("*", v, du), u),
            )
            return Binary("*", expr, inner)
        raise SymbolicError(f"cannot differentiate operator {expr.op!r}")

    if isinstance(expr, Call):
        spec = get_function(expr.name)
        if spec.derivative is None:
            raise SymbolicError(
                f"function {expr.name!r} has no registered derivative rule"
            )
        total: Expression = Constant(0.0)
        for k, arg in enumerate(expr.args):
            darg = _diff(arg, name)
            partial = spec.derivative(k, *expr.args)
            total = Binary("+", total, Binary("*", partial, darg))
        return total

    raise SymbolicError(f"cannot differentiate {expr!r}")
