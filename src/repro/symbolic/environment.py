"""Evaluation environments binding formal parameters to values.

An :class:`Environment` is an immutable mapping from parameter names to
scalar or numpy-array values, with helpers for the binding pattern the
evaluator uses constantly: evaluating the *actual-parameter* expressions of
a request under the caller's environment to produce the *callee's*
environment (the ``ap_j = ap_j(fp)`` composition of section 3).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

import numpy as np

from repro.errors import SymbolicError, UnboundParameterError
from repro.symbolic.expr import Expression, Value

__all__ = ["Environment"]


class Environment(Mapping[str, Value]):
    """An immutable mapping of parameter names to numeric values.

    Values may be Python numbers or numpy arrays; arrays let one environment
    stand for a whole parameter sweep (all bound arrays must broadcast
    together, which numpy enforces at evaluation time).
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Mapping[str, Value] | None = None, **kwargs: Value):
        merged: dict[str, Value] = {}
        for source in (bindings or {}), kwargs:
            for name, value in source.items():
                merged[name] = self._check_value(name, value)
        self._bindings = merged

    @staticmethod
    def _check_value(name: str, value: Value) -> Value:
        if isinstance(value, bool):
            raise SymbolicError(f"binding {name!r}: booleans are not numeric values")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, np.ndarray):
            return value.astype(float, copy=False)
        raise SymbolicError(
            f"binding {name!r}: expected a number or numpy array, got {value!r}"
        )

    # Mapping protocol ------------------------------------------------------

    def __getitem__(self, name: str) -> Value:
        try:
            return self._bindings[name]
        except KeyError:
            raise UnboundParameterError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __contains__(self, name: object) -> bool:
        return name in self._bindings

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._bindings.items()))
        return f"Environment({inner})"

    # helpers ----------------------------------------------------------------

    def extend(self, **kwargs: Value) -> "Environment":
        """A new environment with additional/overriding bindings."""
        merged = dict(self._bindings)
        merged.update({k: self._check_value(k, v) for k, v in kwargs.items()})
        return Environment(merged)

    def bind_actuals(
        self, formals: tuple[str, ...], actuals: Mapping[str, Expression]
    ) -> "Environment":
        """Build the callee's environment from actual-parameter expressions.

        Each expression in ``actuals`` is evaluated under *this* environment
        (the caller's formal parameters), producing the value bound to the
        callee's formal parameter of the same name.  ``formals`` lists the
        callee's declared formal parameters; every one of them must be
        supplied.
        """
        missing = [f for f in formals if f not in actuals]
        if missing:
            raise SymbolicError(
                f"actual parameters missing for formals {missing!r}"
            )
        return Environment(
            {name: actuals[name].evaluate(self) for name in formals}
        )
