"""Immutable symbolic-expression AST.

The paper's compositional reliability analysis hinges on one modeling
decision (section 2): *"both the transition probabilities and the actual
parameters of the service requests in a flow may be defined as functions of
the formal parameters of the offered service they are associated with."*
This module supplies those functions as first-class, serializable values.

An :class:`Expression` is an immutable tree of

- :class:`Constant` — a numeric literal;
- :class:`Parameter` — a named formal parameter (e.g. ``list``, ``N``);
- :class:`Binary` — one of ``+ - * / **`` applied to two sub-expressions;
- :class:`Unary` — negation;
- :class:`Call` — application of a registered named function
  (``log``, ``exp``, ...; see :mod:`repro.symbolic.functions`).

Expressions support:

- **evaluation** over an environment mapping parameter names to numbers *or
  numpy arrays* (broadcasting makes the Figure 6 parameter sweep a single
  vectorized evaluation);
- **substitution** of parameters by other expressions — this is exactly the
  composition step of the paper, where the formal parameter ``N`` of
  ``Pfail(cpu, N)`` is replaced by the actual parameter ``list*log(list)``
  of the sort service (see the derivation of eq. 18);
- **differentiation** for the sensitivity analysis in
  :mod:`repro.core.sensitivity`;
- **structural equality/hashing**, used by evaluator memoization;
- **serialization** to plain dicts for the :mod:`repro.dsl` layer.

Python operators are overloaded so models read naturally::

    list_ = Parameter("list")
    work = list_ * Call("log2", (list_,))
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.errors import SymbolicError, UnboundParameterError
from repro.symbolic.functions import get_function

__all__ = [
    "Expression",
    "Constant",
    "Parameter",
    "Binary",
    "Unary",
    "Call",
    "as_expression",
    "ExpressionLike",
    "Value",
]

#: Values an expression can evaluate to: scalars or numpy arrays.
Value = Union[float, np.ndarray]

#: Anything coercible into an Expression via :func:`as_expression`.
ExpressionLike = Union["Expression", int, float, str]

_BINARY_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "**": np.power,
}


def as_expression(value: ExpressionLike) -> "Expression":
    """Coerce a value to an :class:`Expression`.

    Numbers become :class:`Constant`, strings become :class:`Parameter`,
    expressions pass through unchanged.
    """
    if isinstance(value, Expression):
        return value
    if isinstance(value, bool):
        raise SymbolicError("booleans are not valid expression constants")
    if isinstance(value, (int, float)):
        return Constant(float(value))
    if isinstance(value, str):
        return Parameter(value)
    raise SymbolicError(f"cannot coerce {value!r} to an Expression")


class Expression:
    """Base class for all expression nodes.  Instances are immutable."""

    __slots__ = ()

    # -- structural hashing --------------------------------------------------
    #
    # Expressions are hashed constantly: evaluator memoization, kernel-cache
    # lookups, and the compiler's DAG builder all key dictionaries on nodes.
    # A naive dataclass hash re-walks the whole subtree on every call, which
    # is quadratic over the deep trees composition-by-substitution produces;
    # instead each node memoizes its hash in a ``_shash`` slot on first use
    # (immutability makes the memo safe forever).

    def _structural_key(self) -> tuple:
        """The (kind, payload, children...) tuple this node hashes as."""
        raise NotImplementedError

    def __hash__(self) -> int:
        cached = self._shash
        if cached is None:
            cached = hash(self._structural_key())
            object.__setattr__(self, "_shash", cached)
        return cached

    def structural_hash(self) -> int:
        """The memoized structural hash (same value as ``hash(self)``)."""
        return self.__hash__()

    def node_count(self) -> int:
        """Number of nodes in this expression *tree* (shared subtrees are
        counted once per occurrence — the raw size CSE is measured against)."""
        count = 0
        stack: list[Expression] = [self]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children())
        return count

    # -- core protocol ----------------------------------------------------

    def evaluate(self, env: Mapping[str, Value] | None = None) -> Value:
        """Evaluate the expression under ``env``.

        Raises :class:`UnboundParameterError` if a parameter is missing.
        Array-valued bindings broadcast through numpy arithmetic.
        """
        raise NotImplementedError

    def free_parameters(self) -> frozenset[str]:
        """The set of parameter names occurring in this expression."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "Expression"]) -> "Expression":
        """Replace each parameter named in ``mapping`` by its expression.

        Substitution is simultaneous (not sequential), matching the usual
        mathematical convention.
        """
        raise NotImplementedError

    def children(self) -> tuple["Expression", ...]:
        """Direct sub-expressions (empty for leaves)."""
        return ()

    # -- derived operations ------------------------------------------------

    def simplify(self) -> "Expression":
        """Return an algebraically simplified equivalent expression."""
        from repro.symbolic.simplify import simplify

        return simplify(self)

    def differentiate(self, name: str) -> "Expression":
        """Symbolic partial derivative with respect to parameter ``name``."""
        from repro.symbolic.derivative import differentiate

        return differentiate(self, name)

    def is_constant(self) -> bool:
        """True when the expression contains no parameters."""
        return not self.free_parameters()

    def constant_value(self) -> float:
        """Evaluate a parameter-free expression to a float."""
        if not self.is_constant():
            raise SymbolicError(
                f"expression {self} has free parameters "
                f"{sorted(self.free_parameters())} and is not constant"
            )
        return float(self.evaluate({}))

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize to a plain-dict tree (inverse of :meth:`from_dict`)."""
        raise NotImplementedError

    @staticmethod
    def from_dict(data: dict) -> "Expression":
        """Rebuild an expression from its :meth:`to_dict` form."""
        kind = data.get("kind")
        if kind == "const":
            return Constant(float(data["value"]))
        if kind == "param":
            return Parameter(str(data["name"]))
        if kind == "binary":
            return Binary(
                data["op"],
                Expression.from_dict(data["left"]),
                Expression.from_dict(data["right"]),
            )
        if kind == "unary":
            return Unary(Expression.from_dict(data["operand"]))
        if kind == "call":
            return Call(
                data["name"],
                tuple(Expression.from_dict(a) for a in data["args"]),
            )
        raise SymbolicError(f"unknown expression kind {kind!r}")

    # -- operator overloads --------------------------------------------------

    def __add__(self, other: ExpressionLike) -> "Expression":
        return Binary("+", self, as_expression(other))

    def __radd__(self, other: ExpressionLike) -> "Expression":
        return Binary("+", as_expression(other), self)

    def __sub__(self, other: ExpressionLike) -> "Expression":
        return Binary("-", self, as_expression(other))

    def __rsub__(self, other: ExpressionLike) -> "Expression":
        return Binary("-", as_expression(other), self)

    def __mul__(self, other: ExpressionLike) -> "Expression":
        return Binary("*", self, as_expression(other))

    def __rmul__(self, other: ExpressionLike) -> "Expression":
        return Binary("*", as_expression(other), self)

    def __truediv__(self, other: ExpressionLike) -> "Expression":
        return Binary("/", self, as_expression(other))

    def __rtruediv__(self, other: ExpressionLike) -> "Expression":
        return Binary("/", as_expression(other), self)

    def __pow__(self, other: ExpressionLike) -> "Expression":
        return Binary("**", self, as_expression(other))

    def __rpow__(self, other: ExpressionLike) -> "Expression":
        return Binary("**", as_expression(other), self)

    def __neg__(self) -> "Expression":
        return Unary(self)


@dataclass(frozen=True, slots=True)
class Constant(Expression):
    """A numeric literal."""

    value: float
    _shash: int | None = field(
        default=None, init=False, repr=False, compare=False
    )

    __hash__ = Expression.__hash__

    def _structural_key(self) -> tuple:
        return ("const", self.value)

    def __post_init__(self) -> None:
        if not isinstance(self.value, (int, float)) or isinstance(self.value, bool):
            raise SymbolicError(f"Constant requires a number, got {self.value!r}")
        object.__setattr__(self, "value", float(self.value))

    def evaluate(self, env: Mapping[str, Value] | None = None) -> Value:
        return self.value

    def free_parameters(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return self

    def to_dict(self) -> dict:
        return {"kind": "const", "value": self.value}

    def __str__(self) -> str:
        if self.value == int(self.value) and abs(self.value) < 1e15:
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class Parameter(Expression):
    """A named formal parameter of a service's analytic interface."""

    name: str
    _shash: int | None = field(
        default=None, init=False, repr=False, compare=False
    )

    __hash__ = Expression.__hash__

    def _structural_key(self) -> tuple:
        return ("param", self.name)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SymbolicError(f"Parameter requires a non-empty name, got {self.name!r}")

    def evaluate(self, env: Mapping[str, Value] | None = None) -> Value:
        if env is None or self.name not in env:
            raise UnboundParameterError(self.name)
        value = env[self.name]
        if isinstance(value, np.ndarray):
            return value.astype(float, copy=False)
        return float(value)

    def free_parameters(self) -> frozenset[str]:
        return frozenset({self.name})

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return mapping.get(self.name, self)

    def to_dict(self) -> dict:
        return {"kind": "param", "name": self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Binary(Expression):
    """A binary arithmetic operation ``left <op> right``."""

    op: str
    left: Expression
    right: Expression
    _shash: int | None = field(
        default=None, init=False, repr=False, compare=False
    )

    __hash__ = Expression.__hash__

    def _structural_key(self) -> tuple:
        return ("binary", self.op, self.left, self.right)

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPS:
            raise SymbolicError(f"unknown binary operator {self.op!r}")
        if not isinstance(self.left, Expression) or not isinstance(self.right, Expression):
            raise SymbolicError("Binary operands must be Expressions")

    def evaluate(self, env: Mapping[str, Value] | None = None) -> Value:
        result = _BINARY_OPS[self.op](self.left.evaluate(env), self.right.evaluate(env))
        if isinstance(result, np.ndarray) and result.shape == ():
            return float(result)
        return result

    def free_parameters(self) -> frozenset[str]:
        return self.left.free_parameters() | self.right.free_parameters()

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return Binary(self.op, self.left.substitute(mapping), self.right.substitute(mapping))

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def to_dict(self) -> dict:
        return {
            "kind": "binary",
            "op": self.op,
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
        }

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class Unary(Expression):
    """Arithmetic negation of a sub-expression."""

    operand: Expression
    _shash: int | None = field(
        default=None, init=False, repr=False, compare=False
    )

    __hash__ = Expression.__hash__

    def _structural_key(self) -> tuple:
        return ("unary", self.operand)

    def __post_init__(self) -> None:
        if not isinstance(self.operand, Expression):
            raise SymbolicError("Unary operand must be an Expression")

    def evaluate(self, env: Mapping[str, Value] | None = None) -> Value:
        result = np.negative(self.operand.evaluate(env))
        if isinstance(result, np.ndarray) and result.shape == ():
            return float(result)
        return result

    def free_parameters(self) -> frozenset[str]:
        return self.operand.free_parameters()

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return Unary(self.operand.substitute(mapping))

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def to_dict(self) -> dict:
        return {"kind": "unary", "operand": self.operand.to_dict()}

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True, slots=True)
class Call(Expression):
    """Application of a registered named function to argument expressions."""

    name: str
    args: tuple[Expression, ...]
    _shash: int | None = field(
        default=None, init=False, repr=False, compare=False
    )

    __hash__ = Expression.__hash__

    def _structural_key(self) -> tuple:
        return ("call", self.name, self.args)

    def __post_init__(self) -> None:
        spec = get_function(self.name)  # raises UnknownFunctionError early
        args = tuple(self.args)
        if len(args) != spec.arity:
            raise SymbolicError(
                f"function {self.name!r} expects {spec.arity} argument(s), "
                f"got {len(args)}"
            )
        if not all(isinstance(a, Expression) for a in args):
            raise SymbolicError("Call arguments must be Expressions")
        object.__setattr__(self, "args", args)

    def evaluate(self, env: Mapping[str, Value] | None = None) -> Value:
        spec = get_function(self.name)
        result = spec.impl(*(a.evaluate(env) for a in self.args))
        if isinstance(result, np.ndarray) and result.shape == ():
            return float(result)
        return result

    def free_parameters(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for arg in self.args:
            out |= arg.free_parameters()
        return out

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return Call(self.name, tuple(a.substitute(mapping) for a in self.args))

    def children(self) -> tuple[Expression, ...]:
        return self.args

    def to_dict(self) -> dict:
        return {
            "kind": "call",
            "name": self.name,
            "args": [a.to_dict() for a in self.args],
        }

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


def _finite_constant(value: float) -> Constant:
    """Constant constructor that rejects NaN (guards simplification)."""
    if math.isnan(value):
        raise SymbolicError("expression simplified to NaN")
    return Constant(value)
