"""Registry of named functions usable inside symbolic expressions.

The paper's analytic interfaces express actual parameters of cascading
requests as functions of the caller's formal parameters — e.g. the search
service of section 4 requests ``cpu(log(list))`` and its sort service
requests ``cpu(list * log(list))``.  The expression engine therefore needs a
small library of named scalar functions.  Keeping them in a registry (rather
than raw callables inside the AST) keeps expressions serializable, which the
:mod:`repro.dsl` layer relies on.

Every function is implemented with :mod:`numpy` so that evaluating an
expression over an array of parameter values (as the Figure 6 sweep does)
broadcasts for free.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import UnknownFunctionError

__all__ = ["FunctionSpec", "get_function", "register_function", "function_names"]


@dataclass(frozen=True, slots=True)
class FunctionSpec:
    """A named scalar function with optional symbolic derivative rule.

    Attributes:
        name: registry key used in expression text and serialized form.
        arity: number of arguments the function accepts.
        impl: numpy-compatible implementation.
        derivative: optional rule mapping the argument expressions to the
            derivative expression *of the function body with respect to its
            k-th argument* (chain rule is applied by the differentiator).
            ``None`` means the function is not differentiable symbolically.
    """

    name: str
    arity: int
    impl: Callable[..., object]
    derivative: Callable[..., object] | None = None


_REGISTRY: dict[str, FunctionSpec] = {}


def register_function(spec: FunctionSpec) -> None:
    """Add (or replace) a function in the global registry."""
    _REGISTRY[spec.name] = spec


def get_function(name: str) -> FunctionSpec:
    """Look up a function by name, raising :class:`UnknownFunctionError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownFunctionError(name) from None


def function_names() -> tuple[str, ...]:
    """Names of all registered functions, sorted."""
    return tuple(sorted(_REGISTRY))


def _safe_log(x):
    """Natural log guarded against the x == 0 boundary of abstract domains.

    Abstract parameters are sizes/counts; a log of a zero-size workload is
    conventionally 0 work, so we clamp to the limit instead of returning
    ``-inf`` (which would poison downstream probabilities).
    """
    x = np.asarray(x, dtype=float)
    out = np.where(x > 0.0, np.log(np.where(x > 0.0, x, 1.0)), 0.0)
    # np.float64 (not float) for scalars: downstream compiled kernels rely
    # on every operand staying numpy-typed for numpy arithmetic semantics
    return out if out.shape else out[()]


def _safe_log2(x):
    """Base-2 log with the same zero-guard as :func:`_safe_log`."""
    x = np.asarray(x, dtype=float)
    out = np.where(x > 0.0, np.log2(np.where(x > 0.0, x, 1.0)), 0.0)
    return out if out.shape else out[()]


def _install_defaults() -> None:
    """Register the built-in function library.

    Derivative rules return *expressions*; they import lazily from
    :mod:`repro.symbolic.expr` to avoid a circular import at module load.
    """
    from repro.symbolic import expr as E

    register_function(
        FunctionSpec(
            "log", 1, _safe_log,
            derivative=lambda k, a: E.Constant(1.0) / a,
        )
    )
    register_function(
        FunctionSpec(
            "log2", 1, _safe_log2,
            derivative=lambda k, a: E.Constant(1.0 / float(np.log(2.0))) / a,
        )
    )
    register_function(
        FunctionSpec(
            "exp", 1, np.exp,
            derivative=lambda k, a: E.Call("exp", (a,)),
        )
    )
    register_function(
        FunctionSpec(
            "sqrt", 1, np.sqrt,
            derivative=lambda k, a: E.Constant(0.5) / E.Call("sqrt", (a,)),
        )
    )
    register_function(FunctionSpec("ceil", 1, np.ceil))
    register_function(FunctionSpec("floor", 1, np.floor))
    register_function(FunctionSpec("abs", 1, np.abs))
    register_function(FunctionSpec("min", 2, np.minimum))
    register_function(FunctionSpec("max", 2, np.maximum))


_install_defaults()
