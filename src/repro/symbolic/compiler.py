"""Compile symbolic closed forms to flat, CSE-optimized numpy kernels.

The paper derives ``Pfail`` as closed forms (eqs. 15–22) precisely so that
evaluation avoids repeated matrix solves — but a closed form held as an
:class:`~repro.symbolic.expr.Expression` *tree* still pays one recursive
Python dispatch per node on every sweep point, Monte-Carlo sample batch,
and sensitivity probe.  Worse, composition by substitution (the
``N := list * log(list)`` splice below eq. 18) duplicates entire subtrees,
so the tree re-computes the same sub-values many times per evaluation.

This module lowers a tree into an array program once:

1. **DAG construction by hash-consing** — every subexpression is interned
   under a shallow structural key over already-interned children, so
   structurally equal subtrees (however they were produced) collapse into
   a single node.  This *is* common-subexpression elimination: a value is
   computed once per evaluation no matter how often the tree repeats it.
2. **Constant folding** — an operation whose inputs are all constants is
   evaluated at compile time with the *same* numpy implementation the tree
   walk would use, and kept only when the result is finite (non-finite
   folds stay in the tape so runtime warnings/NaN behavior is unchanged).
3. **Tape emission** — the remaining DAG becomes a flat SSA-style tape of
   numpy ufunc ops writing into numbered slots.
4. **Specialization** — the tape is rendered to straight-line Python
   source (one assignment per op, operands as locals) per *array
   signature* — which parameters are bound to arrays — so executing the
   tape costs one function call per op with zero interpreter bookkeeping.
   Array-valued ops write into preallocated ``out=`` buffers, held
   thread-locally so kernels are safe under the thread-pooled sweep paths.

The resulting :class:`CompiledKernel` evaluates identically to
``Expression.evaluate`` — same ufuncs applied in the same order, same
:class:`~repro.errors.UnboundParameterError` for missing parameters, same
guarded-function semantics (``log`` clamping etc.) — which the equivalence
property tests assert to 1e-12 over random trees, and bitwise on shared
subtrees.

Kernels are memoized in a :class:`KernelCache` (the shared
:class:`repro.caching.LRUCache` machinery, with hit/miss statistics) keyed
by the expression itself; the memoized structural hashes on expression
nodes make those lookups cheap.  A process-wide default cache backs the
engine plans, the analysis layer, and the CLI (which exposes a
``--no-compile`` escape hatch).
"""

from __future__ import annotations

import math
import threading
from collections.abc import Mapping

import numpy as np

from repro.caching import CacheStats, LRUCache
from repro.errors import UnboundParameterError
from repro.symbolic.expr import (
    _BINARY_OPS,
    Binary,
    Call,
    Constant,
    Expression,
    Parameter,
    Unary,
    Value,
)
from repro.symbolic.functions import get_function

__all__ = [
    "CompiledKernel",
    "KernelCache",
    "compile_expression",
    "default_kernel_cache",
    "gradient_kernels",
    "kernel_cache_stats",
    "reset_default_kernel_cache",
]


class _Op:
    """One tape instruction: ``slots[out] = func(*slots[ins])``.

    ``ufunc`` ops are true numpy ufuncs and may write into preallocated
    ``out=`` buffers; ``call`` ops are registered-function implementations
    (possibly plain Python, e.g. the guarded ``log``) and always allocate.
    """

    __slots__ = ("func", "out", "ins", "kind", "label")

    def __init__(self, func, out: int, ins: tuple[int, ...], kind: str, label: str):
        self.func = func
        self.out = out
        self.ins = ins
        self.kind = kind
        self.label = label


#: Source templates for ops the specialized variants can emit as Python
#: operators instead of ufunc calls (less dispatch overhead).  Only the
#: IEEE-exact operations qualify: their results are fully determined by
#: the standard, so scalar-operator and ufunc paths are bit-identical.
#: ``**`` is deliberately absent — ``pow`` is not correctly rounded and
#: ``np.float64.__pow__`` can differ from ``np.power`` in the last ulp.
_OPERATOR_FORM = {
    "+": "({0} + {1})",
    "-": "({0} - {1})",
    "*": "({0} * {1})",
    "/": "({0} / {1})",
    "neg": "(-{0})",
}


class CompiledKernel:
    """A flat numpy program equivalent to one :class:`Expression`.

    Attributes:
        parameters: free parameter names, in first-use order.
        tree_nodes: node count of the source expression *tree*.
        dag_nodes: unique nodes after CSE (including leaves and folded
            constants).
        op_count: executed operations per evaluation — the number CSE and
            constant folding are measured by (``tree_nodes`` minus leaves
            is the tree-walk op count).
        folded: operations eliminated by constant folding.
    """

    def __init__(
        self,
        ops: list[_Op],
        n_slots: int,
        consts: list[tuple[int, float]],
        params: list[tuple[str, int]],
        result_slot: int,
        tree_nodes: int,
        dag_nodes: int,
        folded: int,
    ):
        self._ops = ops
        self._consts = consts
        self._params = params
        self._result_slot = result_slot
        self._template: list = [None] * n_slots
        for slot, value in consts:
            self._template[slot] = value
        self._result_is_op = result_slot in {op.out for op in ops}
        self._variants: dict[tuple, tuple] = {}  # array signature -> (fn, n_buffers)
        self._variants_lock = threading.Lock()
        self._local = threading.local()  # per-thread out= buffers
        self.parameters = tuple(name for name, _ in params)
        self.tree_nodes = tree_nodes
        self.dag_nodes = dag_nodes
        self.op_count = len(ops)
        self.folded = folded

    # -- evaluation --------------------------------------------------------

    def evaluate(self, env: Mapping[str, Value] | None = None) -> Value:
        """Evaluate under ``env`` exactly as the source tree would.

        The tape runs through straight-line code specialized to the call's
        *array signature* (which parameters are arrays); array-valued ops
        write into preallocated per-thread buffers.  Arrays of differing
        but broadcast-compatible shapes (a ``(models, 1)`` column against a
        ``(1, points)`` row of a stacked grid) are broadcast up front —
        zero-copy views — and run through the same straight-line code;
        only non-broadcastable shapes fall back to the generic per-op
        pass.  Missing parameters raise
        :class:`~repro.errors.UnboundParameterError`, as the tree walk
        does.
        """
        values = []
        sig = []
        shape = None
        mixed = False
        for name, _slot in self._params:
            if env is None or name not in env:
                raise UnboundParameterError(name)
            value = env[name]
            if isinstance(value, np.ndarray):
                value = value.astype(float, copy=False)
                is_array = value.shape != ()
                if is_array:
                    if shape is None:
                        shape = value.shape
                    elif value.shape != shape:
                        mixed = True
            else:
                # np.float64 (not float) so the specialized variants can
                # use scalar operators under numpy arithmetic semantics
                # (division by zero -> inf, not ZeroDivisionError)
                value = np.float64(value)
                is_array = False
            values.append(value)
            sig.append(is_array)

        if mixed:
            try:
                shape = np.broadcast_shapes(
                    *[v.shape for v, a in zip(values, sig) if a]
                )
            except ValueError:
                shape = None
            if shape is None:
                # non-broadcastable shapes: let the per-op interpreter
                # raise exactly where the tree walk would
                result = self._run_mixed(values)
            else:
                # broadcast up front (views, no copies) so the stacked
                # call runs the same straight-line code as a uniform one
                values = [
                    np.broadcast_to(v, shape) if a else v
                    for v, a in zip(values, sig)
                ]
                result = self._run_uniform(tuple(sig), values, shape)
        else:
            result = self._run_uniform(tuple(sig), values, shape)

        if isinstance(result, np.ndarray) and result.shape == ():
            return float(result)
        return result

    def _run_uniform(self, key: tuple, values: list, shape: tuple | None):
        """One straight-line pass over values sharing a single grid shape."""
        variant = self._variants.get(key)
        if variant is None:
            variant = self._make_variant(key)
        fn, n_buffers = variant
        if n_buffers:
            return fn(*values, *self._buffers(key, shape, n_buffers))
        return fn(*values)

    def evaluate_stack(self, columns: Mapping[str, Value], n: int) -> np.ndarray:
        """Evaluate ``n`` independent points in one straight-line pass.

        ``columns`` binds each parameter to either a ``(n,)`` float column
        (one value per point) or a scalar shared by every point — the
        stacked form a batch engine builds from ``(models × points)``
        request groups.  Always returns a freshly allocated ``(n,)`` array
        (never a view of an input column or a reused internal buffer),
        elementwise bitwise-identical to ``n`` scalar :meth:`evaluate`
        calls.  Missing parameters raise
        :class:`~repro.errors.UnboundParameterError`.
        """
        values = []
        sig = []
        for name, _slot in self._params:
            if columns is None or name not in columns:
                raise UnboundParameterError(name)
            value = columns[name]
            if isinstance(value, np.ndarray) and value.shape != ():
                if value.shape != (n,):
                    raise ValueError(
                        f"stacked column {name!r} has shape {value.shape}, "
                        f"expected ({n},)"
                    )
                values.append(value.astype(float, copy=False))
                sig.append(True)
            else:
                values.append(np.float64(value))
                sig.append(False)
        result = self._run_uniform(tuple(sig), values, (n,))
        if not isinstance(result, np.ndarray) or result.shape == ():
            # the closed form folded to a constant (or every column was
            # scalar): materialize the stack
            return np.full(n, float(result))
        if self._result_is_op:
            # the final op never writes into a reused buffer, so the
            # result is already freshly allocated
            return result
        # degenerate tape (result is a bare parameter): do not alias the
        # caller's column
        return result.copy()

    __call__ = evaluate

    # -- specialized straight-line execution -------------------------------

    def _make_variant(self, sig: tuple) -> tuple:
        """Render the tape as straight-line Python for one array signature.

        Which slots hold arrays is fully determined by which *parameters*
        do, so array-ness propagates statically through the tape: every
        ufunc op with an array result (except the one producing the final
        result, which must not alias a reused buffer) gets an ``out=``
        buffer argument.  Funcs and folded constants bind as default
        arguments, so the generated body is pure ``LOAD_FAST`` + one call
        per op — no interpreter loop, no per-op shape resolution.
        """
        with self._variants_lock:
            variant = self._variants.get(sig)
            if variant is not None:
                return variant
            names: dict[int, str] = {}
            is_array: dict[int, bool] = {}
            const_slots: set[int] = set()
            ns: dict = {"__builtins__": {}}
            defaults: list[str] = []
            for j, (slot, value) in enumerate(self._consts):
                names[slot] = f"c{j}"
                is_array[slot] = False
                const_slots.add(slot)
                # np.float64 (not float) so a const operand mixed with a
                # scalar op output keeps numpy arithmetic semantics
                # (0.0 / 0.0 -> nan, not ZeroDivisionError)
                ns[f"c{j}"] = (
                    np.float64(value) if isinstance(value, float) else value
                )
                defaults.append(f"c{j}=c{j}")
            args: list[str] = []
            for i, ((_name, slot), arr) in enumerate(zip(self._params, sig)):
                names[slot] = f"v{i}"
                is_array[slot] = arr
                args.append(f"v{i}")
            buf_args: list[str] = []
            lines: list[str] = []
            for k, op in enumerate(self._ops):
                array_out = any(is_array[i] for i in op.ins)
                is_array[op.out] = array_out
                operands = [names[i] for i in op.ins]
                out_name = f"t{op.out}"
                names[op.out] = out_name
                template = _OPERATOR_FORM.get(op.label)
                if (
                    op.kind == "ufunc"
                    and array_out
                    and op.out != self._result_slot
                ):
                    # ufunc into a reused out= buffer, no allocation
                    buffer = f"b{len(buf_args)}"
                    buf_args.append(buffer)
                    ns[f"f{k}"] = op.func
                    defaults.append(f"f{k}=f{k}")
                    lines.append(
                        f"    {out_name} = f{k}({', '.join(operands)}, "
                        f"out={buffer})"
                    )
                elif template is not None and not all(
                    i in const_slots for i in op.ins
                ):
                    # operator form skips the full ufunc dispatch; with at
                    # least one numpy-typed operand (parameters bind as
                    # np.float64/ndarray, op outputs are numpy types) the
                    # arithmetic semantics are numpy's, bit-for-bit.  The
                    # all-consts case is exactly the non-finite folds kept
                    # in the tape — those stay ufunc calls so plain Python
                    # floats never meet a Python operator (1.0/0.0 must be
                    # inf, not ZeroDivisionError).
                    lines.append(
                        "    " + out_name + " = " + template.format(*operands)
                    )
                else:
                    ns[f"f{k}"] = op.func
                    defaults.append(f"f{k}=f{k}")
                    lines.append(
                        f"    {out_name} = f{k}({', '.join(operands)})"
                    )
            lines.append(f"    return {names[self._result_slot]}")
            source = (
                "def _run(" + ", ".join(args + buf_args + defaults) + "):\n"
                + "\n".join(lines) + "\n"
            )
            exec(source, ns)  # noqa: S102 - source built from the tape only
            variant = (ns["_run"], len(buf_args))
            self._variants[sig] = variant
            return variant

    def _buffers(self, sig: tuple, shape: tuple, n_buffers: int) -> list:
        """Per-thread, per-signature ``out=`` buffers.

        Backed by grow-only flat capacity arrays: a call hands out
        ``flat[:size].reshape(shape)`` views, so batch sizes that
        fluctuate (a 60-point sweep after a 240-point stack) reuse the
        same storage instead of reallocating per shape change.  The views
        themselves are memoized per stable shape — repeated same-shape
        calls (the hot sweep loop) pay zero per-call allocation."""
        store = getattr(self._local, "variant_buffers", None)
        if store is None:
            store = self._local.variant_buffers = {}
        entry = store.get(sig)
        if entry is not None and entry[1] == shape:
            return entry[2]
        size = 1
        for dim in shape:
            size *= dim
        flats = entry[0] if entry is not None else None
        if flats is None or flats[0].size < size:
            flats = [np.empty(size, dtype=float) for _ in range(n_buffers)]
        views = [flat[:size].reshape(shape) for flat in flats]
        store[sig] = (flats, shape, views)
        return views

    # -- generic fallback (arrays of differing shapes) ---------------------

    def _run_mixed(self, values: list) -> Value:
        """Per-op broadcasting interpreter for calls that mix array shapes
        (the specialized variants assume one common grid shape)."""
        slots = self._template.copy()
        for (_name, slot), value in zip(self._params, values):
            slots[slot] = value
        buffers = getattr(self._local, "mixed_buffers", None)
        if buffers is None:
            buffers = self._local.mixed_buffers = {}
        for op in self._ops:
            ins = [slots[i] for i in op.ins]
            if op.kind == "ufunc":
                shapes = [v.shape for v in ins if isinstance(v, np.ndarray)]
                if shapes:
                    shape = np.broadcast_shapes(*shapes)
                    if shape:
                        buffer = buffers.get(op.out)
                        if buffer is None or buffer.shape != shape:
                            buffer = np.empty(shape, dtype=float)
                            buffers[op.out] = buffer
                        op.func(*ins, out=buffer)
                        slots[op.out] = buffer
                        continue
            slots[op.out] = op.func(*ins)
        result = slots[self._result_slot]
        if (
            isinstance(result, np.ndarray)
            and result.shape != ()
            and self._result_is_op
        ):
            # the result lives in a reused buffer; hand out a copy so the
            # next evaluation cannot mutate the caller's array
            return result.copy()
        return result

    def describe(self) -> str:
        """A human-readable listing of the tape (debugging aid)."""
        lines = [
            f"kernel: {self.op_count} ops over {self.dag_nodes} DAG nodes "
            f"(tree: {self.tree_nodes} nodes, {self.folded} folded)",
        ]
        for name, slot in self._params:
            lines.append(f"  s{slot} <- param {name}")
        for slot, value in self._consts:
            lines.append(f"  s{slot} <- const {value!r}")
        for op in self._ops:
            ins = ", ".join(f"s{i}" for i in op.ins)
            lines.append(f"  s{op.out} <- {op.label}({ins})")
        lines.append(f"  return s{self._result_slot}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CompiledKernel(params={self.parameters!r}, "
            f"ops={self.op_count}, tree_nodes={self.tree_nodes})"
        )


def _compile(expr: Expression) -> CompiledKernel:
    """Lower one expression tree into a :class:`CompiledKernel`."""
    slot_of_key: dict[tuple, int] = {}   # hash-consing index (CSE)
    const_value: dict[int, float] = {}   # slots known constant at compile
    consts: list[tuple[int, float]] = []
    params: list[tuple[str, int]] = []
    ops: list[_Op] = []
    next_slot = 0
    folded = 0

    def intern(key: tuple, make) -> int:
        nonlocal next_slot
        slot = slot_of_key.get(key)
        if slot is None:
            slot = next_slot
            next_slot += 1
            slot_of_key[key] = slot
            make(slot)
        return slot

    def add_const(value: float) -> int:
        def make(slot: int) -> None:
            const_value[slot] = value
            consts.append((slot, value))
        # the sign term keeps -0.0 distinct from 0.0 (they compare equal
        # but 1/x diverges to opposite infinities)
        return intern(("const", value, math.copysign(1.0, value)), make)

    def try_fold(func, in_slots: tuple[int, ...]) -> int | None:
        """Fold an all-constant op at compile time, keeping it in the tape
        when the result is non-finite so runtime warning/NaN behavior is
        exactly the tree walk's."""
        nonlocal folded
        if not all(slot in const_value for slot in in_slots):
            return None
        with np.errstate(all="ignore"):
            try:
                value = float(func(*[const_value[s] for s in in_slots]))
            except Exception:
                return None
        if not math.isfinite(value):
            return None
        folded += 1
        return add_const(value)

    def add_op(label: str, kind: str, func, in_slots: tuple[int, ...]) -> int:
        foldable = try_fold(func, in_slots)
        if foldable is not None:
            return foldable

        def make(slot: int) -> None:
            ops.append(_Op(func, slot, in_slots, kind, label))
        return intern((label, *in_slots), make)

    # iterative post-order walk (closed forms can out-run Python's
    # recursion limit); each node is pushed unexpanded, then expanded
    # after its children have been interned
    slot_of_node: dict[int, int] = {}  # id(node) -> slot, per-tree memo
    stack: list[tuple[Expression, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in slot_of_node:
            continue
        if not expanded:
            stack.append((node, True))
            for child in node.children():
                if id(child) not in slot_of_node:
                    stack.append((child, False))
            continue
        if isinstance(node, Constant):
            slot = add_const(node.value)
        elif isinstance(node, Parameter):
            def make(slot: int, name=node.name) -> None:
                params.append((name, slot))
            slot = intern(("param", node.name), make)
        elif isinstance(node, Binary):
            ins = (slot_of_node[id(node.left)], slot_of_node[id(node.right)])
            slot = add_op(node.op, "ufunc", _BINARY_OPS[node.op], ins)
        elif isinstance(node, Unary):
            slot = add_op("neg", "ufunc", np.negative, (slot_of_node[id(node.operand)],))
        elif isinstance(node, Call):
            ins = tuple(slot_of_node[id(a)] for a in node.args)
            impl = get_function(node.name).impl
            # registered functions backed by true ufuncs (exp, sqrt, min, ...)
            # get out= buffers; guarded Python impls (log's zero clamp) do not
            kind = "ufunc" if isinstance(impl, np.ufunc) else "call"
            slot = add_op(f"call:{node.name}", kind, impl, ins)
        else:  # pragma: no cover - the AST has exactly five node kinds
            raise TypeError(f"cannot compile expression node {type(node)!r}")
        slot_of_node[id(node)] = slot

    return CompiledKernel(
        ops=ops,
        n_slots=next_slot,
        consts=consts,
        params=params,
        result_slot=slot_of_node[id(expr)],
        tree_nodes=expr.node_count(),
        dag_nodes=next_slot,
        folded=folded,
    )


class KernelCache:
    """A bounded LRU cache of compiled kernels, keyed by expression.

    Structural equality of expressions keys the cache, so the same closed
    form compiled through different plans (or re-derived for an identical
    model) shares one kernel.  ``stats`` exposes the shared
    :class:`~repro.caching.CacheStats` counters.
    """

    def __init__(self, max_size: int | None = 256):
        self._lru = LRUCache(max_size, name="kernel")

    @property
    def stats(self) -> CacheStats:
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    def get_or_compile(self, expr: Expression) -> CompiledKernel:
        """The kernel for ``expr``, compiling on first sight."""
        return self._lru.get_or_create(expr, lambda: _compile(expr))

    def clear(self) -> None:
        """Drop every cached kernel (statistics are kept)."""
        self._lru.clear()


_default_kernel_cache: KernelCache | None = None
_default_lock = threading.Lock()


def default_kernel_cache() -> KernelCache:
    """The process-wide shared :class:`KernelCache` (created on first use)."""
    global _default_kernel_cache
    with _default_lock:
        if _default_kernel_cache is None:
            _default_kernel_cache = KernelCache()
        return _default_kernel_cache


def reset_default_kernel_cache() -> None:
    """Replace the process-wide cache with a fresh one (test isolation)."""
    global _default_kernel_cache
    with _default_lock:
        _default_kernel_cache = None


def kernel_cache_stats() -> dict[str, float]:
    """Snapshot of the default kernel cache's counters (JSON-friendly)."""
    return default_kernel_cache().stats.snapshot()


def compile_expression(
    expr: Expression,
    cache: KernelCache | None | bool = None,
) -> CompiledKernel:
    """Compile ``expr`` into a :class:`CompiledKernel`.

    Args:
        expr: the expression to lower.
        cache: ``None`` (default) memoizes through the process-wide
            :func:`default_kernel_cache`; ``False`` compiles fresh and
            uncached; any :class:`KernelCache` memoizes through it.
    """
    if cache is False:
        return _compile(expr)
    if cache is None or cache is True:
        cache = default_kernel_cache()
    return cache.get_or_compile(expr)


_gradient_cache: LRUCache = LRUCache(max_size=512)


def gradient_kernels(
    expr: Expression,
    names: tuple[str, ...] | list[str],
    cache: KernelCache | None | bool = None,
) -> dict[str, CompiledKernel]:
    """Kernels for ``d expr / d name`` for each requested parameter.

    The derivative *expressions* are memoized under ``(expr, name)`` in a
    module-level LRU, so repeated sensitivity probes of the same closed
    form differentiate each parameter once, ever, instead of re-walking
    the derivative tree per call; the kernels themselves go through the
    usual kernel cache.
    """
    kernels: dict[str, CompiledKernel] = {}
    for name in names:
        derivative = _gradient_cache.get_or_create(
            (expr, name), lambda name=name: expr.differentiate(name)
        )
        kernels[name] = compile_expression(derivative, cache=cache)
    return kernels
