"""A small recursive-descent parser for expression text.

The :mod:`repro.dsl` layer lets analytic interfaces be written as plain data
files; actual-parameter dependencies appear there as strings such as
``"list * log2(list)"`` (the sort-service workload of section 4).  This
parser turns those strings into :class:`~repro.symbolic.expr.Expression`
trees.

Grammar (standard precedence, ``**`` right-associative, unary minus binds
tighter than ``*`` but looser than ``**``):

.. code-block:: text

    expr     := term (('+'|'-') term)*
    term     := factor (('*'|'/') factor)*
    factor   := '-' factor | power
    power    := atom ('**' factor)?
    atom     := NUMBER | NAME '(' expr (',' expr)* ')' | NAME | '(' expr ')'
"""

from __future__ import annotations

import re

from repro.errors import ExpressionParseError
from repro.symbolic.expr import Binary, Call, Constant, Expression, Parameter, Unary

__all__ = ["parse_expression"]

_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+(\.\d*)?([eE][+-]?\d+)?|\.\d+([eE][+-]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>\*\*|[+\-*/(),])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ExpressionParseError(
                f"unexpected character {text[pos]!r} at position {pos} in {text!r}"
            )
        if match.lastgroup != "ws":
            tokens.append(match.group())
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> str | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ExpressionParseError(f"unexpected end of input in {self.text!r}")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ExpressionParseError(
                f"expected {token!r} but found {got!r} in {self.text!r}"
            )

    # grammar rules ------------------------------------------------------

    def parse(self) -> Expression:
        expr = self.expr()
        if self.peek() is not None:
            raise ExpressionParseError(
                f"trailing input starting at {self.peek()!r} in {self.text!r}"
            )
        return expr

    def expr(self) -> Expression:
        node = self.term()
        while self.peek() in ("+", "-"):
            op = self.next()
            node = Binary(op, node, self.term())
        return node

    def term(self) -> Expression:
        node = self.factor()
        while self.peek() in ("*", "/"):
            op = self.next()
            node = Binary(op, node, self.factor())
        return node

    def factor(self) -> Expression:
        if self.peek() == "-":
            self.next()
            return Unary(self.factor())
        return self.power()

    def power(self) -> Expression:
        base = self.atom()
        if self.peek() == "**":
            self.next()
            return Binary("**", base, self.factor())
        return base

    def atom(self) -> Expression:
        token = self.next()
        if token == "(":
            node = self.expr()
            self.expect(")")
            return node
        if re.fullmatch(r"\d.*|\..*", token):
            try:
                return Constant(float(token))
            except ValueError:
                raise ExpressionParseError(f"bad number {token!r}") from None
        if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token):
            if self.peek() == "(":
                self.next()
                args = [self.expr()]
                while self.peek() == ",":
                    self.next()
                    args.append(self.expr())
                self.expect(")")
                return Call(token, tuple(args))
            return Parameter(token)
        raise ExpressionParseError(f"unexpected token {token!r} in {self.text!r}")


def parse_expression(text: str) -> Expression:
    """Parse ``text`` into an :class:`Expression`.

    >>> parse_expression("list * log2(list)")
    Binary(op='*', left=Parameter(name='list'), right=Call(name='log2', args=(Parameter(name='list'),)))
    """
    if not isinstance(text, str) or not text.strip():
        raise ExpressionParseError(f"cannot parse empty expression {text!r}")
    return _Parser(text).parse()
