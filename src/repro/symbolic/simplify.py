"""Algebraic simplification of symbolic expressions.

Simplification keeps the closed forms produced by the symbolic evaluator
(:mod:`repro.core.symbolic_evaluator`) readable — e.g. it collapses the many
``(1 - 0)`` reliability factors contributed by perfect connectors, matching
how the paper drops the ``loc*`` connectors from equations (18)–(22).

The pass is a bottom-up rewrite applying:

- constant folding (any operator/function over constants);
- additive identities: ``x + 0``, ``x - 0``, ``0 - x -> -x``, ``x - x -> 0``;
- multiplicative identities: ``x * 1``, ``x * 0``, ``x / 1``, ``0 / x``;
- power identities: ``x ** 1``, ``x ** 0``, ``1 ** x``;
- double negation; negation folding into constants;
- ``exp(log(x)) -> x`` and ``log(exp(x)) -> x`` (the domains used by the
  reliability models keep these safe: workloads are non-negative);
- ``exp(a) * exp(b) -> exp(a + b)``, which is what turns the product of
  exponential survival factors into the single-exponent closed forms of
  equations (20) and (22).

Simplification is *semantics-preserving on the evaluated domain*: a
simplified expression evaluates to the same value (up to floating-point
round-off) for every environment that binds its parameters to finite values
inside the model's abstract domains.
"""

from __future__ import annotations

from repro.symbolic.expr import (
    Binary,
    Call,
    Constant,
    Expression,
    Parameter,
    Unary,
)

__all__ = ["simplify"]


def simplify(expr: Expression) -> Expression:
    """Return an algebraically simplified expression equivalent to ``expr``."""
    if isinstance(expr, (Constant, Parameter)):
        return expr
    if isinstance(expr, Unary):
        return _simplify_unary(simplify(expr.operand))
    if isinstance(expr, Binary):
        return _simplify_binary(expr.op, simplify(expr.left), simplify(expr.right))
    if isinstance(expr, Call):
        return _simplify_call(expr.name, tuple(simplify(a) for a in expr.args))
    return expr


def _const(expr: Expression) -> float | None:
    """The value of a Constant node, else None."""
    if isinstance(expr, Constant):
        return expr.value
    return None


def _simplify_unary(operand: Expression) -> Expression:
    if isinstance(operand, Constant):
        return Constant(-operand.value)
    if isinstance(operand, Unary):
        return operand.operand
    return Unary(operand)


def _simplify_binary(op: str, left: Expression, right: Expression) -> Expression:
    lval, rval = _const(left), _const(right)

    # full constant folding
    if lval is not None and rval is not None:
        folded = Binary(op, left, right).evaluate({})
        return Constant(float(folded))

    if op == "+":
        if lval == 0.0:
            return right
        if rval == 0.0:
            return left
    elif op == "-":
        if rval == 0.0:
            return left
        if lval == 0.0:
            return _simplify_unary(right)
        if left == right:
            return Constant(0.0)
        # c1 - (c2 -/+ x): fold the constants so the ubiquitous
        # reliability pattern 1 - (1 - x) collapses to x.
        if lval is not None and isinstance(right, Binary):
            inner = _const(right.left)
            if inner is not None and right.op == "-":
                return _simplify_binary("+", Constant(lval - inner), right.right)
            if inner is not None and right.op == "+":
                return _simplify_binary("-", Constant(lval - inner), right.right)
    elif op == "*":
        if lval == 0.0 or rval == 0.0:
            return Constant(0.0)
        if lval == 1.0:
            return right
        if rval == 1.0:
            return left
        # c1 * (c2 * x): fold constant coefficients together.
        if lval is not None and isinstance(right, Binary) and right.op == "*":
            inner = _const(right.left)
            if inner is not None:
                return _simplify_binary("*", Constant(lval * inner), right.right)
        # exp(a) * exp(b) -> exp(a + b): merges survival factors into the
        # single-exponent closed forms of eqs. (20) and (22).
        if (
            isinstance(left, Call)
            and left.name == "exp"
            and isinstance(right, Call)
            and right.name == "exp"
        ):
            return Call("exp", (_simplify_binary("+", left.args[0], right.args[0]),))
    elif op == "/":
        if rval == 1.0:
            return left
        if lval == 0.0:
            return Constant(0.0)
        if left == right:
            return Constant(1.0)
    elif op == "**":
        if rval == 1.0:
            return left
        if rval == 0.0:
            return Constant(1.0)
        if lval == 1.0:
            return Constant(1.0)

    return Binary(op, left, right)


def _simplify_call(name: str, args: tuple[Expression, ...]) -> Expression:
    if all(isinstance(a, Constant) for a in args):
        return Constant(float(Call(name, args).evaluate({})))
    if name == "exp" and isinstance(args[0], Call) and args[0].name == "log":
        return args[0].args[0]
    if name == "log" and isinstance(args[0], Call) and args[0].name == "exp":
        return args[0].args[0]
    return Call(name, args)
