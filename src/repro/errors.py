"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch one base class at an API boundary.  The hierarchy mirrors the layers of
the library:

- :class:`SymbolicError` — expression construction/evaluation problems;
- :class:`MarkovError` — malformed or non-analyzable Markov chains;
- :class:`ModelError` — malformed architectural models (services, flows,
  assemblies);
- :class:`EvaluationError` — failures of the reliability evaluator itself,
  including :class:`CyclicAssemblyError`, raised where the paper's recursive
  procedure (section 3.3) would loop forever;
- :class:`BudgetExceededError` — an :class:`repro.runtime.EvaluationBudget`
  limit (deadline, state count, recursion depth, sweeps, trials) was hit;
- :class:`NumericalInstabilityError` — a linear solve or probability
  computation produced numbers that cannot be trusted (near-singular
  system, NaN/Inf contamination, out-of-range drift beyond tolerance).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


def error_chain(error: BaseException) -> tuple[str, ...]:
    """The ``"Type: message"`` rendering of an exception and its causes.

    Walks ``__cause__`` first (explicit ``raise ... from``), then implicit
    ``__context__``, skipping suppressed contexts — the same order a
    traceback would print.  Cycles are guarded, so a pathological
    self-referencing chain terminates.
    """
    chain: list[str] = []
    seen: set[int] = set()
    current: BaseException | None = error
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        chain.append(f"{type(current).__name__}: {current}")
        if current.__cause__ is not None:
            current = current.__cause__
        elif not current.__suppress_context__:
            current = current.__context__
        else:
            current = None
    return tuple(chain)


def format_error_chain(error: BaseException) -> str:
    """One line: ``"Type: msg (caused by Type2: msg2; caused by ...)"``.

    The full cause chain of a nested failure, flattened for transport
    through string-only channels (fuzz-case records, worker-failure
    messages) — so an isolation boundary never swallows the root cause.
    """
    chain = error_chain(error)
    if len(chain) <= 1:
        return chain[0] if chain else ""
    return chain[0] + " (caused by " + "; caused by ".join(chain[1:]) + ")"


# ---------------------------------------------------------------------------
# symbolic layer
# ---------------------------------------------------------------------------


class SymbolicError(ReproError):
    """Base class for expression-engine errors."""


class UnboundParameterError(SymbolicError):
    """An expression was evaluated without a binding for some parameter."""

    def __init__(self, name: str):
        super().__init__(f"parameter {name!r} is not bound in the environment")
        self.name = name


class UnknownFunctionError(SymbolicError):
    """An expression refers to a function not present in the registry."""

    def __init__(self, name: str):
        super().__init__(f"unknown function {name!r}")
        self.name = name


class ExpressionParseError(SymbolicError):
    """The textual form of an expression could not be parsed."""


# ---------------------------------------------------------------------------
# markov layer
# ---------------------------------------------------------------------------


class MarkovError(ReproError):
    """Base class for Markov-chain errors."""


class InvalidDistributionError(MarkovError):
    """Transition probabilities are negative or do not sum to one."""


class UnknownStateError(MarkovError):
    """A transition or query refers to a state not present in the chain."""

    def __init__(self, state: object):
        super().__init__(f"unknown state {state!r}")
        self.state = state


class NotAbsorbingError(MarkovError):
    """Absorbing-chain analysis was requested on a chain with no absorbing
    state reachable from the queried start state."""


# ---------------------------------------------------------------------------
# model layer
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """Base class for architectural-model errors."""


class DuplicateNameError(ModelError):
    """Two entities in one scope (registry, assembly, flow) share a name."""

    def __init__(self, kind: str, name: str):
        super().__init__(f"duplicate {kind} name {name!r}")
        self.kind = kind
        self.name = name


class UnknownServiceError(ModelError):
    """A binding or request refers to a service that is not defined."""

    def __init__(self, name: str):
        super().__init__(f"unknown service {name!r}")
        self.name = name


class UnboundRequirementError(ModelError):
    """A composite service requires a service that the assembly never binds."""

    def __init__(self, service: str, requirement: str):
        super().__init__(
            f"service {service!r} requires {requirement!r}, "
            f"but the assembly does not bind it"
        )
        self.service = service
        self.requirement = requirement


class InvalidFlowError(ModelError):
    """A service flow violates a structural rule (missing Start/End,
    bad probabilities, requests attached to Start/End, ...)."""


class InvalidSharingError(ModelError):
    """A state declares the sharing dependency model but its requests do not
    all target the same service through the same connector (the restriction
    stated in section 3.2 of the paper)."""


# ---------------------------------------------------------------------------
# evaluation layer
# ---------------------------------------------------------------------------


class EvaluationError(ReproError):
    """Base class for reliability-evaluation errors."""


class CyclicAssemblyError(EvaluationError):
    """The recursive evaluator hit a cycle of service requirements.

    Section 3.3 of the paper notes that the recursive procedure "does not
    work in the case of a service assembly where some services recursively
    call each other" — the reliability is then the solution of a fixed-point
    equation.  The default evaluator detects the cycle and raises this error;
    :class:`repro.core.fixed_point.FixedPointEvaluator` solves such
    assemblies instead.
    """

    def __init__(self, cycle: tuple[str, ...]):
        super().__init__(
            "cyclic service assembly: " + " -> ".join(cycle)
            + " (use FixedPointEvaluator for recursive assemblies)"
        )
        self.cycle = cycle


class FixedPointDivergenceError(EvaluationError):
    """Fixed-point iteration failed to converge within the iteration cap."""


class ProbabilityRangeError(EvaluationError):
    """A computed or supplied probability fell outside [0, 1]."""

    def __init__(self, what: str, value: float):
        super().__init__(f"{what} = {value!r} is outside [0, 1]")
        self.what = what
        self.value = value


class NumericalInstabilityError(EvaluationError):
    """A numeric result cannot be trusted.

    Raised instead of silently returning garbage when the absorbing-chain
    solve is ill-conditioned, a residual check fails, or NaN/Inf/negative
    values contaminate a probability computation.  The optional
    ``diagnostics`` mapping carries the offending quantities (condition
    estimate, residual norm, drift, ...) for logging and reports.
    """

    def __init__(self, message: str, **diagnostics: float):
        detail = ""
        if diagnostics:
            detail = " (" + ", ".join(
                f"{k}={v:.3e}" if isinstance(v, float) else f"{k}={v!r}"
                for k, v in sorted(diagnostics.items())
            ) + ")"
        super().__init__(message + detail)
        self.diagnostics = dict(diagnostics)


# ---------------------------------------------------------------------------
# runtime layer
# ---------------------------------------------------------------------------


class BudgetExceededError(ReproError):
    """An :class:`repro.runtime.EvaluationBudget` limit was exhausted.

    Attributes:
        resource: which limit tripped — one of ``"deadline"``,
            ``"states"``, ``"depth"``, ``"sweeps"``, ``"trials"``.
        limit: the configured cap.
        used: the amount consumed (or attempted) when the check fired.
    """

    def __init__(self, resource: str, limit: float, used: float, what: str = ""):
        where = f" during {what}" if what else ""
        super().__init__(
            f"evaluation budget exceeded{where}: "
            f"{resource} limit {limit:g} (used {used:g})"
        )
        self.resource = resource
        self.limit = limit
        self.used = used


class WorkerCrashedError(EvaluationError):
    """A pool worker process died without reporting back.

    Raised where a raw :class:`concurrent.futures.process.BrokenProcessPool`
    would otherwise escape the engine: a worker was killed hard (SIGKILL,
    the kernel OOM killer, a segfault in a native library) and its pending
    results are gone.  ``indices`` carries the positions of the affected
    work entries (batch entry indices, grid-point indices, fuzz case
    indices, trial-block indices), so callers know exactly which results
    are missing — the campaign layer (:mod:`repro.workunits`) uses the
    same signal to retry or quarantine individual units instead of failing
    the whole run.
    """

    def __init__(self, what: str = "", indices=()):
        indices = tuple(sorted(int(i) for i in indices))
        where = f" during {what}" if what else ""
        detail = ""
        if indices:
            shown = ", ".join(str(i) for i in indices[:10])
            if len(indices) > 10:
                shown += f", ... ({len(indices)} total)"
            detail = f"; affected entry indices: [{shown}]"
        super().__init__(
            f"worker process died unexpectedly{where} "
            f"(killed by SIGKILL/OOM or crashed in native code){detail}"
        )
        self.indices = indices


class CampaignStoreError(EvaluationError):
    """A work-unit results store cannot serve the requested campaign.

    Raised when ``--resume`` points at a journal written for a different
    campaign (mismatched campaign fingerprint) or at a file that is not a
    ``repro/workunits/1`` journal at all — resuming against the wrong
    store would silently mix results from different models/configs.
    """


# ---------------------------------------------------------------------------
# server layer
# ---------------------------------------------------------------------------


class ServerError(ReproError):
    """Base class for :mod:`repro.server` errors (configuration problems,
    request-shape violations, overload shedding)."""


class RequestValidationError(ServerError):
    """An HTTP request body does not match the endpoint's schema.

    The server maps this to ``400 Bad Request`` — the same class of
    failure the CLI reports as exit code 3 (malformed input document).
    ``problems`` lists every violation found, one human-readable line
    each, so clients can fix a whole payload in one round trip.
    """

    def __init__(self, endpoint: str, problems):
        problems = tuple(problems)
        shown = "; ".join(problems[:5])
        if len(problems) > 5:
            shown += f"; ... ({len(problems)} problems total)"
        super().__init__(f"invalid request for {endpoint}: {shown}")
        self.endpoint = endpoint
        self.problems = problems


class ServerOverloadedError(ServerError):
    """The daemon is at its concurrent-request capacity.

    Raised (and mapped to ``429 Too Many Requests``) when accepting one
    more evaluation would exceed the server's ``max_inflight`` bound —
    load shedding at admission, before any model parsing or compilation
    is paid for the doomed request.
    """

    def __init__(self, inflight: int, limit: int):
        super().__init__(
            f"server at capacity: {inflight} requests in flight "
            f"(limit {limit}); retry after the backlog drains"
        )
        self.inflight = inflight
        self.limit = limit


class AllTiersFailedError(EvaluationError):
    """Every tier of a :class:`repro.runtime.RobustEvaluator` degradation
    chain failed; ``diagnostics`` records each tier's typed error."""

    def __init__(self, service: str, diagnostics):
        lines = "; ".join(
            f"{d.tier}: {type(d.error).__name__}: {d.error}" for d in diagnostics
        )
        super().__init__(
            f"all evaluation tiers failed for service {service!r} ({lines})"
        )
        self.service = service
        self.diagnostics = tuple(diagnostics)
