"""Adapters mapping a repro assembly into the related-work baseline models.

The section 5 comparison is qualitative in the paper; these adapters make
it executable.  Each adapter flattens one composite service of an assembly
(with concrete actual parameters) into the restricted vocabulary of a
baseline model:

- the **Cheung** and **path-based** adapters collapse every flow state into
  one "component" whose reliability is the state's success probability
  *computed under the no-sharing assumption* — exactly the information
  loss those models impose.  For assemblies with no shared states, Cheung's
  answer coincides with the paper's (same Markov structure); for shared OR
  states it is optimistic (see the BASE benchmark);
- the **Wang** adapter keeps states multi-component with their AND/OR
  completion, and likewise hard-wires no-sharing (its built-in assumption).

Since the baselines take fixed numeric reliabilities, the adapters evaluate
all of the assembly's parametric structure at the supplied actuals first —
the baselines cannot express the parametric dependency, which is the other
half of the paper's section 5 argument.
"""

from __future__ import annotations

from repro.baselines.cheung import CheungModel
from repro.baselines.path_based import EXIT, PathBasedModel
from repro.baselines.wang import WangModel, WangState
from repro.core.evaluator import ReliabilityEvaluator
from repro.core.state_failure import state_failure_probability
from repro.errors import EvaluationError
from repro.model.assembly import Assembly
from repro.model.completion import OrCompletion
from repro.model.flow import END, START
from repro.model.service import CompositeService

__all__ = [
    "cheung_from_assembly",
    "path_based_from_assembly",
    "wang_from_assembly",
]

#: Name given to the synthetic entry component (Start carries no behavior,
#: reliability 1).
ENTRY = "__entry__"


def _flatten(assembly: Assembly, service: str, actuals: dict):
    """Common flattening: per-state success probability (no sharing) and the
    concrete transition structure."""
    svc = assembly.service(service)
    if not isinstance(svc, CompositeService):
        raise EvaluationError(f"{service!r} is not a composite service")
    evaluator = ReliabilityEvaluator(assembly)
    per_state = evaluator.state_probabilities(service, **actuals)
    env = svc.evaluation_environment(actuals, check=False)

    reliabilities: dict[str, float] = {}
    for state in svc.flow.states:
        internal, external = per_state[state.name]
        pfail = state_failure_probability(
            state.completion, False, list(internal), list(external)
        )
        reliabilities[state.name] = 1.0 - float(pfail)

    transitions: dict[tuple[str, str], float] = {}
    for source in [START, *(s.name for s in svc.flow.states)]:
        for t in svc.flow.outgoing(source):
            p = float(t.probability.evaluate(env))
            if p > 0.0:
                key = (ENTRY if source == START else source, t.target)
                transitions[key] = transitions.get(key, 0.0) + p
    return svc, reliabilities, transitions, per_state


def cheung_from_assembly(
    assembly: Assembly, service: str, **actuals: float
) -> CheungModel:
    """Flatten one composite service into a :class:`CheungModel`.

    ``End`` becomes the implicit final transfer: the adapter inserts a
    perfectly reliable terminal component standing for successful
    completion, since Cheung's final component transfers to ``C`` itself.
    """
    _, reliabilities, transitions, _ = _flatten(assembly, service, dict(actuals))
    reliabilities[ENTRY] = 1.0
    terminal = "__done__"
    reliabilities[terminal] = 1.0
    cheung_transitions: dict[tuple[str, str], float] = {}
    for (src, dst), p in transitions.items():
        cheung_transitions[(src, terminal if dst == END else dst)] = p
    return CheungModel(reliabilities, cheung_transitions, initial=ENTRY)


def path_based_from_assembly(
    assembly: Assembly,
    service: str,
    mass_threshold: float = 1e-12,
    **actuals: float,
) -> PathBasedModel:
    """Flatten one composite service into a :class:`PathBasedModel`."""
    _, reliabilities, transitions, _ = _flatten(assembly, service, dict(actuals))
    reliabilities[ENTRY] = 1.0
    path_transitions: dict[tuple[str, str], float] = {}
    for (src, dst), p in transitions.items():
        path_transitions[(src, EXIT if dst == END else dst)] = p
    return PathBasedModel(
        reliabilities, path_transitions, initial=ENTRY, mass_threshold=mass_threshold
    )


def wang_from_assembly(
    assembly: Assembly, service: str, **actuals: float
) -> WangModel:
    """Flatten one composite service into a :class:`WangModel`.

    Per-request reliabilities are ``(1 - Pfail_int) * (1 - Pfail_ext)``
    (connector folded into the external factor, since Wang's per-transition
    connector slot cannot express per-request connectors); state completion
    (AND/OR) is preserved; sharing is dropped — the model's assumption.
    """
    svc, _, transitions, per_state = _flatten(assembly, service, dict(actuals))
    states = [WangState(ENTRY, (1.0,), "and")]
    for state in svc.flow.states:
        internal, external = per_state[state.name]
        request_reliabilities = tuple(
            (1.0 - pi) * (1.0 - pe) for pi, pe in zip(internal, external)
        ) or (1.0,)
        completion = "or" if isinstance(state.completion, OrCompletion) else "and"
        states.append(WangState(state.name, request_reliabilities, completion))
    wang_transitions = [
        (src, "C" if dst == END else dst, p, 1.0)
        for (src, dst), p in transitions.items()
    ]
    return WangModel(states, wang_transitions, initial=ENTRY)
