"""Dolbec–Shepard path-based reliability model (the paper's reference [5]).

Path-based models ([8]'s other family) compute system reliability as the
expectation over *execution paths*: each path visits a sequence of
components, the path reliability is the product of the visited components'
reliabilities, and the system reliability is the path-probability-weighted
sum.  As the paper notes (section 5), the model "only considers sequential
executions of services (so excluding, for example, OR completion models),
and does not take into account the impact of the interconnection
architecture; it also does not consider possible dependencies among
services".

For graphs with loops the path set is infinite; following the usual
practice, enumeration truncates at a probability-mass threshold and reports
the truncated residual mass (treated optimistically as success, the
convention that makes the truncated value an upper bound on the exact
reliability contribution of the enumerated mass plus residual).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ModelError, UnknownStateError

__all__ = ["ExecutionPath", "PathBasedModel"]

#: Reserved terminal marker in the transition structure.
EXIT = "Exit"


@dataclass(frozen=True)
class ExecutionPath:
    """One enumerated execution path with its probability and reliability."""

    components: tuple[str, ...]
    probability: float
    reliability: float


class PathBasedModel:
    """A Dolbec–Shepard style path-based model.

    Args:
        reliabilities: component name -> reliability.
        transitions: ``(i, j)`` -> control-transfer probability, where ``j``
            may be :data:`EXIT` to terminate the path; rows must sum to 1.
        initial: entry component.
        mass_threshold: stop expanding a path once its probability falls
            below this bound (loop truncation).
        max_paths: hard cap on the number of enumerated paths.
    """

    def __init__(
        self,
        reliabilities: Mapping[str, float],
        transitions: Mapping[tuple[str, str], float],
        initial: str,
        mass_threshold: float = 1e-12,
        max_paths: int = 1_000_000,
    ):
        if initial not in reliabilities:
            raise UnknownStateError(initial)
        for name, value in reliabilities.items():
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"reliability of {name!r} is {value}, not in [0,1]")
        rows: dict[str, float] = {name: 0.0 for name in reliabilities}
        for (src, dst), p in transitions.items():
            if src not in reliabilities:
                raise UnknownStateError(src)
            if dst != EXIT and dst not in reliabilities:
                raise UnknownStateError(dst)
            if p < 0.0:
                raise ModelError(f"negative probability on {src!r}->{dst!r}")
            rows[src] += p
        for name, total in rows.items():
            if abs(total - 1.0) > 1e-9:
                raise ModelError(
                    f"outgoing probabilities of {name!r} sum to {total}; "
                    f"every component must transfer somewhere (use EXIT)"
                )
        self.reliabilities = dict(reliabilities)
        self.transitions = dict(transitions)
        self.initial = initial
        self.mass_threshold = float(mass_threshold)
        self.max_paths = int(max_paths)

    def _successors(self, name: str) -> Sequence[tuple[str, float]]:
        return [
            (dst, p) for (src, dst), p in self.transitions.items()
            if src == name and p > 0.0
        ]

    def enumerate_paths(self) -> tuple[list[ExecutionPath], float]:
        """All execution paths down to the truncation threshold.

        Returns ``(paths, truncated_mass)`` where ``truncated_mass`` is the
        total probability of abandoned prefixes.
        """
        paths: list[ExecutionPath] = []
        truncated = 0.0
        stack: list[tuple[str, tuple[str, ...], float, float]] = [
            (self.initial, (self.initial,), 1.0, self.reliabilities[self.initial])
        ]
        while stack:
            node, visited, probability, reliability = stack.pop()
            if len(paths) >= self.max_paths:
                truncated += probability
                continue
            if probability < self.mass_threshold:
                truncated += probability
                continue
            for target, p in self._successors(node):
                if target == EXIT:
                    paths.append(
                        ExecutionPath(visited, probability * p, reliability)
                    )
                else:
                    stack.append(
                        (
                            target,
                            visited + (target,),
                            probability * p,
                            reliability * self.reliabilities[target],
                        )
                    )
        return paths, truncated

    def system_reliability(self) -> float:
        """Path-probability-weighted mean path reliability.

        Truncated mass is counted as fully reliable, so for loopy graphs the
        value is an upper bound that tightens as ``mass_threshold``
        decreases; for acyclic graphs it is exact.
        """
        paths, truncated = self.enumerate_paths()
        return sum(p.probability * p.reliability for p in paths) + truncated

    def system_unreliability(self) -> float:
        """``1 - system_reliability()``."""
        return 1.0 - self.system_reliability()
