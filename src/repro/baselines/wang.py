"""Wang–Wu–Chen architecture-based model (the paper's reference [19]).

A state-based model one step closer to the paper's: states of a
probabilistic control-flow graph may hold *several* components completed
under AND or OR, and transitions carry *connector reliabilities*.  What it
still lacks — the paper's section 5 point — is (a) service sharing (all
requests are assumed independent, i.e. the no-sharing dependency model is
hard-wired) and (b) parametric dependency between a service's inputs and
its cascading requests (all reliabilities are fixed numbers).

State semantics: a state with component reliabilities ``R_1..R_n`` succeeds
with probability ``prod R_j`` under AND and ``1 - prod (1 - R_j)`` under
OR; on success, control moves along a transition chosen with probability
``p_ij``, surviving its connector with reliability ``Rc_ij``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import InvalidDistributionError, ModelError, UnknownStateError
from repro.markov import AbsorbingChainAnalysis, ChainBuilder

__all__ = ["WangState", "WangModel"]

#: Reserved labels.
CORRECT = "C"
FAILED = "F"


@dataclass(frozen=True)
class WangState:
    """A control-flow state holding one or more components.

    Attributes:
        name: state label.
        reliabilities: the components' reliabilities.
        completion: ``"and"`` (all must succeed) or ``"or"`` (any suffices).
    """

    name: str
    reliabilities: tuple[float, ...]
    completion: str = "and"

    def __post_init__(self) -> None:
        if not self.reliabilities:
            raise ModelError(f"state {self.name!r} needs at least one component")
        if any(not 0.0 <= r <= 1.0 for r in self.reliabilities):
            raise ModelError(f"state {self.name!r} has reliability outside [0,1]")
        if self.completion not in ("and", "or"):
            raise ModelError(f"unknown completion {self.completion!r}")

    def success_probability(self) -> float:
        """State success probability under its completion model (requests
        independent — the model's built-in no-sharing assumption)."""
        if self.completion == "and":
            out = 1.0
            for r in self.reliabilities:
                out *= r
            return out
        fail = 1.0
        for r in self.reliabilities:
            fail *= 1.0 - r
        return 1.0 - fail


@dataclass(frozen=True)
class _Transition:
    source: str
    target: str
    probability: float
    connector_reliability: float = 1.0


class WangModel:
    """A Wang–Wu–Chen style model with connector reliabilities.

    Args:
        states: the control-flow states.
        transitions: ``(source, target, probability, connector_reliability)``
            tuples; targets may be the reserved ``"C"`` (correct output).
            Each source's probabilities must sum to 1.
        initial: entry state name.
    """

    def __init__(
        self,
        states: Sequence[WangState],
        transitions: Sequence[tuple],
        initial: str,
    ):
        self.states = {s.name: s for s in states}
        if len(self.states) != len(states):
            raise ModelError("duplicate state names")
        if initial not in self.states:
            raise UnknownStateError(initial)
        self.initial = initial
        self.transitions: list[_Transition] = []
        totals: dict[str, float] = {name: 0.0 for name in self.states}
        for entry in transitions:
            t = _Transition(*entry)
            if t.source not in self.states:
                raise UnknownStateError(t.source)
            if t.target != CORRECT and t.target not in self.states:
                raise UnknownStateError(t.target)
            if t.probability < 0.0 or not 0.0 <= t.connector_reliability <= 1.0:
                raise ModelError(f"bad transition {entry!r}")
            totals[t.source] += t.probability
            self.transitions.append(t)
        for name, total in totals.items():
            if abs(total - 1.0) > 1e-9:
                raise InvalidDistributionError(
                    f"outgoing probabilities of state {name!r} sum to {total}"
                )

    def system_reliability(self) -> float:
        """Probability of reaching the correct-output state ``C``."""
        builder = ChainBuilder()
        builder.add_state(self.initial)
        for name in self.states:
            builder.add_state(name)
        builder.add_state(CORRECT)
        builder.add_state(FAILED)
        for name, state in self.states.items():
            success = state.success_probability()
            fail_mass = 1.0 - success
            for t in self.transitions:
                if t.source != name:
                    continue
                through = success * t.probability * t.connector_reliability
                lost = success * t.probability * (1.0 - t.connector_reliability)
                if through > 0.0:
                    builder.add_edge(name, t.target, through)
                fail_mass += lost
            if fail_mass > 0.0:
                builder.add_edge(name, FAILED, fail_mass)
        analysis = AbsorbingChainAnalysis(builder.build())
        return analysis.absorption_probability(self.initial, CORRECT)

    def system_unreliability(self) -> float:
        """``1 - system_reliability()``."""
        return 1.0 - self.system_reliability()
