"""Related-work baseline models (the paper's section 5 comparison).

- :mod:`repro.baselines.cheung` — Cheung's classical state-based model;
- :mod:`repro.baselines.path_based` — Dolbec–Shepard path-based model [5];
- :mod:`repro.baselines.wang` — Wang–Wu–Chen state-based model with AND/OR
  states and connector reliabilities [19];
- :mod:`repro.baselines.adapters` — executable mappings from a repro
  assembly into each baseline's restricted vocabulary.
"""

from repro.baselines.adapters import (
    cheung_from_assembly,
    path_based_from_assembly,
    wang_from_assembly,
)
from repro.baselines.cheung import CheungModel
from repro.baselines.path_based import ExecutionPath, PathBasedModel
from repro.baselines.wang import WangModel, WangState

__all__ = [
    "CheungModel",
    "ExecutionPath",
    "PathBasedModel",
    "WangModel",
    "WangState",
    "cheung_from_assembly",
    "path_based_from_assembly",
    "wang_from_assembly",
]
