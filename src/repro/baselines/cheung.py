"""Cheung's classical state-based reliability model.

The reference point of the architecture-based reliability literature (and of
the paper's section 5 taxonomy via Goseva-Popstojanova/Mathur/Trivedi [8]):
an application is a discrete-time Markov chain over *components*; component
``i`` has reliability ``R_i``; control transfers from ``i`` to ``j`` with
probability ``p_ij``.  Adding an absorbing failure state ``F`` (entered from
``i`` with probability ``1 - R_i``) and an absorbing correct-output state
``C`` (entered from the final component with probability ``R_final``), the
system reliability is the probability of absorption in ``C``.

This is exactly the structure the paper *generalizes*: no connectors, one
activity per state, no parameters, no sharing.  It is implemented here on
top of :mod:`repro.markov` so the section 5 comparison benchmarks can run
all models on identical inputs.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import InvalidDistributionError, ModelError, UnknownStateError
from repro.markov import AbsorbingChainAnalysis, ChainBuilder

__all__ = ["CheungModel"]

#: Reserved labels for the two absorbing states.
CORRECT = "C"
FAILED = "F"


class CheungModel:
    """A Cheung-style component reliability model.

    Args:
        reliabilities: component name -> reliability ``R_i`` in [0, 1].
        transitions: ``(i, j)`` -> control-transfer probability ``p_ij``;
            rows must sum to 1 over each component's outgoing transitions,
            except for *final* components (no outgoing transitions), which
            transfer to the correct-output state on success.
        initial: name of the entry component.
    """

    def __init__(
        self,
        reliabilities: Mapping[str, float],
        transitions: Mapping[tuple[str, str], float],
        initial: str,
    ):
        if initial not in reliabilities:
            raise UnknownStateError(initial)
        for name, value in reliabilities.items():
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"reliability of {name!r} is {value}, not in [0,1]")
        for (src, dst), p in transitions.items():
            if src not in reliabilities or dst not in reliabilities:
                raise UnknownStateError(src if src not in reliabilities else dst)
            if p < 0.0:
                raise InvalidDistributionError(
                    f"negative transition probability {p} on {src!r}->{dst!r}"
                )
        self.reliabilities = dict(reliabilities)
        self.transitions = dict(transitions)
        self.initial = initial

        rows: dict[str, float] = {name: 0.0 for name in reliabilities}
        for (src, _), p in transitions.items():
            rows[src] += p
        for name, total in rows.items():
            if total > 0.0 and abs(total - 1.0) > 1e-9:
                raise InvalidDistributionError(
                    f"outgoing transfer probabilities of {name!r} sum to {total}"
                )
        self._final = {name for name, total in rows.items() if total == 0.0}
        if not self._final:
            raise ModelError(
                "Cheung model needs at least one final component "
                "(no outgoing transitions)"
            )

    def system_reliability(self) -> float:
        """Probability of absorption in the correct-output state ``C``."""
        builder = ChainBuilder()
        builder.add_state(self.initial)
        for name in self.reliabilities:
            builder.add_state(name)
        builder.add_state(CORRECT)
        builder.add_state(FAILED)
        for name, r in self.reliabilities.items():
            if 1.0 - r > 0.0:
                builder.add_edge(name, FAILED, 1.0 - r)
            if name in self._final:
                if r > 0.0:
                    builder.add_edge(name, CORRECT, r)
                continue
            for (src, dst), p in self.transitions.items():
                if src == name and r * p > 0.0:
                    builder.add_edge(name, dst, r * p)
        analysis = AbsorbingChainAnalysis(builder.build())
        return analysis.absorption_probability(self.initial, CORRECT)

    def system_unreliability(self) -> float:
        """``1 - system_reliability()``."""
        return 1.0 - self.system_reliability()
