"""Structural validation of assemblies.

The paper's recursive evaluation procedure assumes a well-formed assembly;
the SOC setting ("automated selection and composition") makes eager,
machine-checkable validation essential.  :func:`validate_assembly` checks an
:class:`~repro.model.assembly.Assembly` and returns a
:class:`ValidationReport` with every problem found (it does not stop at the
first), covering:

- every required slot of every composite service (including composite
  connectors) is bound;
- bindings reference known consumer/provider/connector services, and the
  consumer is composite (simple services issue no requests);
- every formal parameter of a bound provider is supplied by each request's
  actuals;
- connector formal parameters are covered by the effective connector
  actuals (request override or binding default);
- shared states respect the paper's single-service restriction (also
  enforced at flow construction; re-checked here against *resolved*
  bindings so the "same connector" half of the restriction is validated
  too);
- cyclic dependency chains are reported (as a warning: they are evaluable
  by the fixed-point engine, but not by the default recursive evaluator).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError, UnknownServiceError
from repro.model.assembly import Assembly
from repro.model.service import CompositeService

__all__ = ["ValidationIssue", "ValidationReport", "validate_assembly"]

#: Issue severities.
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found by validation."""

    severity: str
    location: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.location}: {self.message}"


@dataclass
class ValidationReport:
    """The outcome of validating an assembly."""

    assembly: str
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def errors(self) -> list[ValidationIssue]:
        """Issues with error severity."""
        return [i for i in self.issues if i.severity == ERROR]

    @property
    def warnings(self) -> list[ValidationIssue]:
        """Issues with warning severity."""
        return [i for i in self.issues if i.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings allowed)."""
        return not self.errors

    def raise_if_invalid(self) -> None:
        """Raise :class:`ModelError` summarizing all errors, if any."""
        if self.errors:
            summary = "; ".join(str(i) for i in self.errors)
            raise ModelError(
                f"assembly {self.assembly!r} failed validation: {summary}"
            )

    def __str__(self) -> str:
        if not self.issues:
            return f"assembly {self.assembly!r}: valid"
        lines = [f"assembly {self.assembly!r}: {len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        lines += [f"  {issue}" for issue in self.issues]
        return "\n".join(lines)


def validate_assembly(assembly: Assembly) -> ValidationReport:
    """Run all structural checks on ``assembly``."""
    report = ValidationReport(assembly.name)

    def error(location: str, message: str) -> None:
        report.issues.append(ValidationIssue(ERROR, location, message))

    def warning(location: str, message: str) -> None:
        report.issues.append(ValidationIssue(WARNING, location, message))

    known = {s.name for s in assembly.services}

    # bindings reference known services and composite consumers
    for binding in assembly.bindings:
        where = f"binding {binding.consumer}.{binding.slot}"
        consumer = None
        if binding.consumer not in known:
            error(where, f"unknown consumer service {binding.consumer!r}")
        else:
            consumer = assembly.service(binding.consumer)
            if not isinstance(consumer, CompositeService):
                error(where, "consumer is a simple service and issues no requests")
            elif binding.slot not in consumer.requirements():
                warning(
                    where,
                    f"slot {binding.slot!r} is never requested by "
                    f"{binding.consumer!r}'s flow",
                )
        if binding.provider not in known:
            error(where, f"unknown provider service {binding.provider!r}")
        if binding.connector is not None and binding.connector not in known:
            error(where, f"unknown connector service {binding.connector!r}")

    # every requirement bound; request/connector actuals complete
    for service in assembly.services:
        if not isinstance(service, CompositeService):
            continue
        for state in service.flow.states:
            resolved = []
            for request in state.requests:
                where = (
                    f"service {service.name!r}, state {state.name!r}, "
                    f"request -> {request.target!r}"
                )
                try:
                    res = assembly.resolve_request(service.name, request)
                except (UnknownServiceError, ModelError) as exc:
                    error(where, str(exc))
                    continue
                resolved.append(res)
                missing = [
                    p for p in res.provider.formal_parameters
                    if p not in request.actuals
                ]
                if missing:
                    error(
                        where,
                        f"actuals missing for provider formals {missing}",
                    )
                extra = [
                    p for p in request.actuals
                    if p not in res.provider.formal_parameters
                ]
                if extra:
                    warning(
                        where,
                        f"actuals {extra} do not match any provider formal",
                    )
                if res.connector is not None:
                    unbound = [
                        p for p in res.connector.formal_parameters
                        if p not in res.connector_actuals
                    ]
                    if unbound:
                        error(
                            where,
                            f"connector {res.connector.name!r} formals "
                            f"{unbound} have no actuals (request override or "
                            f"binding default)",
                        )
            # sharing restriction against *resolved* providers/connectors,
            # per dependency group (handles both the classic shared flag
            # and the grouped-sharing extension)
            if resolved and len(resolved) == len(state.requests):
                for group in state.effective_groups():
                    if len(group) < 2:
                        continue
                    providers = {resolved[j].provider.name for j in group}
                    connectors = {
                        resolved[j].connector.name if resolved[j].connector
                        else None
                        for j in group
                    }
                    if len(providers) > 1 or len(connectors) > 1:
                        error(
                            f"service {service.name!r}, state {state.name!r}",
                            f"shared group resolves to providers "
                            f"{sorted(providers)} via connectors "
                            f"{sorted(map(str, connectors))}; the sharing "
                            f"model requires one service through one "
                            f"connector per group (section 3.2)",
                        )

    cycle = assembly.find_cycle()
    if cycle is not None:
        warning(
            "assembly",
            f"dependency cycle {' -> '.join(cycle)}; the recursive evaluator "
            f"will refuse it (use FixedPointEvaluator)",
        )

    return report
