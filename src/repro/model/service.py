"""Services and their analytic interfaces.

The unified service model of section 2: every architectural entity —
software component, CPU, network, device, or connector — is a *resource
offering services*.  Each offered service publishes an **analytic
interface** comprising

(a) an abstract description of the service: formal parameters over abstract
    domains plus numeric attributes (speed, bandwidth, failure rates);
(b) for composite services, the abstract usage profile: a
    :class:`~repro.model.flow.ServiceFlow`.

The library distinguishes the paper's two service types (section 3):

- :class:`SimpleService` — no cascading requests; reliability is a known
  function of the formal parameters, carried here as a symbolic expression
  over formal-parameter *and attribute* names (eqs. 1 and 2 are built this
  way by :mod:`repro.model.resource`);
- :class:`CompositeService` — reliability derives from a flow of requests to
  other services, evaluated by :mod:`repro.core`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from types import MappingProxyType

from repro.errors import ModelError
from repro.model.flow import ServiceFlow
from repro.model.parameters import FormalParameter
from repro.symbolic import Environment, Expression, Value, as_expression

__all__ = ["AnalyticInterface", "Service", "SimpleService", "CompositeService"]


@dataclass(frozen=True)
class AnalyticInterface:
    """The published abstract description of a service.

    Attributes:
        formal_parameters: abstract formal parameters (name + domain).
        attributes: named numeric attributes (e.g. ``speed``,
            ``failure_rate``, ``bandwidth``, ``software_failure_rate``).
            Reliability expressions may reference attribute names; the
            evaluator binds them automatically.
        description: free-text documentation of the offered service.
    """

    formal_parameters: tuple[FormalParameter, ...] = ()
    attributes: Mapping[str, float] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        params = tuple(self.formal_parameters)
        if not all(isinstance(p, FormalParameter) for p in params):
            raise ModelError("formal_parameters must be FormalParameter instances")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate formal parameter names in {names}")
        attrs = {}
        for key, value in dict(self.attributes).items():
            if not isinstance(key, str) or not key.isidentifier():
                raise ModelError(f"invalid attribute name {key!r}")
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ModelError(f"attribute {key!r} must be numeric, got {value!r}")
            if key in set(names):
                raise ModelError(
                    f"attribute {key!r} collides with a formal parameter name"
                )
            attrs[key] = float(value)
        object.__setattr__(self, "formal_parameters", params)
        object.__setattr__(self, "attributes", MappingProxyType(attrs))

    @property
    def parameter_names(self) -> tuple[str, ...]:
        """Formal-parameter names, in declaration order."""
        return tuple(p.name for p in self.formal_parameters)

    def check_actuals(self, env: Mapping[str, Value]) -> None:
        """Check that ``env`` binds every formal parameter within its
        abstract domain."""
        for param in self.formal_parameters:
            if param.name not in env:
                raise ModelError(
                    f"missing actual value for formal parameter {param.name!r}"
                )
            if not param.domain.contains_all(env[param.name]):
                raise ModelError(
                    f"value {env[param.name]!r} outside domain "
                    f"({param.domain.describe()}) of parameter {param.name!r}"
                )


class Service:
    """Base class for offered services.

    Args:
        name: globally unique service name within an assembly/registry.
        interface: the published analytic interface.
    """

    #: True for services offered by connectors (the unified model of §2
    #: treats connectors as services too; the flag only aids validation and
    #: reporting, never the reliability math).
    is_connector: bool = False

    def __init__(self, name: str, interface: AnalyticInterface | None = None):
        if not isinstance(name, str) or not name:
            raise ModelError(f"invalid service name {name!r}")
        self.name = name
        self.interface = interface if interface is not None else AnalyticInterface()

    @property
    def formal_parameters(self) -> tuple[str, ...]:
        """Formal-parameter names of the service."""
        return self.interface.parameter_names

    @property
    def is_simple(self) -> bool:
        """True for services with no cascading requests (recursion base)."""
        raise NotImplementedError

    def evaluation_environment(
        self, actuals: Mapping[str, Value], check: bool = True
    ) -> Environment:
        """Environment binding formal parameters (from ``actuals``) plus the
        interface attributes, for evaluating this service's expressions.

        ``check=False`` skips the abstract-domain validation: actual
        parameters *derived* by a caller's expressions (e.g. the workload
        ``list * log2(list)``) legitimately land between the representative
        elements of an integer abstract domain, so the evaluator only
        enforces domains on the externally supplied top-level actuals.
        """
        if check:
            self.interface.check_actuals(actuals)
        env = dict(self.interface.attributes)
        for name in self.interface.parameter_names:
            env[name] = actuals[name]
        return Environment(env)

    def __repr__(self) -> str:
        kind = type(self).__name__
        params = ", ".join(self.interface.parameter_names)
        return f"{kind}({self.name!r}, params=({params}))"


class SimpleService(Service):
    """A service whose unreliability is a published closed-form function.

    Args:
        name: service name.
        interface: analytic interface (formals + attributes).
        failure_probability: expression for ``Pfail(S, fp)`` over the formal
            parameter and attribute names of the interface.  Eqs. (1) and
            (2) are instances; a perfectly reliable modeling connector uses
            the constant 0.
        duration: optional expression for the service's execution time over
            the same names (e.g. ``N / speed`` for a processing service) —
            the input of the performance extension
            (:class:`repro.core.performance.PerformanceEvaluator`, the
            "other QoS aspects" of the paper's section 6).  ``None`` means
            the service publishes no timing information.
    """

    def __init__(
        self,
        name: str,
        interface: AnalyticInterface | None = None,
        failure_probability: Expression | float = 0.0,
        duration: Expression | float | None = None,
    ):
        super().__init__(name, interface)
        self.failure_probability = as_expression(failure_probability)
        self.duration = None if duration is None else as_expression(duration)
        allowed = set(self.interface.parameter_names) | set(self.interface.attributes)
        extra = self.failure_probability.free_parameters() - allowed
        if extra:
            raise ModelError(
                f"simple service {name!r}: failure probability references "
                f"unknown names {sorted(extra)}"
            )
        if self.duration is not None:
            extra = self.duration.free_parameters() - allowed
            if extra:
                raise ModelError(
                    f"simple service {name!r}: duration references unknown "
                    f"names {sorted(extra)}"
                )

    @property
    def is_simple(self) -> bool:
        return True

    def pfail(self, **actuals: Value) -> Value:
        """``Pfail(S, fp)`` for concrete (possibly array-valued) actuals."""
        env = self.evaluation_environment(actuals)
        return self.failure_probability.evaluate(env)

    def reliability(self, **actuals: Value) -> Value:
        """``1 - Pfail(S, fp)``."""
        return 1.0 - self.pfail(**actuals)

    def execution_time(self, **actuals: Value) -> Value:
        """The published duration for concrete actuals (raises
        :class:`ModelError` when the service publishes none)."""
        if self.duration is None:
            raise ModelError(
                f"simple service {self.name!r} publishes no duration"
            )
        env = self.evaluation_environment(actuals)
        return self.duration.evaluate(env)


class CompositeService(Service):
    """A service realized by a flow of requests to other services.

    Args:
        name: service name.
        interface: analytic interface.
        flow: the usage-profile template.  Its declared formal parameters
            must match the interface's; its expressions may additionally
            reference interface attribute names (e.g. a software failure
            rate used inside an internal-failure expression).
    """

    def __init__(
        self,
        name: str,
        interface: AnalyticInterface,
        flow: ServiceFlow,
    ):
        super().__init__(name, interface)
        if not isinstance(flow, ServiceFlow):
            raise ModelError(f"composite service {name!r} requires a ServiceFlow")
        declared = set(flow.formal_parameters)
        published = set(self.interface.parameter_names)
        if not declared <= published:
            raise ModelError(
                f"composite service {name!r}: flow declares parameters "
                f"{sorted(declared - published)} absent from the interface"
            )
        allowed = published | set(self.interface.attributes)
        for state in flow.states:
            for request in state.requests:
                extra = request.free_parameters() - allowed
                if extra:
                    raise ModelError(
                        f"composite service {name!r}, state {state.name!r}: "
                        f"request {request.target!r} references unknown names "
                        f"{sorted(extra)}"
                    )
        self.flow = flow

    @property
    def is_simple(self) -> bool:
        return False

    def requirements(self) -> frozenset[str]:
        """The required-service slot names this service's flow calls."""
        return self.flow.request_targets()
