"""Architectural meta-model: services, flows, resources, connectors,
assemblies.

This subpackage implements the paper's unified service model (section 2):
resources and connectors alike offer services described by analytic
interfaces; composite services carry a parametric usage-profile flow; an
assembly wires required slots to offered services through connectors.
"""

from repro.model.assembly import Assembly, Binding, ResolvedRequest
from repro.model.completion import (
    AND,
    OR,
    AndCompletion,
    CompletionModel,
    KOfNCompletion,
    OrCompletion,
)
from repro.model.connector import (
    CompositeConnector,
    CustomConnector,
    LocalCallConnector,
    RemoteCallConnector,
    SimpleConnector,
    perfect_connector,
)
from repro.model.flow import (
    END,
    START,
    FlowBuilder,
    FlowState,
    FlowTransition,
    ServiceFlow,
)
from repro.model.parameters import (
    Direction,
    FiniteDomain,
    FormalParameter,
    IntegerDomain,
    ParameterDomain,
    RealDomain,
)
from repro.model.registry import (
    AttributeConstraint,
    PublishedService,
    ServiceRegistry,
)
from repro.model.requests import ServiceRequest
from repro.model.resource import (
    CpuResource,
    DeviceResource,
    NetworkResource,
    SoftwareComponent,
)
from repro.model.service import (
    AnalyticInterface,
    CompositeService,
    Service,
    SimpleService,
)
from repro.model.validation import (
    ValidationIssue,
    ValidationReport,
    validate_assembly,
)

__all__ = [
    "AND",
    "END",
    "OR",
    "START",
    "AnalyticInterface",
    "AndCompletion",
    "Assembly",
    "AttributeConstraint",
    "Binding",
    "CompletionModel",
    "CompositeConnector",
    "CompositeService",
    "CpuResource",
    "CustomConnector",
    "DeviceResource",
    "Direction",
    "FiniteDomain",
    "FlowBuilder",
    "FlowState",
    "FlowTransition",
    "FormalParameter",
    "IntegerDomain",
    "KOfNCompletion",
    "LocalCallConnector",
    "NetworkResource",
    "OrCompletion",
    "ParameterDomain",
    "PublishedService",
    "RealDomain",
    "RemoteCallConnector",
    "ResolvedRequest",
    "Service",
    "ServiceFlow",
    "ServiceRegistry",
    "ServiceRequest",
    "SimpleConnector",
    "SimpleService",
    "SoftwareComponent",
    "ValidationIssue",
    "ValidationReport",
    "perfect_connector",
    "validate_assembly",
]
