"""Service requests — the ``A_ij = call(S_j, ap_j)`` of the paper.

A :class:`ServiceRequest` is one entry of a flow state's request set.  It
names the *required-service slot* it targets (resolved to an offered service
plus a connector by the enclosing :class:`~repro.model.assembly.Assembly`),
and carries three families of expressions, all over the formal parameters of
the **calling** service:

- ``actuals`` — the actual parameters ``ap_j(fp)`` handed to the callee
  (section 3's parametric dependency; e.g. the search service requests
  ``sort(list)`` and ``cpu(log(list))``);
- ``internal_failure`` — ``Pfail_int(A_ij)``, the probability that the
  *internal* operations tied to issuing this request fail.  For a plain
  method call the paper suggests zero; for a ``call(cpu, N)`` request it is
  the caller's software-reliability function of ``N`` (eq. 14) — see
  :func:`repro.reliability.internal.per_operation_internal`;
- ``connector_actuals`` — optional per-request actual parameters for the
  connector transporting the request (``[S_j, ap_j]`` in eq. 8 / eq. 13,
  e.g. ``ip = elem + list`` and ``op = res`` in section 4).  When omitted,
  the defaults declared on the assembly binding are used;
- ``masking`` — the **error-propagation extension** (the paper's section 6
  lists releasing the fail-stop assumption "to deal also with error
  propagation aspects" as future work): the probability that a failure of
  this request is *masked* at the caller's boundary (absorbed by retries,
  defaults, stale caches, ...) and the request still counts as fulfilled
  for the completion model.  The default 0 is exactly the paper's
  fail-stop semantics; under the sharing model a masked external failure
  still destroys the shared service (no repair) — masking only changes
  whether *this caller's request* is considered fulfilled.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from types import MappingProxyType

from repro.errors import ModelError
from repro.symbolic import Constant, Expression, ExpressionLike, as_expression

__all__ = ["ServiceRequest"]


def _freeze_exprs(
    what: str, mapping: Mapping[str, ExpressionLike] | None
) -> Mapping[str, Expression]:
    out: dict[str, Expression] = {}
    for name, value in (mapping or {}).items():
        if not isinstance(name, str) or not name.isidentifier():
            raise ModelError(f"{what}: invalid parameter name {name!r}")
        out[name] = as_expression(value)
    return MappingProxyType(out)


@dataclass(frozen=True)
class ServiceRequest:
    """One service request inside a flow state.

    Args:
        target: name of the required-service slot this request calls.
        actuals: actual-parameter expressions keyed by the callee's formal
            parameter names (expressions over the caller's formals).
        internal_failure: ``Pfail_int`` expression over the caller's formals
            (default: the perfectly reliable call of §3.2 case (a)).
        connector_actuals: optional connector actual-parameter expressions;
            ``None`` defers to the assembly binding's defaults.
        masking: probability expression that a failure of this request is
            masked at the caller boundary (default 0 — the paper's
            fail-stop semantics).
        label: optional human-readable annotation (e.g. ``"marshal ip"`` as
            in Figure 2).
    """

    target: str
    actuals: Mapping[str, Expression] = field(default_factory=dict)
    internal_failure: Expression = field(default_factory=lambda: Constant(0.0))
    connector_actuals: Mapping[str, Expression] | None = None
    masking: Expression = field(default_factory=lambda: Constant(0.0))
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.target, str) or not self.target:
            raise ModelError(f"invalid request target {self.target!r}")
        object.__setattr__(self, "actuals", _freeze_exprs("actuals", self.actuals))
        object.__setattr__(
            self, "internal_failure", as_expression(self.internal_failure)
        )
        object.__setattr__(self, "masking", as_expression(self.masking))
        if self.connector_actuals is not None:
            object.__setattr__(
                self,
                "connector_actuals",
                _freeze_exprs("connector_actuals", self.connector_actuals),
            )

    def free_parameters(self) -> frozenset[str]:
        """All caller-side parameters referenced by this request."""
        names: frozenset[str] = self.internal_failure.free_parameters()
        names |= self.masking.free_parameters()
        for expr in self.actuals.values():
            names |= expr.free_parameters()
        for expr in (self.connector_actuals or {}).values():
            names |= expr.free_parameters()
        return names

    def describe(self) -> str:
        """Compact ``call(target, actuals...)`` rendering, as in Figure 1."""
        args = ", ".join(f"{k}={v}" for k, v in sorted(self.actuals.items()))
        note = f"  # {self.label}" if self.label else ""
        return f"call({self.target}{', ' if args else ''}{args}){note}"

    def __str__(self) -> str:
        return self.describe()
