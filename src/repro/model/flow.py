"""Service flows — the abstract usage profile DTMC of a composite service.

Section 2(b): the flow of requests a composite service generates is a
discrete-time Markov chain whose nodes each hold a set of service requests
that must be fulfilled (under a completion model) before the transition to
the next node; section 3 adds the dependency (sharing) model per node and
the ``Start``/``End`` conventions:

- ``Start`` is the entry point, models no real behavior, and can never fail
  (the failure structure adds no ``Start -> Fail`` edge);
- ``End`` is the absorbing state marking successful completion.

Transition probabilities are :class:`~repro.symbolic.Expression`s over the
service's formal parameters (the paper allows "both the transition
probabilities and the actual parameters ... defined as functions of the
formal parameters").  A flow is therefore a *template*; instantiating it for
concrete parameter values yields a concrete DTMC.

Use :class:`FlowBuilder` for readable construction::

    flow = (
        FlowBuilder(formals=("elem", "list", "res"))
        .state("sort", requests=[sort_request], completion=AND)
        .state("search", requests=[cpu_request])
        .transition("Start", "sort", q)
        .transition("Start", "search", 1 - q)
        .transition("sort", "search", 1)
        .transition("search", "End", 1)
        .build()
    )
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import InvalidFlowError, InvalidSharingError
from repro.model.completion import AND, CompletionModel
from repro.model.requests import ServiceRequest
from repro.symbolic import Environment, Expression, ExpressionLike, as_expression

__all__ = ["FlowState", "FlowTransition", "ServiceFlow", "FlowBuilder", "START", "END"]

#: Reserved state names.
START = "Start"
END = "End"
#: Name used by the failure-structure augmentation (reserved here so user
#: flows cannot collide with it).
FAIL = "Fail"

_RESERVED = {START, END, FAIL}


@dataclass(frozen=True)
class FlowState:
    """An internal node of a flow: a set of requests plus the completion and
    dependency (sharing) models that govern them.

    Attributes:
        name: unique state name (not one of ``Start``/``End``/``Fail``).
        requests: the request set ``A_i1 .. A_in``.
        completion: AND / OR / k-of-n completion model (default AND).
        shared: dependency model — ``True`` means the requests share one
            common external service through one connector (section 3.2's
            sharing model, with the paper's stated restriction that all
            requests then target the same service; enforced by
            :meth:`ServiceFlow.validate`).
        sharing_groups: the **extended dependency model** (the paper's
            section 6 asks for "more complex dependencies"): a partition of
            the request indices into groups; requests in the same multi-
            request group share one external service (one failure kills the
            group, as in eqs. 9/10), while distinct groups are independent.
            ``None`` (default) means the classic binary model via
            ``shared``; mutually exclusive with ``shared=True``.  Each
            multi-request group must target a single slot (the per-group
            form of the paper's restriction).
    """

    name: str
    requests: tuple[ServiceRequest, ...] = ()
    completion: CompletionModel = AND
    shared: bool = False
    sharing_groups: tuple[tuple[int, ...], ...] | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise InvalidFlowError(f"invalid state name {self.name!r}")
        if self.name in _RESERVED:
            raise InvalidFlowError(
                f"state name {self.name!r} is reserved; internal states must "
                f"not be named Start/End/Fail"
            )
        object.__setattr__(self, "requests", tuple(self.requests))
        if not all(isinstance(r, ServiceRequest) for r in self.requests):
            raise InvalidFlowError("state requests must be ServiceRequest instances")
        if not isinstance(self.completion, CompletionModel):
            raise InvalidFlowError(
                f"completion must be a CompletionModel, got {self.completion!r}"
            )
        if self.shared and len(self.requests) < 2:
            raise InvalidFlowError(
                f"state {self.name!r}: sharing is only meaningful with at "
                f"least two requests"
            )
        if self.sharing_groups is not None:
            if self.shared:
                raise InvalidFlowError(
                    f"state {self.name!r}: 'shared' and 'sharing_groups' are "
                    f"mutually exclusive"
                )
            groups = tuple(tuple(int(i) for i in g) for g in self.sharing_groups)
            object.__setattr__(self, "sharing_groups", groups)
            flattened = sorted(i for g in groups for i in g)
            if flattened != list(range(len(self.requests))):
                raise InvalidFlowError(
                    f"state {self.name!r}: sharing_groups {groups} must "
                    f"partition the request indices 0..{len(self.requests) - 1}"
                )
        # The completion model must be applicable to this request count at
        # all (e.g. 3-of-n needs n >= 3); fail early rather than at
        # evaluation time.
        if self.requests:
            self.completion.required_successes(len(self.requests))

    def effective_groups(self) -> tuple[tuple[int, ...], ...]:
        """The dependency partition in normalized form: explicit
        ``sharing_groups`` if given, one all-request group for
        ``shared=True``, else all singletons (independence)."""
        n = len(self.requests)
        if self.sharing_groups is not None:
            return self.sharing_groups
        if self.shared:
            return (tuple(range(n)),)
        return tuple((i,) for i in range(n))

    def check_sharing_restriction(self) -> None:
        """Enforce the paper's sharing restriction per dependency group:
        all requests of a multi-request group target the same service slot
        (hence the same connector)."""
        for group in self.effective_groups():
            if len(group) < 2:
                continue
            targets = {self.requests[i].target for i in group}
            if len(targets) != 1:
                raise InvalidSharingError(
                    f"shared state {self.name!r} has a dependency group with "
                    f"requests targeting {sorted(targets)}; the sharing model "
                    f"requires a single common service accessed through a "
                    f"single connector per group"
                )


@dataclass(frozen=True)
class FlowTransition:
    """A directed edge of the flow with a parametric probability."""

    source: str
    target: str
    probability: Expression

    def __post_init__(self) -> None:
        object.__setattr__(self, "probability", as_expression(self.probability))


class ServiceFlow:
    """The validated usage-profile template of a composite service.

    Args:
        formal_parameters: names of the owning service's formal parameters
            (every expression in the flow may reference only these).
        states: the internal states (``Start`` and ``End`` are implicit).
        transitions: the edges, including those leaving ``Start`` and
            entering ``End``.
    """

    def __init__(
        self,
        formal_parameters: Sequence[str],
        states: Iterable[FlowState],
        transitions: Iterable[FlowTransition],
    ):
        self._formals = tuple(formal_parameters)
        self._states: dict[str, FlowState] = {}
        for state in states:
            if state.name in self._states:
                raise InvalidFlowError(f"duplicate flow state {state.name!r}")
            self._states[state.name] = state
        self._transitions = tuple(transitions)
        self._outgoing: dict[str, list[FlowTransition]] = {}
        for t in self._transitions:
            self._outgoing.setdefault(t.source, []).append(t)
        self.validate()

    # -- accessors -----------------------------------------------------------

    @property
    def formal_parameters(self) -> tuple[str, ...]:
        """Formal-parameter names of the owning service."""
        return self._formals

    @property
    def states(self) -> tuple[FlowState, ...]:
        """Internal states in insertion order."""
        return tuple(self._states.values())

    @property
    def transitions(self) -> tuple[FlowTransition, ...]:
        """All transitions."""
        return self._transitions

    def state(self, name: str) -> FlowState:
        """Look up an internal state by name."""
        try:
            return self._states[name]
        except KeyError:
            raise InvalidFlowError(f"unknown flow state {name!r}") from None

    def outgoing(self, name: str) -> tuple[FlowTransition, ...]:
        """Transitions leaving ``name``."""
        return tuple(self._outgoing.get(name, ()))

    def request_targets(self) -> frozenset[str]:
        """All required-service slot names referenced by this flow."""
        return frozenset(
            r.target for s in self._states.values() for r in s.requests
        )

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Structural validation (raised eagerly by the constructor)."""
        known = set(self._states) | {START, END}
        for t in self._transitions:
            if t.source == END:
                raise InvalidFlowError("End is absorbing; no outgoing transitions")
            if t.target == START:
                raise InvalidFlowError("Start must have no incoming transitions")
            for endpoint in (t.source, t.target):
                if endpoint not in known:
                    raise InvalidFlowError(
                        f"transition {t.source!r}->{t.target!r} references "
                        f"unknown state {endpoint!r}"
                    )
        if not self._outgoing.get(START):
            raise InvalidFlowError("flow must have at least one transition from Start")
        for name in self._states:
            if not self._outgoing.get(name):
                raise InvalidFlowError(
                    f"state {name!r} has no outgoing transition; every "
                    f"internal state must eventually reach End"
                )
        # End must be reachable from Start (template-level check: positive
        # probability is parameter-dependent, but connectivity is not).
        reachable = {START}
        frontier = [START]
        while frontier:
            node = frontier.pop()
            for t in self._outgoing.get(node, ()):
                if t.target not in reachable:
                    reachable.add(t.target)
                    frontier.append(t.target)
        if END not in reachable:
            raise InvalidFlowError("End is not reachable from Start")
        unreachable = set(self._states) - reachable
        if unreachable:
            raise InvalidFlowError(
                f"states {sorted(unreachable)} are unreachable from Start"
            )
        # expressions must only use declared formal parameters
        declared = set(self._formals)
        for t in self._transitions:
            extra = t.probability.free_parameters() - declared
            if extra:
                raise InvalidFlowError(
                    f"transition {t.source!r}->{t.target!r} probability uses "
                    f"undeclared parameters {sorted(extra)}"
                )
        for state in self._states.values():
            state.check_sharing_restriction()

    def check_probabilities(self, env: Environment | Mapping[str, float]) -> None:
        """Validate that, under ``env``, every row of transition
        probabilities is a distribution (non-negative, sums to one).

        Flows are parametric, so this check requires concrete parameter
        values; the evaluator performs it implicitly when instantiating the
        failure-augmented chain.
        """
        for source in [START, *self._states]:
            total = 0.0
            for t in self._outgoing.get(source, ()):
                p = float(t.probability.evaluate(env))
                if p < -1e-12 or p > 1.0 + 1e-12:
                    raise InvalidFlowError(
                        f"transition {t.source!r}->{t.target!r} has "
                        f"probability {p} outside [0, 1] under {dict(env)!r}"
                    )
                total += p
            if abs(total - 1.0) > 1e-9:
                raise InvalidFlowError(
                    f"outgoing probabilities of {source!r} sum to {total} "
                    f"under {dict(env)!r}"
                )

    def describe(self) -> str:
        """Multi-line textual rendering in the style of Figure 1."""
        lines = [f"flow({', '.join(self._formals)}):"]
        for state in self._states.values():
            mode = state.completion.describe(len(state.requests)) if state.requests else "-"
            share = " [shared]" if state.shared else ""
            lines.append(f"  state {state.name} ({mode}){share}:")
            for request in state.requests:
                lines.append(f"    {request.describe()}")
        for t in self._transitions:
            lines.append(f"  {t.source} -> {t.target} : {t.probability}")
        return "\n".join(lines)


class FlowBuilder:
    """Fluent construction of a :class:`ServiceFlow`."""

    def __init__(self, formals: Sequence[str] = ()):
        self._formals = tuple(formals)
        self._states: list[FlowState] = []
        self._transitions: list[FlowTransition] = []

    def state(
        self,
        name: str,
        requests: Sequence[ServiceRequest] = (),
        completion: CompletionModel = AND,
        shared: bool = False,
        sharing_groups: Sequence[Sequence[int]] | None = None,
    ) -> "FlowBuilder":
        """Add an internal state."""
        self._states.append(
            FlowState(
                name,
                tuple(requests),
                completion=completion,
                shared=shared,
                sharing_groups=(
                    None
                    if sharing_groups is None
                    else tuple(tuple(g) for g in sharing_groups)
                ),
            )
        )
        return self

    def transition(
        self, source: str, target: str, probability: ExpressionLike = 1
    ) -> "FlowBuilder":
        """Add a transition edge."""
        self._transitions.append(
            FlowTransition(source, target, as_expression(probability))
        )
        return self

    def sequence(self, *names: str) -> "FlowBuilder":
        """Chain ``Start -> names[0] -> ... -> names[-1] -> End`` with
        probability-1 edges — the shape of the sort and LPC/RPC flows."""
        path = [START, *names, END]
        for source, target in zip(path, path[1:]):
            self.transition(source, target, 1)
        return self

    def build(self) -> ServiceFlow:
        """Validate and freeze the flow."""
        return ServiceFlow(self._formals, self._states, self._transitions)
