"""Formal parameters and abstract domains of analytic interfaces.

Section 2 of the paper: the abstraction in an analytic interface "should
concern both the service itself and the domains where its formal parameters
... can take value", achieved "by partitioning the real domain into a
(possibly finite) set of disjoint subdomains, and then collapsing all the
elements in each subdomain into a single representative element".

A :class:`FormalParameter` couples a parameter name with such an abstract
:class:`ParameterDomain`.  Domains are used to validate the environments
supplied to the evaluator and to document interfaces in the DSL; they do not
constrain symbolic manipulation.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError

__all__ = [
    "ParameterDomain",
    "RealDomain",
    "IntegerDomain",
    "FiniteDomain",
    "FormalParameter",
    "Direction",
]


class ParameterDomain:
    """Base class for abstract parameter domains."""

    def contains(self, value: float) -> bool:
        """True when ``value`` belongs to the domain."""
        raise NotImplementedError

    def contains_all(self, values: Iterable[float] | np.ndarray) -> bool:
        """True when every element of ``values`` belongs to the domain."""
        arr = np.atleast_1d(np.asarray(values, dtype=float))
        return all(self.contains(float(v)) for v in arr.ravel())

    def describe(self) -> str:
        """Human-readable description of the domain."""
        raise NotImplementedError


@dataclass(frozen=True)
class RealDomain(ParameterDomain):
    """A (possibly half-open) real interval ``[low, high]``."""

    low: float = float("-inf")
    high: float = float("inf")

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ModelError(f"empty real domain [{self.low}, {self.high}]")

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def describe(self) -> str:
        return f"real in [{self.low}, {self.high}]"


@dataclass(frozen=True)
class IntegerDomain(ParameterDomain):
    """Integer values in ``[low, high]``.

    This is the domain of the paper's abstract workload parameters: ``N``
    operations, ``B`` bytes, ``list`` sizes.
    """

    low: int = 0
    high: float = float("inf")

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ModelError(f"empty integer domain [{self.low}, {self.high}]")

    def contains(self, value: float) -> bool:
        return (
            self.low <= value <= self.high
            and float(value) == float(int(value))
        )

    def describe(self) -> str:
        return f"integer in [{self.low}, {self.high}]"


@dataclass(frozen=True)
class FiniteDomain(ParameterDomain):
    """An explicit finite set of representative elements."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ModelError("FiniteDomain requires at least one value")
        object.__setattr__(self, "values", tuple(float(v) for v in self.values))

    def contains(self, value: float) -> bool:
        return float(value) in self.values

    def describe(self) -> str:
        return f"one of {sorted(set(self.values))}"


class Direction:
    """Parameter directions as used in the paper's example signatures
    (``in:elem, in:list, out:res``)."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    _ALL = (IN, OUT, INOUT)


#: Non-negative integers — the default domain for abstract workloads.
_DEFAULT_DOMAIN = IntegerDomain(low=0)


@dataclass(frozen=True)
class FormalParameter:
    """A named formal parameter of a service's analytic interface.

    Attributes:
        name: the identifier used inside expressions.
        domain: the abstract domain of the parameter.
        direction: ``in``/``out``/``inout`` (documentation + validation of
            the DSL form; ``out`` parameters still have abstract sizes, e.g.
            the ``res`` result size fed to the RPC connector's ``op``).
        description: free-text documentation.
    """

    name: str
    domain: ParameterDomain = field(default=_DEFAULT_DOMAIN)
    direction: str = Direction.IN
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ModelError(f"invalid parameter name {self.name!r}")
        if not self.name.isidentifier():
            raise ModelError(
                f"parameter name {self.name!r} must be a valid identifier"
            )
        if self.direction not in Direction._ALL:
            raise ModelError(f"invalid parameter direction {self.direction!r}")
        if not isinstance(self.domain, ParameterDomain):
            raise ModelError(f"invalid domain {self.domain!r}")
