"""Completion models for the service requests inside a flow state.

Section 3.2 of the paper: *"the requests in this set must be fulfilled
according to some completion model before a transition to the next node can
take place"*.  Two models are analyzed in the paper and a third is named as
an obvious extension:

- :class:`AndCompletion` — **all** requests must complete (eq. 4);
- :class:`OrCompletion` — **at least one** request must complete (eq. 5;
  the paper notes this models fault-tolerance features);
- :class:`KOfNCompletion` — at least ``k`` of the ``n`` requests must
  complete (mentioned in §3.2: *"Other completion models could be
  considered as well (e.g. 'k out of n')"*).  AND and OR are the ``k = n``
  and ``k = 1`` special cases, which is exactly how the evaluator treats
  them — one Poisson-binomial implementation covers all three, and the
  paper's closed forms (6)/(7)/(11)/(12) are recovered as identities (see
  ``tests/property/test_sharing_identities.py``).

A completion model only has to answer one structural question: *how many of
the n requests must succeed* for the state to complete.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

__all__ = ["CompletionModel", "AndCompletion", "OrCompletion", "KOfNCompletion", "AND", "OR"]


class CompletionModel:
    """Base class for completion models."""

    #: short tag used by ``repr`` and the DSL serialization
    kind: str = ""

    def required_successes(self, n: int) -> int:
        """Number of requests (out of ``n``) that must succeed for the state
        to complete successfully."""
        raise NotImplementedError

    def describe(self, n: int) -> str:
        """Human-readable description for an ``n``-request state."""
        return f"{self.required_successes(n)}-of-{n}"


@dataclass(frozen=True)
class AndCompletion(CompletionModel):
    """All requests must be fulfilled (paper eq. 4)."""

    kind: str = "and"

    def required_successes(self, n: int) -> int:
        if n < 0:
            raise ModelError("request count must be non-negative")
        return n


@dataclass(frozen=True)
class OrCompletion(CompletionModel):
    """At least one request must be fulfilled (paper eq. 5)."""

    kind: str = "or"

    def required_successes(self, n: int) -> int:
        if n < 1:
            raise ModelError("OR completion requires at least one request")
        return 1


@dataclass(frozen=True)
class KOfNCompletion(CompletionModel):
    """At least ``k`` requests must be fulfilled (paper's named extension)."""

    k: int
    kind: str = "k_of_n"

    def __post_init__(self) -> None:
        if not isinstance(self.k, int) or self.k < 1:
            raise ModelError(f"k must be a positive integer, got {self.k!r}")

    def required_successes(self, n: int) -> int:
        if self.k > n:
            raise ModelError(
                f"k-of-n completion with k={self.k} but only n={n} requests"
            )
        return self.k


#: Singleton instances for the common cases.
AND = AndCompletion()
OR = OrCompletion()
