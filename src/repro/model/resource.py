"""Resources — the entities that offer services.

The paper (footnote 1) uses *resource* rather than *component* to encompass
"both software components and physical resources, like processors,
communication links, or other devices".  This module provides the concrete
resource kinds of section 3.1, each a small factory for the
:class:`~repro.model.service.SimpleService` it offers:

- :class:`CpuResource` — processing service with abstract parameter ``N``
  (operations), attributes speed ``s`` and failure rate ``lambda``;
  ``Pfail(cpu, N) = 1 - exp(-lambda*N/s)``  (eq. 1);
- :class:`NetworkResource` — communication service with abstract parameter
  ``B`` (bytes), attributes bandwidth ``b`` and failure rate ``beta``;
  ``Pfail(net, B) = 1 - exp(-beta*B/b)``  (eq. 2);
- :class:`DeviceResource` — a generic simple resource with a caller-supplied
  failure-probability expression (printers, sensors, black-box components
  tied to a platform);
- :class:`SoftwareComponent` — a named holder for a software failure rate
  ``phi``, offering helpers to build the internal-failure expressions of
  eq. (14) for the composite services it implements.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.model.parameters import FormalParameter, IntegerDomain
from repro.model.service import AnalyticInterface, SimpleService
from repro.symbolic import Call, Constant, Expression, Parameter, as_expression

__all__ = [
    "CpuResource",
    "NetworkResource",
    "DeviceResource",
    "SoftwareComponent",
]


def _check_positive(what: str, value: float) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0.0:
        raise ModelError(f"{what} must be a positive number, got {value!r}")
    return float(value)


def _check_rate(what: str, value: float) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value < 0.0:
        raise ModelError(f"{what} must be a non-negative number, got {value!r}")
    return float(value)


class CpuResource:
    """A processing resource (cpu-type) offering one processing service.

    Args:
        name: resource/service name (the paper names the service after the
            resource, e.g. ``cpu1``).
        speed: operations per time unit (``s`` in eq. 1).
        failure_rate: failures per time unit (``lambda`` in eq. 1).
    """

    #: Formal-parameter name of the offered service.
    PARAM = "N"

    def __init__(self, name: str, speed: float, failure_rate: float):
        self.name = name
        self.speed = _check_positive(f"cpu {name!r} speed", speed)
        self.failure_rate = _check_rate(f"cpu {name!r} failure rate", failure_rate)

    def service(self) -> SimpleService:
        """The offered processing service with ``Pfail`` from eq. (1)."""
        n = Parameter(self.PARAM)
        interface = AnalyticInterface(
            formal_parameters=(
                FormalParameter(
                    self.PARAM,
                    domain=IntegerDomain(low=0),
                    description="number of average operations to execute",
                ),
            ),
            attributes={"speed": self.speed, "failure_rate": self.failure_rate},
            description=f"processing service of cpu resource {self.name!r}",
        )
        pfail = Constant(1.0) - Call(
            "exp",
            (-(Parameter("failure_rate") * n / Parameter("speed")),),
        )
        return SimpleService(
            self.name, interface, pfail,
            duration=n / Parameter("speed"),
        )


class NetworkResource:
    """A communication resource (network-type) offering one transmission
    service.

    Args:
        name: resource/service name (e.g. ``net12``).
        bandwidth: bytes per time unit (``b`` in eq. 2).
        failure_rate: failures per time unit (``beta``/``gamma`` in eq. 2).
    """

    #: Formal-parameter name of the offered service.
    PARAM = "B"

    def __init__(self, name: str, bandwidth: float, failure_rate: float):
        self.name = name
        self.bandwidth = _check_positive(f"network {name!r} bandwidth", bandwidth)
        self.failure_rate = _check_rate(f"network {name!r} failure rate", failure_rate)

    def service(self) -> SimpleService:
        """The offered communication service with ``Pfail`` from eq. (2)."""
        b = Parameter(self.PARAM)
        interface = AnalyticInterface(
            formal_parameters=(
                FormalParameter(
                    self.PARAM,
                    domain=IntegerDomain(low=0),
                    description="number of bytes to transmit",
                ),
            ),
            attributes={"bandwidth": self.bandwidth, "failure_rate": self.failure_rate},
            description=f"communication service of network resource {self.name!r}",
        )
        pfail = Constant(1.0) - Call(
            "exp",
            (-(Parameter("failure_rate") * b / Parameter("bandwidth")),),
        )
        return SimpleService(
            self.name, interface, pfail,
            duration=b / Parameter("bandwidth"),
        )


class DeviceResource:
    """A generic simple resource with a caller-supplied failure model.

    Covers the paper's "other devices (like printers and sensors)" and
    black-box software components tied to a platform: anything that
    publishes a closed-form unreliability over its abstract parameters.

    Args:
        name: resource/service name.
        formal_parameters: abstract parameters of the offered service.
        failure_probability: ``Pfail`` expression over those parameters (and
            any supplied attributes).
        attributes: named numeric attributes referenced by the expression.
    """

    def __init__(
        self,
        name: str,
        formal_parameters: tuple[FormalParameter, ...] = (),
        failure_probability: Expression | float = 0.0,
        attributes: dict[str, float] | None = None,
        duration: Expression | float | None = None,
    ):
        self.name = name
        self.formal_parameters = tuple(formal_parameters)
        self.failure_probability = as_expression(failure_probability)
        self.attributes = dict(attributes or {})
        self.duration = duration

    def service(self) -> SimpleService:
        """The offered service."""
        interface = AnalyticInterface(
            formal_parameters=self.formal_parameters,
            attributes=self.attributes,
            description=f"service of device resource {self.name!r}",
        )
        return SimpleService(
            self.name, interface, self.failure_probability,
            duration=self.duration,
        )


class SoftwareComponent:
    """A software component characterized by a software failure rate.

    The paper's composite services are "typically offered by software
    components"; the component's only directly published failure information
    is its software failure rate ``phi`` — "the probability of a software
    failure in an operation" (eq. 14 context).  This class carries that rate
    and builds the corresponding internal-failure expressions.

    Args:
        name: component name.
        software_failure_rate: per-operation failure probability ``phi``.
    """

    def __init__(self, name: str, software_failure_rate: float):
        self.name = name
        if (
            isinstance(software_failure_rate, bool)
            or not isinstance(software_failure_rate, (int, float))
            or not 0.0 <= software_failure_rate <= 1.0
        ):
            raise ModelError(
                f"software failure rate of {name!r} must be a probability, "
                f"got {software_failure_rate!r}"
            )
        self.software_failure_rate = float(software_failure_rate)

    def internal_failure(self, operations: Expression | float | str) -> Expression:
        """``Pfail_int(call(cpu, N)) = 1 - (1 - phi) ** N``  (eq. 14).

        Args:
            operations: expression for the operation count ``N`` over the
                calling service's formal parameters.
        """
        n = as_expression(operations)
        return Constant(1.0) - Constant(1.0 - self.software_failure_rate) ** n

    def __repr__(self) -> str:
        return (
            f"SoftwareComponent({self.name!r}, "
            f"phi={self.software_failure_rate!r})"
        )
