"""Assemblies — wiring required services to offered services via connectors.

An :class:`Assembly` is the architectural configuration the paper evaluates:
a set of services (including connector services) plus *bindings* that map
each required-service slot of each composite service to an offered service,
transported by a connector.  Figures 3 and 4 of the paper are two
assemblies over the same component set differing only in bindings and
connectors — reproducing that comparison is the core use case.

A :class:`Binding` carries the connector's default actual parameters as
expressions over the *consumer's* formal parameters (the ``[S_j, ap_j]``
connector argument of eq. 8; in section 4, ``ip = elem + list`` and
``op = res``).  Individual :class:`~repro.model.requests.ServiceRequest`\\ s
may override them.

Connectors are services, so composite connectors (LPC/RPC) have bindings of
their own — e.g. the RPC connector's ``net`` slot binds to ``net12``.  This
uniformity yields exactly the recursion levels the paper walks through in
section 4 (:meth:`Assembly.recursion_levels`).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from types import MappingProxyType

from repro.errors import (
    DuplicateNameError,
    ModelError,
    UnboundRequirementError,
    UnknownServiceError,
)
from repro.model.requests import ServiceRequest
from repro.model.service import CompositeService, Service
from repro.symbolic import Expression, ExpressionLike, as_expression

__all__ = ["Binding", "ResolvedRequest", "Assembly"]


@dataclass(frozen=True)
class Binding:
    """A (consumer, slot) -> (provider, connector) wiring entry.

    Attributes:
        consumer: name of the composite service whose flow names the slot.
        slot: the required-service alias used in the consumer's flow.
        provider: name of the offered service bound to the slot.
        connector: name of the connector service transporting requests, or
            ``None`` for a direct (implicitly perfect) association.
        connector_actuals: default actual-parameter expressions for the
            connector, over the consumer's formal parameters.
    """

    consumer: str
    slot: str
    provider: str
    connector: str | None = None
    connector_actuals: Mapping[str, Expression] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label, value in (("consumer", self.consumer), ("slot", self.slot),
                             ("provider", self.provider)):
            if not isinstance(value, str) or not value:
                raise ModelError(f"binding {label} must be a non-empty string")
        frozen = {
            name: as_expression(expr)
            for name, expr in dict(self.connector_actuals).items()
        }
        object.__setattr__(self, "connector_actuals", MappingProxyType(frozen))


@dataclass(frozen=True)
class ResolvedRequest:
    """A service request resolved against an assembly.

    Attributes:
        request: the original request.
        provider: the offered service the slot is bound to.
        connector: the connector service, or ``None``.
        connector_actuals: the effective connector actual parameters
            (request-level override if present, else binding defaults).
    """

    request: ServiceRequest
    provider: Service
    connector: Service | None
    connector_actuals: Mapping[str, Expression]


class Assembly:
    """A named set of services plus the bindings wiring them together."""

    def __init__(self, name: str = "assembly"):
        if not isinstance(name, str) or not name:
            raise ModelError(f"invalid assembly name {name!r}")
        self.name = name
        self._services: dict[str, Service] = {}
        self._bindings: dict[tuple[str, str], Binding] = {}

    # -- construction -----------------------------------------------------

    def add_service(self, service: Service) -> "Assembly":
        """Register a service (or connector service)."""
        if not isinstance(service, Service):
            raise ModelError(f"{service!r} is not a Service")
        if service.name in self._services:
            raise DuplicateNameError("service", service.name)
        self._services[service.name] = service
        return self

    def add_services(self, *services: Service) -> "Assembly":
        """Register several services at once."""
        for service in services:
            self.add_service(service)
        return self

    def bind(
        self,
        consumer: str,
        slot: str,
        provider: str,
        connector: str | None = None,
        connector_actuals: Mapping[str, ExpressionLike] | None = None,
    ) -> "Assembly":
        """Bind a required-service slot of ``consumer`` to ``provider``.

        Duplicate bindings for the same (consumer, slot) are rejected —
        rebinding would silently change the architecture being analyzed.
        """
        key = (consumer, slot)
        if key in self._bindings:
            raise DuplicateNameError("binding", f"{consumer}.{slot}")
        self._bindings[key] = Binding(
            consumer,
            slot,
            provider,
            connector,
            {k: as_expression(v) for k, v in (connector_actuals or {}).items()},
        )
        return self

    # -- lookup -----------------------------------------------------------

    @property
    def services(self) -> tuple[Service, ...]:
        """All registered services, in registration order."""
        return tuple(self._services.values())

    @property
    def bindings(self) -> tuple[Binding, ...]:
        """All bindings, in creation order."""
        return tuple(self._bindings.values())

    def service(self, name: str) -> Service:
        """Look up a service by name."""
        try:
            return self._services[name]
        except KeyError:
            raise UnknownServiceError(name) from None

    def binding(self, consumer: str, slot: str) -> Binding:
        """Look up the binding for a (consumer, slot) pair."""
        try:
            return self._bindings[(consumer, slot)]
        except KeyError:
            raise UnboundRequirementError(consumer, slot) from None

    def resolve_request(self, consumer: str, request: ServiceRequest) -> ResolvedRequest:
        """Resolve a request of ``consumer``'s flow to its provider and
        connector, with effective connector actuals."""
        binding = self.binding(consumer, request.target)
        provider = self.service(binding.provider)
        connector = self.service(binding.connector) if binding.connector else None
        actuals = (
            request.connector_actuals
            if request.connector_actuals is not None
            else binding.connector_actuals
        )
        return ResolvedRequest(request, provider, connector, actuals)

    # -- structure ----------------------------------------------------------

    def dependency_graph(self) -> dict[str, frozenset[str]]:
        """Service-name -> names of the services it directly depends on.

        A composite service depends on the provider *and* the connector of
        every bound slot its flow references.  Simple services depend on
        nothing (the recursion base of section 3.3).
        """
        graph: dict[str, frozenset[str]] = {}
        for name, service in self._services.items():
            deps: set[str] = set()
            if isinstance(service, CompositeService):
                for slot in service.requirements():
                    binding = self._bindings.get((name, slot))
                    if binding is None:
                        continue  # reported by validation, not here
                    deps.add(binding.provider)
                    if binding.connector:
                        deps.add(binding.connector)
            graph[name] = frozenset(deps)
        return graph

    def find_cycle(self) -> tuple[str, ...] | None:
        """A dependency cycle as a name tuple (closed: first == last), or
        ``None`` when the assembly is acyclic."""
        graph = self.dependency_graph()
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in graph}
        stack: list[str] = []

        def visit(node: str) -> tuple[str, ...] | None:
            color[node] = GRAY
            stack.append(node)
            for dep in sorted(graph.get(node, ())):
                if dep not in color:
                    continue
                if color[dep] == GRAY:
                    start = stack.index(dep)
                    return tuple(stack[start:]) + (dep,)
                if color[dep] == WHITE:
                    found = visit(dep)
                    if found:
                        return found
            stack.pop()
            color[node] = BLACK
            return None

        for name in graph:
            if color[name] == WHITE:
                found = visit(name)
                if found:
                    return found
        return None

    def recursion_levels(self) -> dict[str, int]:
        """The stratification of section 4: level 0 services depend on
        nothing; level ``k`` services depend only on levels ``< k``.

        Raises :class:`ModelError` if the assembly is cyclic.
        """
        if self.find_cycle() is not None:
            raise ModelError(
                f"assembly {self.name!r} is cyclic; recursion levels are "
                f"undefined (see FixedPointEvaluator)"
            )
        graph = self.dependency_graph()
        levels: dict[str, int] = {}

        def level_of(node: str) -> int:
            if node in levels:
                return levels[node]
            deps = [d for d in graph.get(node, ()) if d in graph]
            value = 0 if not deps else 1 + max(level_of(d) for d in deps)
            levels[node] = value
            return value

        for name in graph:
            level_of(name)
        return levels

    def describe(self) -> str:
        """Textual rendering of the assembly in the style of Figures 3/4."""
        lines = [f"assembly {self.name!r}:"]
        for service in self._services.values():
            tag = "connector" if service.is_connector else (
                "simple" if service.is_simple else "composite"
            )
            lines.append(f"  {tag:9s} {service.name}")
        for binding in self._bindings.values():
            via = f" via {binding.connector}" if binding.connector else ""
            lines.append(
                f"  {binding.consumer}.{binding.slot} -> {binding.provider}{via}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Assembly({self.name!r}, services={len(self._services)}, "
            f"bindings={len(self._bindings)})"
        )
