"""Service registry — discovery and matching for the SOC workflow.

Section 1 of the paper: prediction matters because it "drives the selection
of the services to be assembled", in a setting where services are
"discovered, selected and assembled in an automated way".  The registry is
the discovery substrate: providers *publish* services under a category with
free-form metadata; a broker *queries* by category and attribute
constraints and receives candidates ordered by a caller-supplied criterion.

:mod:`repro.analysis.selection` builds on this to pick the candidate that
maximizes the *predicted assembly reliability* — the paper's motivating
loop, closed.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.errors import DuplicateNameError, ModelError, UnknownServiceError
from repro.model.service import Service

__all__ = ["PublishedService", "AttributeConstraint", "ServiceRegistry"]


@dataclass(frozen=True)
class PublishedService:
    """A registry entry: a service plus publication metadata.

    Attributes:
        service: the published service (its analytic interface travels with
            it — the paper's key requirement for automatic prediction).
        category: free-form category key used for discovery (e.g.
            ``"sort"``, ``"payment"``).
        provider: name of the publishing organization.
        metadata: additional free-form key/value details.
    """

    service: Service
    category: str
    provider: str = ""
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.category, str) or not self.category:
            raise ModelError("published service needs a non-empty category")
        object.__setattr__(self, "metadata", dict(self.metadata))


@dataclass(frozen=True)
class AttributeConstraint:
    """A bound on a published interface attribute.

    Attributes:
        attribute: interface attribute name (e.g. ``failure_rate``).
        maximum: inclusive upper bound, or ``None``.
        minimum: inclusive lower bound, or ``None``.
    """

    attribute: str
    maximum: float | None = None
    minimum: float | None = None

    def admits(self, service: Service) -> bool:
        """True when the service publishes the attribute within bounds."""
        if self.attribute not in service.interface.attributes:
            return False
        value = service.interface.attributes[self.attribute]
        if self.maximum is not None and value > self.maximum:
            return False
        if self.minimum is not None and value < self.minimum:
            return False
        return True


class ServiceRegistry:
    """An in-memory publish/discover registry."""

    def __init__(self) -> None:
        self._entries: dict[str, PublishedService] = {}

    def publish(
        self,
        service: Service,
        category: str,
        provider: str = "",
        metadata: Mapping[str, object] | None = None,
    ) -> PublishedService:
        """Publish a service under a category.  Names must be unique."""
        if service.name in self._entries:
            raise DuplicateNameError("published service", service.name)
        entry = PublishedService(service, category, provider, metadata or {})
        self._entries[service.name] = entry
        return entry

    def withdraw(self, name: str) -> None:
        """Remove a published service."""
        if name not in self._entries:
            raise UnknownServiceError(name)
        del self._entries[name]

    def lookup(self, name: str) -> PublishedService:
        """Fetch a registry entry by service name."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownServiceError(name) from None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def discover(
        self,
        category: str,
        constraints: tuple[AttributeConstraint, ...] = (),
        key: Callable[[PublishedService], float] | None = None,
    ) -> list[PublishedService]:
        """All published services in ``category`` satisfying every
        constraint, optionally sorted ascending by ``key``."""
        matches = [
            entry
            for entry in self._entries.values()
            if entry.category == category
            and all(c.admits(entry.service) for c in constraints)
        ]
        if key is not None:
            matches.sort(key=key)
        return matches

    def categories(self) -> frozenset[str]:
        """All categories with at least one published service."""
        return frozenset(entry.category for entry in self._entries.values())
