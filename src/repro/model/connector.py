"""Connectors — interaction services in the unified model.

Section 2 of the paper gives connectors first-class status: a connector
"offers a connection service implicitly invoked during the invocation of
some remote service, and requires in its turn processing and communication
services".  In this library a connector **is** a
:class:`~repro.model.service.Service` (simple or composite) flagged with
``is_connector = True``; the reliability math never special-cases it, which
is exactly the paper's point.

Provided connector kinds (Figure 2 plus the pure modeling artifacts of
section 3.1):

- :func:`perfect_connector` — the "local processing" association between a
  software service and the node it is deployed on; no tangible artifact,
  ``Pfail = 0`` (the ``loc1..loc5`` connectors of Figures 3/4);
- :class:`LocalCallConnector` (LPC) — shared-memory local procedure call;
  requires a processing service for the constant ``l`` control-transfer
  operations (Figure 2, left);
- :class:`RemoteCallConnector` (RPC) — marshal / transmit / unmarshal of the
  input parameters, then of the output parameters, with processing and
  communication costs linear in the transported sizes through constants
  ``c`` and ``m`` (Figure 2, right).  Each transfer stage is an AND state:
  all three requests must succeed;
- :class:`CustomConnector` — escape hatch: wrap any flow as a connector
  (e.g. a fault-tolerant replicated-messaging connector with an OR state).

Both LPC and RPC expose the conventional formal parameters ``ip`` and
``op`` — the sizes of the data transported from client to server and back —
and accept a ``software_failure_rate`` for their own code (the paper's
example sets it to zero, the default here).
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.model.flow import FlowBuilder, ServiceFlow
from repro.model.parameters import FormalParameter, IntegerDomain
from repro.model.requests import ServiceRequest
from repro.model.resource import CpuResource, NetworkResource
from repro.model.service import (
    AnalyticInterface,
    CompositeService,
    SimpleService,
)
from repro.symbolic import Constant, Expression, Parameter

__all__ = [
    "SimpleConnector",
    "CompositeConnector",
    "perfect_connector",
    "LocalCallConnector",
    "RemoteCallConnector",
    "CustomConnector",
]


class SimpleConnector(SimpleService):
    """A connector with a published closed-form (un)reliability."""

    is_connector = True


class CompositeConnector(CompositeService):
    """A connector realized by a flow over other services."""

    is_connector = True


def perfect_connector(name: str) -> SimpleConnector:
    """A pure modeling artifact with failure probability zero.

    Section 3.1: connectors that model "a simple association between
    required and offered services ... do not actually make use of any
    resource and do not correspond to any tangible artifact; hence we assume
    that their failure probability is equal to zero."
    """
    interface = AnalyticInterface(
        description=f"perfect modeling connector {name!r} (deployment association)"
    )
    return SimpleConnector(name, interface, Constant(0.0), duration=Constant(0.0))


def _transport_interface(description: str) -> AnalyticInterface:
    """The conventional ``(ip, op)`` interface of call connectors."""
    return AnalyticInterface(
        formal_parameters=(
            FormalParameter(
                "ip",
                domain=IntegerDomain(low=0),
                description="size of data transported client -> server",
            ),
            FormalParameter(
                "op",
                domain=IntegerDomain(low=0),
                description="size of data transported server -> client",
            ),
        ),
        description=description,
    )


def _internal(phi: float, operations: Expression) -> Expression:
    """Internal-failure expression for connector code of rate ``phi``
    executing ``operations`` — eq. (14), constant-folded when ``phi = 0``."""
    if phi == 0.0:
        return Constant(0.0)
    return Constant(1.0) - Constant(1.0 - phi) ** operations


class LocalCallConnector:
    """LPC connector: shared-memory local procedure call (Figure 2, left).

    Requires one service slot:

    - ``cpu`` — the processing service of the node both parties share.

    Args:
        name: connector/service name.
        operations: the constant ``l`` of the paper — operations needed for
            the control transfer, independent of ``ip``/``op`` under the
            shared-memory assumption.
        software_failure_rate: per-operation failure probability of the
            connector's own code (paper example: 0).
    """

    CPU_SLOT = "cpu"

    def __init__(
        self,
        name: str,
        operations: float,
        software_failure_rate: float = 0.0,
    ):
        if operations < 0:
            raise ModelError(f"LPC operations must be non-negative, got {operations}")
        if not 0.0 <= software_failure_rate <= 1.0:
            raise ModelError("software_failure_rate must be a probability")
        self.name = name
        self.operations = float(operations)
        self.software_failure_rate = float(software_failure_rate)

    def service(self) -> CompositeConnector:
        """The connection service with the Figure 2 (left) flow."""
        ops = Constant(self.operations)
        flow = (
            FlowBuilder(formals=("ip", "op"))
            .state(
                "transfer",
                requests=[
                    ServiceRequest(
                        self.CPU_SLOT,
                        actuals={CpuResource.PARAM: ops},
                        internal_failure=_internal(self.software_failure_rate, ops),
                        label="control transfer",
                    )
                ],
            )
            .sequence("transfer")
            .build()
        )
        return CompositeConnector(
            self.name,
            _transport_interface(f"local procedure call connector {self.name!r}"),
            flow,
        )


class RemoteCallConnector:
    """RPC connector: marshal/transmit/unmarshal (Figure 2, right).

    Requires three service slots:

    - ``client_cpu`` — processing service of the caller's node (marshals
      ``ip``, unmarshals ``op``);
    - ``net`` — communication service between the nodes;
    - ``server_cpu`` — processing service of the callee's node (unmarshals
      ``ip``, marshals ``op``).

    Args:
        name: connector/service name.
        marshal_cost: the constant ``c`` — processing operations per
            transported size unit for (un)marshaling.
        transmit_cost: the constant ``m`` — bytes on the wire per
            transported size unit.
        software_failure_rate: per-operation failure probability of the
            connector stubs (paper example: 0).
    """

    CLIENT_CPU_SLOT = "client_cpu"
    NET_SLOT = "net"
    SERVER_CPU_SLOT = "server_cpu"

    def __init__(
        self,
        name: str,
        marshal_cost: float,
        transmit_cost: float,
        software_failure_rate: float = 0.0,
    ):
        if marshal_cost < 0 or transmit_cost < 0:
            raise ModelError("RPC cost constants must be non-negative")
        if not 0.0 <= software_failure_rate <= 1.0:
            raise ModelError("software_failure_rate must be a probability")
        self.name = name
        self.marshal_cost = float(marshal_cost)
        self.transmit_cost = float(transmit_cost)
        self.software_failure_rate = float(software_failure_rate)

    def _transfer_state_requests(
        self, size: Parameter, origin_slot: str, destination_slot: str
    ) -> list[ServiceRequest]:
        """The three AND-completed requests of one transfer stage."""
        c, m = Constant(self.marshal_cost), Constant(self.transmit_cost)
        phi = self.software_failure_rate
        return [
            ServiceRequest(
                origin_slot,
                actuals={CpuResource.PARAM: c * size},
                internal_failure=_internal(phi, c * size),
                label=f"marshal {size}",
            ),
            ServiceRequest(
                self.NET_SLOT,
                actuals={NetworkResource.PARAM: m * size},
                internal_failure=_internal(phi, Constant(0.0)),
                label=f"transmit {size}",
            ),
            ServiceRequest(
                destination_slot,
                actuals={CpuResource.PARAM: c * size},
                internal_failure=_internal(phi, c * size),
                label=f"unmarshal {size}",
            ),
        ]

    def service(self) -> CompositeConnector:
        """The connection service with the Figure 2 (right) flow."""
        ip, op = Parameter("ip"), Parameter("op")
        flow = (
            FlowBuilder(formals=("ip", "op"))
            .state(
                "transfer_ip",
                requests=self._transfer_state_requests(
                    ip, self.CLIENT_CPU_SLOT, self.SERVER_CPU_SLOT
                ),
            )
            .state(
                "transfer_op",
                requests=self._transfer_state_requests(
                    op, self.SERVER_CPU_SLOT, self.CLIENT_CPU_SLOT
                ),
            )
            .sequence("transfer_ip", "transfer_op")
            .build()
        )
        return CompositeConnector(
            self.name,
            _transport_interface(f"remote procedure call connector {self.name!r}"),
            flow,
        )


class CustomConnector:
    """Wrap an arbitrary flow as a connector service.

    Args:
        name: connector/service name.
        flow: the interaction flow; its formal parameters become the
            connector's transport parameters.
        attributes: interface attributes referenced by the flow expressions.
        description: documentation string.
    """

    def __init__(
        self,
        name: str,
        flow: ServiceFlow,
        attributes: dict[str, float] | None = None,
        description: str = "",
    ):
        self.name = name
        self.flow = flow
        self.attributes = dict(attributes or {})
        self.description = description or f"custom connector {name!r}"

    def service(self) -> CompositeConnector:
        """The connection service over the supplied flow."""
        interface = AnalyticInterface(
            formal_parameters=tuple(
                FormalParameter(p, domain=IntegerDomain(low=0))
                for p in self.flow.formal_parameters
            ),
            attributes=self.attributes,
            description=self.description,
        )
        return CompositeConnector(self.name, interface, self.flow)
