"""Shared LRU cache machinery with hit/miss statistics.

Two layers of the library memoize expensive compilation artifacts under
structural keys: the engine's :class:`~repro.engine.cache.PlanCache`
(closed-form derivations keyed by assembly fingerprint) and the symbolic
compiler's :class:`~repro.symbolic.compiler.KernelCache` (numpy kernels
keyed by expression).  Both need the same substrate — a bounded, thread-safe
mapping with LRU eviction and observable counters — so it lives here, below
both of them in the layering (this module imports nothing but
:mod:`repro.errors`).

Design points shared by every user:

- **lookups never block on computation**: :meth:`LRUCache.get_or_create`
  runs the factory *outside* the lock, so two threads missing on different
  keys compute concurrently; two threads racing on the *same* key may both
  compute and the first store wins — duplicated work, never wrong answers
  (cached values for equal keys must be interchangeable);
- **statistics are monotone counters** (:class:`CacheStats`): hits, misses,
  evictions, and the derived hit rate, snapshot-able for JSON reporters;
- ``clear()`` drops entries but keeps the statistics, so warm-up accounting
  survives test-isolation resets.

**Observability.**  A cache constructed with a ``name`` additionally mirrors
every hit/miss/eviction onto the process metrics registry as
``cache.<name>.hits`` / ``.misses`` / ``.evictions``
(:mod:`repro.observability`; free while collection is disabled).  The
per-instance :class:`CacheStats` attributes remain the compatibility
surface older tests and reporters read — the registry counters are the
aggregated, cross-process-mergeable view.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass, field
from typing import Any

from repro import observability as obs
from repro.errors import EvaluationError

__all__ = ["CacheStats", "LRUCache"]


@dataclass
class CacheStats:
    """Observable counters of one cache.

    Attributes:
        hits: lookups served from the cache (no computation ran).
        misses: lookups that computed a fresh value.
        evictions: entries dropped by the LRU bound.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy (for JSON reporters and logs)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """A bounded, thread-safe mapping with LRU eviction and statistics.

    Args:
        max_size: maximum number of cached entries; the least recently
            used entry is evicted past the bound.  ``None`` means
            unbounded.
        name: optional metric name; when set, hits/misses/evictions are
            mirrored onto the metrics registry as ``cache.<name>.*``.
    """

    def __init__(self, max_size: int | None = 128, name: str | None = None):
        if max_size is not None and max_size < 1:
            raise EvaluationError(
                f"cache max_size must be positive, got {max_size!r}"
            )
        self.max_size = max_size
        self.name = name
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._metric_prefix = f"cache.{name}" if name else None

    def _emit(self, event: str, amount: int = 1) -> None:
        if self._metric_prefix is not None:
            obs.count(f"{self._metric_prefix}.{event}", amount)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        """The cached value for ``key`` or ``None``, without touching the
        hit/miss statistics; use :meth:`get_or_create` for the accounted
        path."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """The value for ``key``, calling ``factory`` on miss.

        The factory runs outside the cache lock: concurrent misses on
        different keys compute in parallel, and a race on the same key
        performs duplicate work with the first store winning.
        """
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                self._emit("hits")
                return value
            self.stats.misses += 1
        self._emit("misses")
        value = factory()
        self.put(key, value)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store a value under its key, evicting past the bound."""
        evicted = 0
        with self._lock:
            if key not in self._entries and self.max_size is not None:
                while len(self._entries) >= self.max_size:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
                    evicted += 1
            self._entries[key] = value
            self._entries.move_to_end(key)
        if evicted:
            self._emit("evictions", evicted)

    def clear(self) -> None:
        """Drop every cached entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()
