"""Uncertainty propagation from published attributes to predictions.

The paper's prediction consumes *published* attribute values (failure
rates, speeds, bandwidths) at face value; its section 6 notes that
monitoring must check whether reality matches.  Between blind trust and
full monitoring sits a cheap question this module answers: **how sensitive
is the predicted unreliability to estimation error in the published
numbers?**

Two standard propagation routes, both built on the symbolic closed form
with attributes left free (so no re-evaluation of the assembly is needed
per sample):

- :func:`delta_method` — first-order propagation: with independent
  attribute uncertainties ``sigma_a``, ``Var[Pfail] ~= sum_a
  (dPfail/da * sigma_a)^2`` using the exact symbolic derivatives;
- :func:`sample_uncertainty` — Monte Carlo over attribute priors: each
  uncertain attribute is drawn from an independent **lognormal** centered
  on its published value (attributes are positive scale parameters;
  lognormal keeps samples positive), and the closed form is evaluated
  *vectorized* over all samples at once.

Both report on ``Pfail`` at a fixed actual-parameter point.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.symbolic_evaluator import (
    SymbolicEvaluator,
    attribute_environment,
)
from repro.errors import EvaluationError
from repro.model.assembly import Assembly
from repro.symbolic.compiler import compile_expression, gradient_kernels

__all__ = ["UncertaintyEstimate", "delta_method", "sample_uncertainty"]


@dataclass(frozen=True)
class UncertaintyEstimate:
    """The propagated uncertainty of a ``Pfail`` prediction.

    Attributes:
        pfail: the point prediction at the published attribute values.
        std: the propagated standard deviation of ``Pfail``.
        percentiles: optional sampled percentiles (Monte Carlo route only),
            mapping e.g. 5.0 -> the 5th-percentile Pfail.
        contributions: per-attribute share of the variance (delta-method
            route only), mapping ``service::attribute`` to its fraction of
            the total variance — the "who do we need better data on"
            ranking.
    """

    pfail: float
    std: float
    percentiles: Mapping[float, float] | None = None
    contributions: Mapping[str, float] | None = None

    def interval(self, z: float = 1.96) -> tuple[float, float]:
        """A symmetric z-sigma interval clipped to [0, 1]."""
        return (
            max(0.0, self.pfail - z * self.std),
            min(1.0, self.pfail + z * self.std),
        )


def _resolve_uncertainties(
    assembly: Assembly,
    relative_std: float | Mapping[str, float],
    base: Mapping[str, float],
) -> dict[str, float]:
    """Attribute symbol -> absolute standard deviation."""
    if isinstance(relative_std, Mapping):
        unknown = set(relative_std) - set(base)
        if unknown:
            raise EvaluationError(
                f"uncertainties given for unknown attributes {sorted(unknown)}"
            )
        return {
            name: abs(base[name]) * float(rel)
            for name, rel in relative_std.items()
        }
    rel = float(relative_std)
    if rel < 0:
        raise EvaluationError("relative_std must be non-negative")
    return {name: abs(value) * rel for name, value in base.items()}


def delta_method(
    assembly: Assembly,
    service: str,
    actuals: Mapping[str, float],
    relative_std: float | Mapping[str, float] = 0.1,
    compile: bool = True,
) -> UncertaintyEstimate:
    """First-order uncertainty propagation via symbolic derivatives.

    Args:
        assembly: the assembly under analysis.
        service: the evaluated service.
        actuals: the fixed actual parameters.
        relative_std: either one relative standard deviation applied to
            every published attribute, or a mapping from
            ``service::attribute`` symbols to per-attribute relative
            standard deviations (attributes not listed are treated as
            exact).
        compile: evaluate the closed form and its derivatives through
            compiled kernels (default; derivative expressions are
            differentiated and compiled once per attribute, ever);
            ``False`` re-walks the trees.
    """
    evaluator = SymbolicEvaluator(assembly, symbolic_attributes=True)
    expression = evaluator.pfail_expression(service)
    base = dict(attribute_environment(assembly))
    env = {**base, **{k: float(v) for k, v in dict(actuals).items()}}
    target = compile_expression(expression) if compile else expression
    pfail = float(target.evaluate(env))

    sigmas = _resolve_uncertainties(assembly, relative_std, base)
    variance = 0.0
    pieces: dict[str, float] = {}
    free = expression.free_parameters()
    symbols = [
        s for s, sigma in sigmas.items() if sigma != 0.0 and s in free
    ]
    slopes = (
        gradient_kernels(expression, symbols)
        if compile
        else {s: expression.differentiate(s) for s in symbols}
    )
    for symbol in symbols:
        sigma = sigmas[symbol]
        slope = float(slopes[symbol].evaluate(env))
        piece = (slope * sigma) ** 2
        variance += piece
        pieces[symbol] = piece
    contributions = (
        {name: piece / variance for name, piece in pieces.items()}
        if variance > 0.0
        else {name: 0.0 for name in pieces}
    )
    return UncertaintyEstimate(
        pfail=pfail, std=float(np.sqrt(variance)), contributions=contributions
    )


def sample_uncertainty(
    assembly: Assembly,
    service: str,
    actuals: Mapping[str, float],
    relative_std: float | Mapping[str, float] = 0.1,
    samples: int = 10_000,
    seed: int | None = None,
    percentiles: tuple[float, ...] = (5.0, 25.0, 50.0, 75.0, 95.0),
    compile: bool = True,
) -> UncertaintyEstimate:
    """Monte Carlo propagation: lognormal attribute priors, one vectorized
    closed-form evaluation.

    The lognormal for an attribute with published value ``v`` and relative
    standard deviation ``r`` has median ``v`` and log-space sigma
    ``sqrt(log(1 + r^2))`` — for small ``r`` this matches the delta
    method to first order (property-tested); ``compile=False`` swaps
    the compiled kernel for the recursive tree walk.
    """
    if samples < 2:
        raise EvaluationError("sample_uncertainty needs at least 2 samples")
    evaluator = SymbolicEvaluator(assembly, symbolic_attributes=True)
    expression = evaluator.pfail_expression(service)
    base = dict(attribute_environment(assembly))
    sigmas = _resolve_uncertainties(assembly, relative_std, base)

    rng = np.random.default_rng(seed)
    env: dict[str, object] = {k: float(v) for k, v in dict(actuals).items()}
    for name, value in base.items():
        sigma = sigmas.get(name, 0.0)
        if sigma == 0.0 or value == 0.0:
            env[name] = value
            continue
        rel = sigma / abs(value)
        log_sigma = float(np.sqrt(np.log1p(rel * rel)))
        env[name] = value * rng.lognormal(mean=0.0, sigma=log_sigma, size=samples)

    target = compile_expression(expression) if compile else expression
    draws = np.clip(
        np.broadcast_to(
            np.asarray(target.evaluate(env), dtype=float), (samples,)
        ),
        0.0,
        1.0,
    )
    point_env = {**base, **{k: float(v) for k, v in dict(actuals).items()}}
    return UncertaintyEstimate(
        pfail=float(target.evaluate(point_env)),
        std=float(draws.std(ddof=1)),
        percentiles={
            float(p): float(np.percentile(draws, p)) for p in percentiles
        },
    )
