"""Analysis tooling: sweeps, architecture comparison, crossover detection,
reliability-driven service selection, and text reporting."""

from repro.analysis.comparison import AssemblyComparison, compare_assemblies
from repro.analysis.crossover import (
    Crossover,
    bisect_crossover,
    find_crossovers,
    pfail_difference,
)
from repro.analysis.report import (
    format_comparison,
    format_sweep,
    format_table,
    sparkline,
)
from repro.analysis.selection import CandidateEvaluation, select_assembly
from repro.analysis.sweep import SweepResult, sweep_attribute, sweep_parameter
from repro.analysis.uncertainty import (
    UncertaintyEstimate,
    delta_method,
    sample_uncertainty,
)
from repro.analysis.usage import InvocationProfile, expected_invocations

__all__ = [
    "AssemblyComparison",
    "CandidateEvaluation",
    "Crossover",
    "InvocationProfile",
    "SweepResult",
    "UncertaintyEstimate",
    "bisect_crossover",
    "compare_assemblies",
    "delta_method",
    "expected_invocations",
    "find_crossovers",
    "format_comparison",
    "format_sweep",
    "format_table",
    "pfail_difference",
    "sample_uncertainty",
    "select_assembly",
    "sparkline",
    "sweep_attribute",
    "sweep_parameter",
]
