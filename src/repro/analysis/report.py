"""Plain-text rendering of analysis results.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output consistent: fixed-width tables, reliability series
in the Figure 6 layout, and an ASCII sparkline for quick shape checks in
terminal logs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.analysis.comparison import AssemblyComparison
from repro.analysis.sweep import SweepResult

__all__ = ["format_table", "format_sweep", "format_comparison", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.6g}",
) -> str:
    """A fixed-width text table."""
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    lines = [fmt([str(h) for h in headers]), fmt(["-" * w for w in widths])]
    lines += [fmt(r) for r in rendered]
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode sparkline of a series (useful in bench logs)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    low, high = float(arr.min()), float(arr.max())
    if high == low:
        return _BLOCKS[0] * arr.size
    scaled = (arr - low) / (high - low) * (len(_BLOCKS) - 1)
    return "".join(_BLOCKS[int(round(s))] for s in scaled)


def format_sweep(sweep: SweepResult, max_rows: int = 20) -> str:
    """Render one reliability series with an evenly thinned row sample."""
    rows = sweep.rows()
    if len(rows) > max_rows:
        indexes = np.linspace(0, len(rows) - 1, max_rows).astype(int)
        rows = [rows[i] for i in indexes]
    header = (
        f"{sweep.assembly} / {sweep.service}: reliability vs {sweep.parameter} "
        f"(fixed: {dict(sweep.fixed)})\n"
        f"shape: {sparkline(sweep.reliability)}"
    )
    table = format_table(
        [sweep.parameter, "Pfail", "reliability"],
        [(v, p, r) for v, p, r in rows],
        float_format="{:.6e}",
    )
    return f"{header}\n{table}"


def format_comparison(comparison: AssemblyComparison, max_rows: int = 16) -> str:
    """Render a two-assembly comparison with winners and crossovers."""
    rows = comparison.rows()
    if len(rows) > max_rows:
        indexes = np.linspace(0, len(rows) - 1, max_rows).astype(int)
        rows = [rows[i] for i in indexes]
    name_a = comparison.sweep_a.assembly
    name_b = comparison.sweep_b.assembly
    lines = [
        f"{name_a} (A) vs {name_b} (B) on {comparison.sweep_a.service} "
        f"over {comparison.sweep_a.parameter}",
        format_table(
            [comparison.sweep_a.parameter, f"R({name_a})", f"R({name_b})", "winner"],
            rows,
            float_format="{:.8f}",
        ),
    ]
    if comparison.crossovers:
        points = ", ".join(f"{c.location:.4g}" for c in comparison.crossovers)
        lines.append(f"ranking flips at {comparison.sweep_a.parameter} = {points}")
    else:
        dominant = comparison.dominant()
        lines.append(f"no crossover on the grid; {dominant} dominates" if dominant
                     else "no crossover detected")
    return "\n".join(lines)
