"""Head-to-head comparison of architectural alternatives.

The paper's core use case (section 4, Figure 6): evaluate the *same* offered
service under two different assemblies — same components, different wiring
and connectors — and determine which assembly is more reliable, where the
ranking flips, and by how much.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.crossover import Crossover, find_crossovers, pfail_difference
from repro.analysis.sweep import SweepResult, sweep_parameter
from repro.errors import EvaluationError
from repro.model.assembly import Assembly

__all__ = ["AssemblyComparison", "compare_assemblies"]


@dataclass(frozen=True)
class AssemblyComparison:
    """The outcome of comparing two assemblies over a parameter sweep.

    Attributes:
        sweep_a, sweep_b: the two reliability series (same grid).
        crossovers: parameter values where the ranking flips.
    """

    sweep_a: SweepResult
    sweep_b: SweepResult
    crossovers: tuple[Crossover, ...]

    @property
    def grid(self) -> np.ndarray:
        """The common parameter grid."""
        return self.sweep_a.values

    def winner_at(self, value: float) -> str:
        """Name of the more reliable assembly at a grid point (ties go to
        the first assembly)."""
        pfail_a = self.sweep_a.at(value)
        pfail_b = self.sweep_b.at(value)
        return self.sweep_a.assembly if pfail_a <= pfail_b else self.sweep_b.assembly

    def dominant(self) -> str | None:
        """The assembly that wins on the *entire* grid, or ``None`` when the
        ranking flips somewhere."""
        diff = self.sweep_a.pfail - self.sweep_b.pfail
        if np.all(diff <= 0.0):
            return self.sweep_a.assembly
        if np.all(diff >= 0.0):
            return self.sweep_b.assembly
        return None

    def max_advantage(self) -> tuple[str, float, float]:
        """``(assembly, parameter value, reliability gain)`` of the largest
        pointwise reliability advantage either way."""
        diff = self.sweep_b.pfail - self.sweep_a.pfail  # >0 where A wins
        index = int(np.argmax(np.abs(diff)))
        winner = self.sweep_a.assembly if diff[index] > 0 else self.sweep_b.assembly
        return winner, float(self.grid[index]), float(abs(diff[index]))

    def rows(self) -> list[tuple[float, float, float, str]]:
        """``(value, reliability_a, reliability_b, winner)`` table rows."""
        out = []
        for v, pa, pb in zip(self.grid, self.sweep_a.pfail, self.sweep_b.pfail):
            winner = self.sweep_a.assembly if pa <= pb else self.sweep_b.assembly
            out.append((float(v), float(1 - pa), float(1 - pb), winner))
        return out


def compare_assemblies(
    assembly_a: Assembly,
    assembly_b: Assembly,
    service: str,
    parameter: str,
    values: Sequence[float] | np.ndarray,
    fixed: Mapping[str, float] | None = None,
    method: str = "symbolic",
    refine_crossovers: bool = True,
    solver: str = "auto",
    incremental: bool = True,
) -> AssemblyComparison:
    """Sweep ``service`` in both assemblies and locate ranking flips.

    Both assemblies must offer a service named ``service`` with the swept
    formal parameter; crossover refinement bisects the *numeric* evaluators
    (domain checks off) between bracketing grid points.  The bisection
    cascade re-evaluates the same two chains at nearby points, so with
    ``incremental`` (the default) refinement steps after the first are
    served by low-rank updates of the cached base factorizations
    (:mod:`repro.markov.updates`); ``solver`` picks their linear-solver
    backend.
    """
    if assembly_a.name == assembly_b.name:
        raise EvaluationError(
            "assemblies under comparison need distinct names "
            f"(both are {assembly_a.name!r})"
        )
    sweep_a = sweep_parameter(assembly_a, service, parameter, values, fixed, method)
    sweep_b = sweep_parameter(assembly_b, service, parameter, values, fixed, method)

    refine = None
    if refine_crossovers:
        refine = pfail_difference(
            assembly_a, assembly_b, service, parameter, fixed,
            solver=solver, incremental=incremental,
        )

    crossovers = find_crossovers(
        sweep_a.values, sweep_a.pfail, sweep_b.pfail, refine=refine
    )
    return AssemblyComparison(sweep_a, sweep_b, tuple(crossovers))
