"""Expected-invocation analysis of an assembly.

The usage-profile flows define not only *whether* a service completes but
*how often* each provider is invoked along the way.  For capacity planning
and for interpreting reliability predictions ("sort1 dominates because it
is both weak and always on the path"), this module computes, for a
composite service at concrete actuals, the **expected number of
invocations of every service in the assembly** during one top-level
invocation, under the same failure-aware semantics as the evaluator:

- the expected visits of each flow state come from the fundamental matrix
  of the *failure-augmented* chain (states after likely-failing ones are
  reached less often — matching the fail-stop semantics);
- each visit of a state issues all of its requests once (the completion
  model governs transition success, not request issue);
- requests recurse: invoking a composite provider triggers the expected
  invocations of *its* callees, scaled by the caller's expectation, and
  connectors count as invocations too (one per transported request).

The result is an :class:`InvocationProfile` mapping service names to
expected invocation counts.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.evaluator import ReliabilityEvaluator
from repro.core.failure_structure import augment_with_failures
from repro.core.state_failure import state_failure_probability
from repro.errors import CyclicAssemblyError
from repro.markov import AbsorbingChainAnalysis
from repro.model.assembly import Assembly
from repro.model.flow import START
from repro.model.service import CompositeService, Service

__all__ = ["InvocationProfile", "expected_invocations"]


@dataclass(frozen=True)
class InvocationProfile:
    """Expected invocation counts for one top-level service invocation.

    Attributes:
        service: the invoked top-level service.
        actuals: the actual parameters of the invocation.
        counts: service name -> expected number of invocations (the
            top-level service itself counts once).
    """

    service: str
    actuals: Mapping[str, float]
    counts: Mapping[str, float] = field(default_factory=dict)

    def most_invoked(self, top: int = 5) -> list[tuple[str, float]]:
        """The ``top`` services by expected invocation count (excluding the
        top-level service itself)."""
        ranked = sorted(
            ((name, count) for name, count in self.counts.items()
             if name != self.service),
            key=lambda item: item[1],
            reverse=True,
        )
        return ranked[:top]

    def __str__(self) -> str:
        lines = [
            f"expected invocations per call of {self.service!r} "
            f"with {dict(self.actuals)}:"
        ]
        for name, count in sorted(
            self.counts.items(), key=lambda item: item[1], reverse=True
        ):
            lines.append(f"  {name:24s} {count:.6f}")
        return "\n".join(lines)


def expected_invocations(
    assembly: Assembly, service: str, **actuals: float
) -> InvocationProfile:
    """Compute the expected-invocation profile of one service invocation.

    Raises :class:`CyclicAssemblyError` for recursive assemblies (the
    expectation would need the fixed-point machinery; invocation counts of
    a terminating recursion are finite but not computed here).
    """
    cycle = assembly.find_cycle()
    if cycle is not None:
        raise CyclicAssemblyError(cycle)
    evaluator = ReliabilityEvaluator(assembly, check_domains=False)
    counts: dict[str, float] = {}
    top = assembly.service(service)
    _accumulate(
        assembly, evaluator, top,
        {name: float(value) for name, value in actuals.items()},
        weight=1.0, counts=counts,
    )
    return InvocationProfile(service, dict(actuals), counts)


def _accumulate(
    assembly: Assembly,
    evaluator: ReliabilityEvaluator,
    service: Service,
    actuals: dict[str, float],
    weight: float,
    counts: dict[str, float],
) -> None:
    counts[service.name] = counts.get(service.name, 0.0) + weight
    if not isinstance(service, CompositeService):
        return

    env = service.evaluation_environment(actuals, check=False)
    # failure-aware expected visits of each state
    failures: dict[str, float] = {}
    per_state: dict[str, tuple[list[float], list[float]]] = {}
    for state in service.flow.states:
        internal, external, masking = evaluator._state_probabilities(
            service, state, env
        )
        per_state[state.name] = (internal, external)
        failures[state.name] = state_failure_probability(
            state.completion, state.shared, internal, external,
            masking, groups=state.sharing_groups,
        )
    chain = augment_with_failures(service.flow, env, failures)
    analysis = AbsorbingChainAnalysis(chain)

    for state in service.flow.states:
        visits = analysis.expected_visits(START, state.name)
        if visits <= 0.0:
            continue
        for request in state.requests:
            resolved = assembly.resolve_request(service.name, request)
            callee_actuals = {
                name: float(request.actuals[name].evaluate(env))
                for name in resolved.provider.formal_parameters
            }
            _accumulate(
                assembly, evaluator, resolved.provider, callee_actuals,
                weight * visits, counts,
            )
            if resolved.connector is not None:
                connector_actuals = {
                    name: float(resolved.connector_actuals[name].evaluate(env))
                    for name in resolved.connector.formal_parameters
                }
                _accumulate(
                    assembly, evaluator, resolved.connector, connector_actuals,
                    weight * visits, counts,
                )
