"""Reliability-driven service selection — the SOC loop of section 1.

"The prediction of such characteristics is important to drive the selection
of the services to be assembled."  This module closes that loop: given a
set of discovered candidates for a slot (from a
:class:`~repro.model.registry.ServiceRegistry` query or any other source)
and a caller-supplied *assembly builder* that wires one candidate into a
complete architecture, it predicts the reliability of every resulting
assembly and ranks the candidates.

The builder-callback design keeps selection honest: picking the remote sort
service means also adding the RPC connector and network it needs — the
whole point of Figure 6 is that the candidate's own published reliability
is *not* the ranking criterion; the assembled reliability is.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass

from repro.core.evaluator import ReliabilityEvaluator
from repro.errors import EvaluationError, ReproError
from repro.model.assembly import Assembly

__all__ = ["CandidateEvaluation", "select_assembly"]


@dataclass(frozen=True)
class CandidateEvaluation:
    """One candidate's predicted outcome.

    Attributes:
        candidate: the candidate's identifying label.
        assembly: the full assembly built around it (``None`` on error).
        pfail: the predicted unreliability of the target service
            (``None`` when evaluation failed).
        error: the failure message when the candidate could not be
            evaluated (malformed assembly, cyclic wiring, ...).
    """

    candidate: str
    assembly: Assembly | None
    pfail: float | None
    error: str | None = None

    @property
    def reliability(self) -> float | None:
        """``1 - pfail``, or ``None`` when evaluation failed."""
        return None if self.pfail is None else 1.0 - self.pfail

    @property
    def ok(self) -> bool:
        """True when the candidate was evaluated successfully."""
        return self.pfail is not None


def select_assembly(
    candidates: Iterable[object],
    build: Callable[[object], Assembly],
    service: str,
    actuals: Mapping[str, float],
    label: Callable[[object], str] = str,
    solver: str = "auto",
    incremental: bool = True,
) -> list[CandidateEvaluation]:
    """Evaluate every candidate and rank by predicted reliability.

    Args:
        candidates: the discovered alternatives (any objects).
        build: maps a candidate to a complete :class:`Assembly`.
        service: the offered service whose reliability is the criterion.
        actuals: the representative actual parameters to predict at (the
            expected usage profile point).
        label: how to name candidates in the results.
        solver: linear-solver backend for the absorbing solves.
        incremental: serve structurally identical candidates (same flows,
            different published attributes — the common broker shape)
            through low-rank updates of the cached base factorization
            (:mod:`repro.markov.updates`) instead of re-factoring each
            one; enabled by default.

    Returns:
        Evaluations sorted best-first (successful ones ranked by ascending
        ``pfail``, failed ones last).  Candidates whose assembly fails to
        build or evaluate are *kept* — with the error message — because in
        an automated SOC broker a silently dropped candidate is a bug
        magnet.
    """
    results: list[CandidateEvaluation] = []
    for candidate in candidates:
        name = label(candidate)
        try:
            assembly = build(candidate)
            evaluator = ReliabilityEvaluator(
                assembly, solver=solver, incremental=incremental
            )
            pfail = evaluator.pfail(service, **dict(actuals))
        except ReproError as exc:
            results.append(CandidateEvaluation(name, None, None, error=str(exc)))
            continue
        results.append(CandidateEvaluation(name, assembly, pfail))
    if not results:
        raise EvaluationError("no candidates supplied to select_assembly")
    results.sort(key=lambda r: (not r.ok, r.pfail if r.ok else 0.0))
    return results
