"""Crossover detection between reliability curves.

The question Figure 6 answers is *where the local and remote curves cross*:
for which workloads (and attribute settings) does the architecture ranking
flip.  Given two sampled curves on a common grid, :func:`find_crossovers`
locates the sign changes of their difference and refines each by bisection
on caller-supplied continuous functions when available.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import EvaluationError

__all__ = ["Crossover", "find_crossovers", "bisect_crossover", "pfail_difference"]


@dataclass(frozen=True)
class Crossover:
    """One crossing of two curves.

    Attributes:
        location: the (interpolated or refined) parameter value of the
            crossing.
        sign_before: +1 when curve A is above B just before the crossing,
            -1 when below.
    """

    location: float
    sign_before: int


def find_crossovers(
    grid: Sequence[float] | np.ndarray,
    curve_a: Sequence[float] | np.ndarray,
    curve_b: Sequence[float] | np.ndarray,
    refine: Callable[[float], float] | None = None,
    tolerance: float = 1e-9,
) -> list[Crossover]:
    """Crossings of two curves sampled on a common ascending grid.

    Args:
        grid: the common parameter grid (strictly ascending).
        curve_a, curve_b: the sampled values.
        refine: optional continuous function of the parameter returning
            ``a(x) - b(x)``; when given, each bracketing interval is
            bisected to ``tolerance``; otherwise crossings are linearly
            interpolated from the samples.
        tolerance: bisection convergence threshold.

    Exact ties on grid points are treated as crossings only when the sign
    actually flips across them.
    """
    x = np.asarray(grid, dtype=float)
    a = np.asarray(curve_a, dtype=float)
    b = np.asarray(curve_b, dtype=float)
    if not (x.shape == a.shape == b.shape) or x.ndim != 1:
        raise EvaluationError("grid and curves must be 1-D arrays of equal length")
    if x.size < 2:
        return []
    if np.any(np.diff(x) <= 0):
        raise EvaluationError("grid must be strictly ascending")

    delta = a - b
    crossings: list[Crossover] = []
    nonzero = [i for i in range(len(x)) if delta[i] != 0.0]
    for left, right in zip(nonzero, nonzero[1:]):
        d0, d1 = delta[left], delta[right]
        if d0 * d1 >= 0.0:
            continue
        if right == left + 1:
            if refine is not None:
                location = bisect_crossover(
                    refine, float(x[left]), float(x[right]), tolerance
                )
            else:
                location = float(
                    x[left] - d0 * (x[right] - x[left]) / (d1 - d0)
                )
        else:
            # the curves tie exactly on the grid points strictly between
            # left and right; report the center of the tie run
            location = float(0.5 * (x[left + 1] + x[right - 1]))
        crossings.append(Crossover(location, sign_before=1 if d0 > 0 else -1))
    return crossings


def pfail_difference(
    assembly_a,
    assembly_b,
    service: str,
    parameter: str,
    fixed: Mapping[str, float] | None = None,
    solver: str = "auto",
    incremental: bool = True,
) -> Callable[[float], float]:
    """Continuous ``pfail_a(x) - pfail_b(x)`` suitable as the ``refine``
    argument of :func:`find_crossovers`.

    Builds one numeric evaluator per assembly (domain checks off — the
    bisection probes non-grid points) and returns the difference of their
    predictions as a function of the swept ``parameter``.  Bisection
    evaluates the *same* two models at a cascade of nearby points, which
    is exactly the shape the low-rank update path accelerates, so
    ``incremental`` defaults to ``True``: each step after the first is
    served by a Sherman-Morrison-Woodbury update of the cached base
    factorization (:mod:`repro.markov.updates`) instead of a fresh one.
    """
    from repro.core.evaluator import ReliabilityEvaluator

    eval_a = ReliabilityEvaluator(
        assembly_a, check_domains=False, solver=solver, incremental=incremental
    )
    eval_b = ReliabilityEvaluator(
        assembly_b, check_domains=False, solver=solver, incremental=incremental
    )
    fixed_map = dict(fixed or {})

    def difference(x: float) -> float:
        point = {**fixed_map, parameter: x}
        return eval_a.pfail(service, **point) - eval_b.pfail(service, **point)

    return difference


def bisect_crossover(
    difference: Callable[[float], float],
    low: float,
    high: float,
    tolerance: float = 1e-9,
    max_iterations: int = 200,
) -> float:
    """Bisection root of ``difference`` on a bracketing interval."""
    f_low = difference(low)
    f_high = difference(high)
    if f_low == 0.0:
        return low
    if f_high == 0.0:
        return high
    if f_low * f_high > 0.0:
        raise EvaluationError(
            f"interval [{low}, {high}] does not bracket a crossover "
            f"(f = {f_low}, {f_high})"
        )
    for _ in range(max_iterations):
        mid = 0.5 * (low + high)
        f_mid = difference(mid)
        if f_mid == 0.0 or (high - low) < tolerance:
            return mid
        if f_low * f_mid < 0.0:
            high = mid
        else:
            low, f_low = mid, f_mid
    return 0.5 * (low + high)
