"""Parameter sweeps of predicted reliability.

The Figure 6 experiment is a sweep: ``Pfail(search, ...)`` as a function of
the ``list`` formal parameter, for a grid of attribute settings.  This
module runs such sweeps through either evaluation back-end:

- ``method="symbolic"`` derives the closed form once and evaluates it
  vectorized over the whole value array (fast; the default);
- ``method="numeric"`` runs the recursive evaluator per point (slower;
  useful as a cross-check and for assemblies whose flows the symbolic
  back-end would blow up on).

Both back-ends agree to ~1e-12 — asserted by the integration tests.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluator import ReliabilityEvaluator
from repro.core.symbolic_evaluator import SymbolicEvaluator
from repro.errors import EvaluationError
from repro.model.assembly import Assembly

__all__ = ["SweepResult", "sweep_parameter", "sweep_attribute"]


@dataclass(frozen=True)
class SweepResult:
    """One reliability-vs-parameter series.

    Attributes:
        assembly: name of the swept assembly.
        service: evaluated service.
        parameter: swept formal parameter.
        values: the parameter values (ascending numpy array).
        pfail: ``Pfail`` at each value.
        fixed: the non-swept actuals used.
    """

    assembly: str
    service: str
    parameter: str
    values: np.ndarray
    pfail: np.ndarray
    fixed: Mapping[str, float] = field(default_factory=dict)

    @property
    def reliability(self) -> np.ndarray:
        """``1 - Pfail`` at each value."""
        return 1.0 - self.pfail

    def at(self, value: float) -> float:
        """``Pfail`` at one swept value (must be a grid point)."""
        index = np.where(np.isclose(self.values, value))[0]
        if index.size == 0:
            raise EvaluationError(f"{value!r} is not a swept grid point")
        return float(self.pfail[index[0]])

    def rows(self) -> list[tuple[float, float, float]]:
        """``(value, pfail, reliability)`` rows for tabular output."""
        return [
            (float(v), float(p), float(1.0 - p))
            for v, p in zip(self.values, self.pfail)
        ]


def sweep_parameter(
    assembly: Assembly,
    service: str,
    parameter: str,
    values: Sequence[float] | np.ndarray,
    fixed: Mapping[str, float] | None = None,
    method: str = "symbolic",
) -> SweepResult:
    """Sweep one formal parameter of ``service`` across ``values``.

    Args:
        assembly: the assembly under analysis.
        service: name of the composite (or simple) service to evaluate.
        parameter: the formal parameter to sweep.
        values: the grid of values.
        fixed: values for the remaining formal parameters.
        method: ``"symbolic"`` (vectorized closed form) or ``"numeric"``
            (per-point recursive evaluation).
    """
    svc = assembly.service(service)
    fixed = dict(fixed or {})
    if parameter not in svc.formal_parameters:
        raise EvaluationError(
            f"{parameter!r} is not a formal parameter of {service!r} "
            f"(has {svc.formal_parameters})"
        )
    grid = np.asarray(values, dtype=float)
    if grid.ndim != 1 or grid.size == 0:
        raise EvaluationError("sweep values must be a non-empty 1-D sequence")

    if method == "symbolic":
        expression = SymbolicEvaluator(assembly).pfail_expression(service)
        env = {**fixed, parameter: grid}
        pfail = np.broadcast_to(
            np.asarray(expression.evaluate(env), dtype=float), grid.shape
        ).copy()
    elif method == "numeric":
        evaluator = ReliabilityEvaluator(assembly, check_domains=False)
        pfail = np.array(
            [
                evaluator.pfail(service, **{**fixed, parameter: float(v)})
                for v in grid
            ]
        )
    else:
        raise EvaluationError(f"unknown sweep method {method!r}")

    return SweepResult(assembly.name, service, parameter, grid, pfail, fixed)


def sweep_attribute(
    assembly: Assembly,
    service: str,
    attribute: str,
    values: Sequence[float] | np.ndarray,
    actuals: Mapping[str, float],
) -> SweepResult:
    """Sweep one published **interface attribute** (e.g.
    ``"net12::failure_rate"``) at fixed actual parameters.

    This is the other axis of Figure 6: the paper varies ``gamma`` and
    ``phi1``, which are attributes of the net12 and sort1 services, not
    formal parameters of the search service.  Implemented through the
    symbolic back-end with ``symbolic_attributes=True``: the closed form is
    derived once with the attribute left free, all other attributes bound
    to their published values, and the grid evaluated vectorized.

    Args:
        assembly: the assembly under analysis.
        service: the service whose ``Pfail`` is evaluated.
        attribute: ``"<service>::<attribute>"`` symbol (see
            :func:`repro.core.attribute_symbol`).
        values: the attribute grid.
        actuals: the service's actual parameters, all fixed.
    """
    from repro.core.symbolic_evaluator import (
        SymbolicEvaluator as _SymbolicEvaluator,
        attribute_environment,
    )

    grid = np.asarray(values, dtype=float)
    if grid.ndim != 1 or grid.size == 0:
        raise EvaluationError("sweep values must be a non-empty 1-D sequence")
    expression = _SymbolicEvaluator(
        assembly, symbolic_attributes=True
    ).pfail_expression(service)
    base = dict(attribute_environment(assembly))
    if attribute not in base:
        raise EvaluationError(
            f"{attribute!r} is not a published attribute of any service in "
            f"{assembly.name!r} (expected '<service>::<attribute>')"
        )
    env = {**base, **{k: float(v) for k, v in dict(actuals).items()}}
    env[attribute] = grid
    pfail = np.broadcast_to(
        np.asarray(expression.evaluate(env), dtype=float), grid.shape
    ).copy()
    return SweepResult(
        assembly.name, service, attribute, grid, pfail, dict(actuals)
    )
