"""Parameter sweeps of predicted reliability.

The Figure 6 experiment is a sweep: ``Pfail(search, ...)`` as a function of
the ``list`` formal parameter, for a grid of attribute settings.  This
module runs such sweeps through either evaluation back-end:

- ``method="symbolic"`` derives the closed form once and evaluates it
  vectorized over the whole value array (fast; the default);
- ``method="numeric"`` runs the recursive evaluator per point (slower;
  useful as a cross-check and for assemblies whose flows the symbolic
  back-end would blow up on).

Both back-ends agree to ~1e-12 — asserted by the integration tests.

Sweeps plug into the engine layer two ways:

- ``cache=`` reuses the closed-form derivation across sweeps of the same
  model through a :class:`~repro.engine.PlanCache` (a Figure-6 style grid
  of 8 sweeps over 2 assemblies derives each closed form once, not 8
  times);
- ``jobs=`` fans the grid across workers — chunked numpy evaluation on a
  thread pool for the symbolic back-end, per-point recursive evaluation
  on a process pool for the numeric one.  Chunking is contiguous, so the
  parallel result is element-for-element identical to the sequential one
  (asserted to 1e-12 by the integration tests).
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.core.evaluator import ReliabilityEvaluator
from repro.errors import EvaluationError
from repro.model.assembly import Assembly
from repro.runtime.budget import EvaluationBudget

__all__ = ["SweepResult", "sweep_parameter", "sweep_attribute"]


@dataclass(frozen=True)
class SweepResult:
    """One reliability-vs-parameter series.

    Attributes:
        assembly: name of the swept assembly.
        service: evaluated service.
        parameter: swept formal parameter.
        values: the parameter values (ascending numpy array).
        pfail: ``Pfail`` at each value.
        fixed: the non-swept actuals used.
    """

    assembly: str
    service: str
    parameter: str
    values: np.ndarray
    pfail: np.ndarray
    fixed: Mapping[str, float] = field(default_factory=dict)

    @property
    def reliability(self) -> np.ndarray:
        """``1 - Pfail`` at each value."""
        return 1.0 - self.pfail

    def at(self, value: float) -> float:
        """``Pfail`` at one swept value (must be a grid point)."""
        index = np.where(np.isclose(self.values, value))[0]
        if index.size == 0:
            raise EvaluationError(f"{value!r} is not a swept grid point")
        return float(self.pfail[index[0]])

    def rows(self) -> list[tuple[float, float, float]]:
        """``(value, pfail, reliability)`` rows for tabular output."""
        return [
            (float(v), float(p), float(1.0 - p))
            for v, p in zip(self.values, self.pfail)
        ]


def _validated_grid(values: Sequence[float] | np.ndarray) -> np.ndarray:
    grid = np.asarray(values, dtype=float)
    if grid.ndim != 1 or grid.size == 0:
        raise EvaluationError("sweep values must be a non-empty 1-D sequence")
    return grid


def _collect_chunks(chunk_results: list) -> np.ndarray:
    """Concatenate ordered chunk outputs, rehydrating worker failures."""
    from repro.engine.parallel import (
        WorkerFailure,
        rebuild_error,
        unpack_worker_payload,
    )

    out: list[float] = []
    for result in chunk_results:
        result = unpack_worker_payload(result)
        if isinstance(result, WorkerFailure):
            raise rebuild_error(result)
        out.extend(result)
    return np.asarray(out, dtype=float)


def _fused_symbolic(plan, parameter, grid, fixed, budget, use_kernel) -> np.ndarray:
    """One vectorized kernel pass over the whole grid, in-process.

    For the numpy-vectorized symbolic backend this beats any thread
    fan-out: one straight-line tape execution over the full grid has no
    per-chunk dispatch, no futures, no chunk re-concatenation.
    """
    from repro.engine.parallel import charge_fused

    pfail = plan.pfail_grid(
        parameter, grid, fixed, budget=budget, use_kernel=use_kernel
    )
    charge_fused(groups=1, entries=int(grid.size))
    return pfail


def _parallel_symbolic(
    plan, parameter, grid, fixed, jobs, budget, use_kernel=True
) -> np.ndarray:
    from repro.engine.parallel import (
        make_executor,
        plan_sweep_chunk,
        remaining_deadline,
        split_evenly,
    )

    executor = make_executor(jobs, "thread")
    if executor is None:
        return plan.pfail_grid(
            parameter, grid, fixed, budget=budget, use_kernel=use_kernel
        )
    chunks = split_evenly(list(grid), jobs)
    with executor:
        futures = [
            executor.submit(
                plan_sweep_chunk,
                {
                    "plan": plan,
                    "parameter": parameter,
                    "values": chunk,
                    "fixed": dict(fixed),
                    "deadline": remaining_deadline(budget),
                    "use_kernel": use_kernel,
                    "observe": obs.enabled(),
                    "dispatched_at": time.time(),
                },
            )
            for chunk in chunks
        ]
        return _collect_chunks([f.result() for f in futures])


def _parallel_numeric(
    assembly, service, parameter, grid, fixed, jobs, budget, solver="auto",
    incremental=False,
) -> np.ndarray:
    from repro.engine.fingerprint import canonical_json
    from repro.engine.parallel import (
        make_executor,
        numeric_sweep_chunk,
        remaining_deadline,
        split_evenly,
    )

    from concurrent.futures.process import BrokenProcessPool

    from repro.engine.parallel import broken_pool_error

    executor = make_executor(jobs, "process")
    assembly_json = canonical_json(assembly)
    chunks = split_evenly(list(grid), jobs)
    with executor:
        futures = [
            executor.submit(
                numeric_sweep_chunk,
                {
                    "assembly_json": assembly_json,
                    "service": service,
                    "parameter": parameter,
                    "values": chunk,
                    "fixed": dict(fixed),
                    "deadline": remaining_deadline(budget),
                    "solver": solver,
                    "incremental": incremental,
                    "observe": obs.enabled(),
                    "dispatched_at": time.time(),
                },
            )
            for chunk in chunks
        ]
        collected: list = []
        try:
            for future in futures:
                collected.append(future.result())
        except BrokenProcessPool as exc:
            # grid indices whose chunk results were not collected yet
            start = sum(len(chunk) for chunk in chunks[:len(collected)])
            raise broken_pool_error(
                "numeric sweep evaluation", range(start, len(grid)), exc
            ) from exc
        return _collect_chunks(collected)


def _parallel_numeric_shm(
    assembly, service, parameter, grid, fixed, jobs, budget, solver="auto",
    incremental=False,
) -> np.ndarray:
    """Numeric grid fan-out over the zero-pickle shared-memory transport.

    Workers read the model document out of a shared segment (parsed once
    per worker process, cached by content digest) and write result rows
    in place; only typed failures travel back through the futures.  The
    parent owns every segment and reclaims them even when the pool
    breaks; rows still unset after a crash identify the affected grid
    indices exactly.
    """
    from concurrent.futures.process import BrokenProcessPool

    from repro.engine import shm
    from repro.engine.fingerprint import canonical_json
    from repro.engine.parallel import (
        broken_pool_error,
        make_executor,
        rebuild_error,
        remaining_deadline,
        split_evenly,
        unpack_worker_payload,
    )

    executor = make_executor(jobs, "process")
    n = int(grid.size)
    workspace = shm.ShmWorkspace.create(
        canonical_json(assembly).encode("utf-8"),
        {
            "values": ((n,), "float64"),
            "results": ((n,), "float64"),
            "status": ((n,), "uint8"),
        },
    )
    try:
        workspace.array("values")[:] = grid
        shm._charge(rows=n)
        config = {
            "service": service,
            "parameter": parameter,
            "fixed": dict(fixed),
            "solver": solver,
            "incremental": incremental,
        }
        spec = workspace.spec()
        with executor:
            futures = [
                executor.submit(
                    shm.shm_numeric_sweep_rows,
                    {
                        "spec": spec,
                        "config": config,
                        "start": rows[0],
                        "stop": rows[-1] + 1,
                        "deadline": remaining_deadline(budget),
                        "observe": obs.enabled(),
                        "dispatched_at": time.time(),
                    },
                )
                for rows in split_evenly(list(range(n)), jobs)
            ]
            try:
                for future in futures:
                    failures = unpack_worker_payload(future.result())
                    if failures:
                        raise rebuild_error(next(iter(failures.values())))
            except BrokenProcessPool as exc:
                status = workspace.array("status")
                affected = [i for i in range(n) if status[i] == shm.ROW_UNSET]
                raise broken_pool_error(
                    "numeric sweep evaluation", affected, exc
                ) from exc
        return workspace.array("results").copy()
    finally:
        workspace.close()


def sweep_parameter(
    assembly: Assembly,
    service: str,
    parameter: str,
    values: Sequence[float] | np.ndarray,
    fixed: Mapping[str, float] | None = None,
    method: str = "symbolic",
    jobs: int = 1,
    cache=None,
    budget: EvaluationBudget | None = None,
    compile: bool = True,
    solver: str = "auto",
    incremental: bool = False,
    fused: bool = True,
) -> SweepResult:
    """Sweep one formal parameter of ``service`` across ``values``.

    Args:
        assembly: the assembly under analysis.
        service: name of the composite (or simple) service to evaluate.
        parameter: the formal parameter to sweep.
        values: the grid of values.
        fixed: values for the remaining formal parameters.
        method: ``"symbolic"`` (vectorized closed form) or ``"numeric"``
            (per-point recursive evaluation).
        jobs: worker count for the grid — 1 (default) evaluates in
            process, 0 uses every core, ``N > 1`` fans the grid across
            ``N`` workers (threads for symbolic, processes for numeric).
        cache: optional :class:`~repro.engine.PlanCache`; the closed-form
            derivation is fetched from / stored into it, so repeated
            sweeps of the same model re-derive nothing.
        budget: optional :class:`~repro.runtime.EvaluationBudget` enforced
            during derivation and cooperatively by every worker.
        compile: evaluate the closed form through its compiled numpy
            kernel (default); ``False`` forces the recursive tree walk.
        solver: linear-solver backend for the numeric method's absorbing
            solves (``"auto"``, ``"dense"`` or ``"sparse"``; the symbolic
            method never solves numerically and ignores it).
        incremental: serve consecutive numeric points through low-rank
            (Sherman-Morrison-Woodbury) updates of the cached base
            factorization instead of re-factoring per point
            (:mod:`repro.markov.updates`); numeric method only.
        fused: default on.  The symbolic method runs the whole grid
            through **one** stacked kernel execution in-process (faster
            than any thread fan-out for these numpy-vectorized kernels,
            so ``jobs`` is moot); the numeric method with ``jobs > 1``
            rides the zero-pickle shared-memory transport
            (:mod:`repro.engine.shm`).  ``False`` restores the chunked
            pool paths (the ``--no-fused`` escape hatch).
    """
    from repro.engine.parallel import resolve_jobs

    svc = assembly.service(service)
    fixed = dict(fixed or {})
    if parameter not in svc.formal_parameters:
        raise EvaluationError(
            f"{parameter!r} is not a formal parameter of {service!r} "
            f"(has {svc.formal_parameters})"
        )
    grid = _validated_grid(values)
    jobs = resolve_jobs(jobs)

    with obs.span(
        "sweep.run", service=service, parameter=parameter, method=method,
        points=int(grid.size), jobs=jobs,
    ):
        if method == "symbolic":
            from repro.engine.plan import compile_plan

            if cache is not None:
                plan = cache.get_or_compile(assembly, service,
                                            backend="symbolic", budget=budget)
            else:
                plan = compile_plan(assembly, service, backend="symbolic",
                                    budget=budget)
            if fused:
                pfail = _fused_symbolic(
                    plan, parameter, grid, fixed, budget, compile
                )
            else:
                pfail = _parallel_symbolic(
                    plan, parameter, grid, fixed, jobs, budget,
                    use_kernel=compile,
                )
        elif method == "numeric":
            if jobs > 1:
                from repro.engine import shm as _shm

                if fused and _shm.available():
                    pfail = _parallel_numeric_shm(
                        assembly, service, parameter, grid, fixed, jobs,
                        budget, solver=solver, incremental=incremental,
                    )
                else:
                    pfail = _parallel_numeric(
                        assembly, service, parameter, grid, fixed, jobs,
                        budget, solver=solver, incremental=incremental,
                    )
            else:
                evaluator = ReliabilityEvaluator(
                    assembly, check_domains=False, budget=budget,
                    solver=solver, incremental=incremental,
                )
                pfail = np.array(
                    [
                        evaluator.pfail(service, **{**fixed, parameter: float(v)})
                        for v in grid
                    ]
                )
        else:
            raise EvaluationError(f"unknown sweep method {method!r}")

    return SweepResult(assembly.name, service, parameter, grid, pfail, fixed)


def sweep_attribute(
    assembly: Assembly,
    service: str,
    attribute: str,
    values: Sequence[float] | np.ndarray,
    actuals: Mapping[str, float],
    jobs: int = 1,
    cache=None,
    budget: EvaluationBudget | None = None,
    compile: bool = True,
    fused: bool = True,
) -> SweepResult:
    """Sweep one published **interface attribute** (e.g.
    ``"net12::failure_rate"``) at fixed actual parameters.

    This is the other axis of Figure 6: the paper varies ``gamma`` and
    ``phi1``, which are attributes of the net12 and sort1 services, not
    formal parameters of the search service.  Implemented through the
    symbolic back-end with ``symbolic_attributes=True``: the closed form is
    derived once with the attribute left free, all other attributes bound
    to their published values, and the grid evaluated vectorized.

    Args:
        assembly: the assembly under analysis.
        service: the service whose ``Pfail`` is evaluated.
        attribute: ``"<service>::<attribute>"`` symbol (see
            :func:`repro.core.attribute_symbol`).
        values: the attribute grid.
        actuals: the service's actual parameters, all fixed.
        jobs: worker count for the grid (thread-chunked; 1 = in-process).
        cache: optional :class:`~repro.engine.PlanCache` for the
            attribute-symbolic closed form.
        budget: optional budget enforced during derivation and evaluation.
        compile: evaluate through the compiled kernel (default) or the
            recursive tree walk (``False``).
        fused: run the whole grid through one stacked kernel execution
            in-process (default); ``False`` restores the thread-chunked
            fan-out.
    """
    from repro.core.symbolic_evaluator import attribute_environment
    from repro.engine.parallel import resolve_jobs
    from repro.engine.plan import compile_plan

    grid = _validated_grid(values)
    jobs = resolve_jobs(jobs)
    if cache is not None:
        plan = cache.get_or_compile(
            assembly, service, symbolic_attributes=True, backend="symbolic",
            budget=budget,
        )
    else:
        plan = compile_plan(
            assembly, service, symbolic_attributes=True, backend="symbolic",
            budget=budget,
        )
    base = dict(attribute_environment(assembly))
    if attribute not in base:
        raise EvaluationError(
            f"{attribute!r} is not a published attribute of any service in "
            f"{assembly.name!r} (expected '<service>::<attribute>')"
        )
    fixed = {**base, **{k: float(v) for k, v in dict(actuals).items()}}
    fixed.pop(attribute)
    if fused:
        pfail = _fused_symbolic(plan, attribute, grid, fixed, budget, compile)
    else:
        pfail = _parallel_symbolic(
            plan, attribute, grid, fixed, jobs, budget, use_kernel=compile
        )
    return SweepResult(
        assembly.name, service, attribute, grid, pfail, dict(actuals)
    )
