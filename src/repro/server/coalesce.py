"""Request coalescing: one computation per structural fingerprint in flight.

The shared caches (:mod:`repro.caching`) deliberately run their factories
*outside* the lock — two threads racing on the same key both compute and
the first store wins.  That is the right call inside one batch, where
duplicated work is rare and cheap; it is the wrong call for a daemon where
a popular model can arrive on fifty connections in the same hundred
milliseconds and each computation is a symbolic derivation plus a matrix
factorization.

:class:`Coalescer` closes that hole at the request layer: the first
request for a key becomes the **leader** and runs the computation; every
request for the same key that arrives while the leader is in flight
becomes a **follower**, blocks on the leader's completion event, and
returns the leader's result (or re-raises its typed error).  Keys are
gone the moment the leader finishes, so coalescing never serves stale
results — after completion, the warm caches make the recomputation cheap
anyway.

Leader/follower traffic is mirrored onto the metrics registry as
``server.coalesce.leader`` / ``server.coalesce.follower`` (free while
collection is disabled).
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Hashable
from typing import Any

from repro import observability as obs

__all__ = ["Coalescer"]


class _Flight:
    """One in-flight computation: completion event plus outcome slot."""

    __slots__ = ("done", "result", "error", "followers")

    def __init__(self):
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.followers = 0


class Coalescer:
    """Deduplicate concurrent computations by key.

    Thread-safe; the computation runs on the leader's thread with no lock
    held, so distinct keys never serialize behind each other.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, _Flight] = {}
        self.leaders = 0
        self.followers = 0

    def waiting(self, key: Hashable) -> int:
        """Followers currently blocked on ``key`` (0 when not in flight)."""
        with self._lock:
            flight = self._inflight.get(key)
            return flight.followers if flight is not None else 0

    def run(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """``(result, coalesced)`` for ``key``.

        ``coalesced`` is ``False`` for the leader (this thread ran
        ``compute``) and ``True`` for followers (the result was shared).
        A leader's exception propagates to the leader *and* to every
        follower of that flight.
        """
        with self._lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                leader = True
                self.leaders += 1
            else:
                flight.followers += 1
                leader = False
                self.followers += 1

        if leader:
            obs.count("server.coalesce.leader")
            try:
                flight.result = compute()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                flight.done.set()
            return flight.result, False

        obs.count("server.coalesce.follower")
        flight.done.wait()
        if flight.error is not None:
            raise flight.error
        return flight.result, True
