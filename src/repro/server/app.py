"""The HTTP daemon: stdlib ``ThreadingHTTPServer`` over the service core.

Zero new required dependencies — the transport is
:class:`http.server.ThreadingHTTPServer` (one thread per connection,
daemon threads), which is exactly the concurrency shape the warm caches
and the coalescer are built for.  An asyncio/FastAPI adapter can wrap the
same :class:`~repro.server.service.EvaluationService` later without
touching anything here.

Routes:

====== ================== =================================================
method path               handler
====== ================== =================================================
GET    ``/healthz``       liveness + uptime + request totals
GET    ``/metrics``       ``repro/metrics/1`` registry snapshot
GET    ``/v1/cache-stats`` plan/kernel/solver/model cache counters
POST   ``/v1/evaluate``   one prediction (coalesced, cached)
POST   ``/v1/batch``      many points, per-entry error isolation
POST   ``/v1/sweep``      one parameter across a grid (coalesced)
====== ================== =================================================

**Status taxonomy.**  Typed :class:`~repro.errors.ReproError` subclasses
map onto HTTP statuses the same way the CLI maps them onto exit codes
(:data:`HTTP_STATUS`; each error body carries the matching ``exit_code``
so a client can branch identically against either surface):
``ModelError``/malformed bodies → 400, engine refusals (symbolic, markov,
evaluation) → 422, admission shedding → 429, budget exhaustion → 503 with
``Retry-After``, numerical instability and internal failures → 500.

All logging goes to **stderr** (one startup banner, one line per request
unless ``quiet``); stdout stays machine-clean, matching the CLI's
stdout-comparability rule.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import observability as obs
from repro.cli import exit_code_for
from repro.errors import (
    BudgetExceededError,
    EvaluationError,
    MarkovError,
    ModelError,
    NumericalInstabilityError,
    ReproError,
    RequestValidationError,
    ServerOverloadedError,
    SymbolicError,
)
from repro.server.service import EvaluationService

__all__ = ["HTTP_STATUS", "ReproServer", "http_status_for"]

#: The HTTP status taxonomy, most specific error class first — the
#: service-surface mirror of :data:`repro.cli.EXIT_CODES`.
HTTP_STATUS: tuple[tuple[type[ReproError], int], ...] = (
    (ServerOverloadedError, 429),
    (RequestValidationError, 400),
    (BudgetExceededError, 503),
    (NumericalInstabilityError, 500),
    (ModelError, 400),
    (SymbolicError, 422),
    (MarkovError, 422),
    (EvaluationError, 422),
    (ReproError, 500),
)


def http_status_for(error: ReproError) -> int:
    """The taxonomy HTTP status for a :class:`ReproError` instance."""
    for cls, status in HTTP_STATUS:
        if isinstance(error, cls):
            return status
    return 500  # pragma: no cover - HTTP_STATUS ends with ReproError


_banner_lock = threading.Lock()
_banners_emitted: set[str] = set()


def _log(message: str) -> None:
    """Server-side logging: always stderr, never stdout."""
    print(f"repro-server: {message}", file=sys.stderr, flush=True)


@contextlib.contextmanager
def _observe_latency():
    """Record per-request wall time as the ``server.request.seconds``
    histogram (free while metrics collection is disabled)."""
    started = time.perf_counter()
    try:
        yield
    finally:
        obs.observe("server.request.seconds", time.perf_counter() - started)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the owning server's ``EvaluationService``."""

    server_version = "repro-server/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # type: ignore[attr-defined]
            _log(f"{self.address_string()} {format % args}")

    def _reply(self, status: int, document: dict, headers=()) -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_error(self, error: ReproError) -> None:
        status = http_status_for(error)
        obs.count(f"server.responses.{status}")
        headers = [("Retry-After", "1")] if status in (429, 503) else []
        self._reply(status, {
            "schema": "repro/server/1",
            "error": str(error),
            "type": type(error).__name__,
            "exit_code": exit_code_for(error),
        }, headers)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        limit = self.server.max_body_bytes  # type: ignore[attr-defined]
        if length > limit:
            raise RequestValidationError(
                self.path, [f"body of {length} bytes exceeds the "
                            f"{limit}-byte limit"]
            )
        raw = self.rfile.read(length) if length else b""
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestValidationError(
                self.path, [f"body is not valid JSON: {exc}"]
            ) from exc
        if not isinstance(document, dict):
            raise RequestValidationError(
                self.path,
                [f"body must be a JSON object, got "
                 f"{type(document).__name__}"],
            )
        return document

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service: EvaluationService = self.server.service  # type: ignore[attr-defined]
        with obs.span("server.request", method="GET", path=self.path), \
                _observe_latency():
            if self.path == "/healthz":
                self._reply(200, service.health())
            elif self.path == "/metrics":
                self._reply(200, obs.registry().snapshot())
            elif self.path == "/v1/cache-stats":
                self._reply(200, service.cache_stats())
            else:
                self._reply(404, {
                    "schema": "repro/server/1",
                    "error": f"no such resource: {self.path}",
                    "type": "NotFound",
                    "exit_code": None,
                })

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        service: EvaluationService = self.server.service  # type: ignore[attr-defined]
        handlers = {
            "/v1/evaluate": service.evaluate,
            "/v1/batch": service.batch,
            "/v1/sweep": service.sweep,
        }
        handler = handlers.get(self.path)
        with obs.span("server.request", method="POST", path=self.path), \
                _observe_latency():
            try:
                if handler is None:
                    self._reply(404, {
                        "schema": "repro/server/1",
                        "error": f"no such resource: {self.path}",
                        "type": "NotFound",
                        "exit_code": None,
                    })
                    return
                with service.admit():
                    payload = self._read_body()
                    document = handler(payload)
                obs.count("server.responses.200")
                self._reply(200, document)
            except ReproError as exc:
                self._reply_error(exc)


class ReproServer:
    """A long-running reliability-prediction daemon, embeddable.

    Args:
        host: bind address (default loopback).
        port: TCP port; ``0`` picks an ephemeral one (tests, doctests).
        service: the :class:`EvaluationService` to serve (default: a
            fresh one with private caches).
        max_body_bytes: largest accepted request body.
        quiet: suppress per-request log lines (the banner still prints).

    Use :meth:`start`/:meth:`stop` to run on a background thread (tests,
    embedding), or :meth:`serve_forever` to own the process until
    SIGINT/SIGTERM (the CLI's ``serve`` command).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        service: EvaluationService | None = None,
        max_body_bytes: int = 8 * 1024 * 1024,
        quiet: bool = True,
    ):
        self.service = service if service is not None else EvaluationService()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._httpd.max_body_bytes = int(max_body_bytes)  # type: ignore[attr-defined]
        self._httpd.quiet = bool(quiet)  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # -- addressing ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the daemon, e.g. ``http://127.0.0.1:8349``."""
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ----------------------------------------------------------

    def log_banner(self) -> None:
        """Print the startup banner to stderr, once per address per
        process — restarts and embedded re-announcements stay deduped."""
        with _banner_lock:
            if self.url in _banners_emitted:
                return
            _banners_emitted.add(self.url)
        _log(f"listening on {self.url} (pid {os.getpid()}, "
             f"max_inflight {self.service.max_inflight})")

    def start(self) -> "ReproServer":
        """Serve on a background daemon thread (returns immediately)."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name="repro-server",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd.server_close()

    def serve_forever(self) -> int:
        """Serve until SIGINT/SIGTERM; returns 0 on a clean shutdown.

        The accept loop runs on a background thread while the calling
        thread waits on the signal — ``shutdown()`` must never be called
        from the thread running ``serve_forever`` or it deadlocks.
        """
        stop = threading.Event()
        received: list[int] = []

        def request_shutdown(signum, frame):
            received.append(signum)
            stop.set()

        previous = {
            sig: signal.signal(sig, request_shutdown)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            self.start()
            self.log_banner()
            stop.wait()
            name = signal.Signals(received[0]).name if received else "stop"
            _log(f"received {name}, shutting down")
            self.stop()
            _log(f"served {self.service.requests} request(s), bye")
            return 0
        finally:
            for sig, old_handler in previous.items():
                signal.signal(sig, old_handler)
