"""Request schemas for the HTTP service surface — one source of truth.

Every ``POST`` endpoint of :mod:`repro.server` validates its JSON body
against a declarative schema defined here, written in the same small
JSON-Schema subset that ``tools/metrics_schema.json`` uses (``type``,
``required``, ``properties``, ``additionalProperties``, ``enum``,
``minimum``, ``maximum``, ``items``, ``minItems``, ``maxItems``) plus a
``description`` per field.  The subset interpreter lives here too
(:func:`schema_problems` / :func:`validate_request`), so the daemon needs
no third-party validator.

The same definitions drive the generated endpoint reference:
``tools/gen_api_reference.py`` renders :data:`ENDPOINTS` into
``docs/api_reference.md``, and CI fails when the committed page drifts
from this module — the serving contract is the *schema*, never the code
behind it (the architecture-model-as-contract stance of arXiv:2401.14320).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RequestValidationError

__all__ = [
    "ENDPOINTS",
    "Endpoint",
    "BATCH_REQUEST",
    "EVALUATE_REQUEST",
    "SWEEP_REQUEST",
    "schema_problems",
    "validate_request",
]

#: Schema tag carried by every JSON response body.
RESPONSE_SCHEMA = "repro/server/1"

# ---------------------------------------------------------------------------
# shared fragments
# ---------------------------------------------------------------------------

MODEL = {
    "type": "object",
    "description": "a `repro/1` assembly document (the exact JSON "
                   "`python -m repro export-scenario` writes); parsed "
                   "through the hardened model loader and cached by "
                   "content digest",
}

ACTUALS = {
    "type": "object",
    "additionalProperties": {"type": "number"},
    "description": "actual parameter bindings, `{name: value}`",
}

SOLVER = {
    "enum": ["auto", "dense", "sparse"],
    "description": "linear-solver backend for absorbing-chain solves "
                   "(default `auto`)",
}

COMPILE = {
    "type": "boolean",
    "description": "evaluate closed forms through compiled numpy kernels "
                   "(default `true`; `false` is the `--no-compile` escape "
                   "hatch)",
}

FUSED = {
    "type": "boolean",
    "description": "fused execution (default `true`): symbolic grids and "
                   "same-model batch groups run through one stacked kernel "
                   "call each, bitwise-identical to the per-point path; "
                   "`false` is the `--no-fused` escape hatch",
}

BUDGET = {
    "type": "object",
    "additionalProperties": False,
    "description": "per-request resource envelope; exceeding any limit "
                   "answers `503` (the CLI's exit code 8)",
    "properties": {
        "deadline": {
            "type": "number", "minimum": 0,
            "description": "wall-clock seconds for this request",
        },
        "max_states": {
            "type": "integer", "minimum": 0,
            "description": "largest absorbing DTMC the solver may factor",
        },
        "max_depth": {
            "type": "integer", "minimum": 0,
            "description": "maximum service-composition recursion depth",
        },
        "max_sweeps": {
            "type": "integer", "minimum": 0,
            "description": "maximum fixed-point sweeps",
        },
        "max_trials": {
            "type": "integer", "minimum": 0,
            "description": "maximum Monte Carlo trials",
        },
    },
}

# ---------------------------------------------------------------------------
# request bodies
# ---------------------------------------------------------------------------

EVALUATE_REQUEST = {
    "type": "object",
    "required": ["model", "service"],
    "additionalProperties": False,
    "properties": {
        "model": MODEL,
        "service": {
            "type": "string",
            "description": "name of the service to evaluate",
        },
        "actuals": ACTUALS,
        "solver": SOLVER,
        "compile": COMPILE,
        "budget": BUDGET,
    },
}

BATCH_REQUEST = {
    "type": "object",
    "required": ["requests"],
    "additionalProperties": False,
    "properties": {
        "requests": {
            "type": "array",
            "minItems": 1,
            "maxItems": 1024,
            "description": "the evaluation points; entries sharing a model "
                           "digest compile one plan between them",
            "items": {
                "type": "object",
                "required": ["model", "service"],
                "additionalProperties": False,
                "properties": {
                    "model": MODEL,
                    "service": {
                        "type": "string",
                        "description": "name of the service to evaluate",
                    },
                    "actuals": ACTUALS,
                    "label": {
                        "type": "string",
                        "description": "caller tag echoed on the entry "
                                       "(e.g. a candidate id)",
                    },
                },
            },
        },
        "solver": SOLVER,
        "compile": COMPILE,
        "fused": FUSED,
        "budget": BUDGET,
    },
}

SWEEP_REQUEST = {
    "type": "object",
    "required": ["model", "service", "parameter", "start", "stop"],
    "additionalProperties": False,
    "properties": {
        "model": MODEL,
        "service": {
            "type": "string",
            "description": "name of the service to evaluate",
        },
        "parameter": {
            "type": "string",
            "description": "the formal parameter swept across the grid",
        },
        "start": {"type": "number", "description": "first grid value"},
        "stop": {"type": "number", "description": "last grid value"},
        "points": {
            "type": "integer", "minimum": 2, "maximum": 100000,
            "description": "grid size (default 20)",
        },
        "fixed": {
            "type": "object",
            "additionalProperties": {"type": "number"},
            "description": "values for the remaining formal parameters",
        },
        "method": {
            "enum": ["symbolic", "numeric"],
            "description": "grid back-end: vectorized closed form "
                           "(default) or per-point recursion",
        },
        "solver": SOLVER,
        "compile": COMPILE,
        "fused": FUSED,
        "budget": BUDGET,
    },
}

# ---------------------------------------------------------------------------
# the schema-subset interpreter
# ---------------------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
}


def _type_ok(value, expected: str) -> bool:
    if expected == "integer":
        # bool is an int subclass but never a valid count
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return isinstance(value, _TYPES[expected])


def schema_problems(value, schema: dict, path: str = "$") -> list[str]:
    """Every violation of ``schema`` in ``value`` (empty list = valid).

    Interprets the subset listed in the module docstring; problems are
    human-readable one-liners anchored at a JSONPath-ish location.
    """
    problems: list[str] = []
    if "enum" in schema:
        if value not in schema["enum"]:
            problems.append(
                f"{path}: expected one of {schema['enum']!r}, got {value!r}"
            )
        return problems
    expected = schema.get("type")
    if expected is not None and not _type_ok(value, expected):
        problems.append(
            f"{path}: expected {expected}, got {type(value).__name__}"
        )
        return problems
    if "minimum" in schema and value < schema["minimum"]:
        problems.append(f"{path}: {value!r} < minimum {schema['minimum']!r}")
    if "maximum" in schema and value > schema["maximum"]:
        problems.append(f"{path}: {value!r} > maximum {schema['maximum']!r}")
    if expected == "array":
        if "minItems" in schema and len(value) < schema["minItems"]:
            problems.append(
                f"{path}: {len(value)} item(s) < minItems {schema['minItems']}"
            )
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            problems.append(
                f"{path}: {len(value)} item(s) > maxItems {schema['maxItems']}"
            )
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                problems.extend(schema_problems(item, items, f"{path}[{i}]"))
    if expected == "object":
        properties = schema.get("properties", {})
        for name in schema.get("required", ()):
            if name not in value:
                problems.append(f"{path}: missing required key {name!r}")
        extra = schema.get("additionalProperties")
        for name, item in value.items():
            if name in properties:
                problems.extend(
                    schema_problems(item, properties[name], f"{path}.{name}")
                )
            elif isinstance(extra, dict):
                problems.extend(schema_problems(item, extra, f"{path}.{name}"))
            elif extra is False:
                problems.append(f"{path}: unexpected key {name!r}")
    return problems


def validate_request(endpoint: str, payload, schema: dict) -> None:
    """Raise :class:`~repro.errors.RequestValidationError` on any violation."""
    problems = schema_problems(payload, schema)
    if problems:
        raise RequestValidationError(endpoint, problems)


# ---------------------------------------------------------------------------
# endpoint metadata (drives docs/api_reference.md)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Endpoint:
    """One route of the service surface, documented.

    ``tools/gen_api_reference.py`` renders these into the committed
    endpoint reference; anything not expressible here does not belong in
    the HTTP contract.
    """

    method: str
    path: str
    summary: str
    description: str
    request_schema: dict | None = None
    request_example: dict | None = None
    response_example: dict | None = None
    status_codes: tuple[tuple[int, str], ...] = field(default_factory=tuple)


_LOCAL_MODEL_NOTE = {"...": "a repro/1 assembly document"}

_COMMON_ERRORS = (
    (400, "malformed JSON, schema violation, or model error (CLI exit 3)"),
    (422, "valid request the engine refuses: symbolic/markov/evaluation "
          "error (CLI exits 4-6)"),
    (429, "server at its concurrent-request capacity; retry later"),
    (503, "request budget exhausted — deadline/state/depth caps "
          "(CLI exit 8); carries `Retry-After`"),
    (500, "numerical instability or internal error (CLI exits 7, 10, 11)"),
)

ENDPOINTS: tuple[Endpoint, ...] = (
    Endpoint(
        method="GET",
        path="/healthz",
        summary="Liveness probe.",
        description="Always answers `200` while the daemon accepts "
                    "connections; reports uptime, the process id, and "
                    "request totals.  Never touches the evaluation stack.",
        response_example={
            "schema": RESPONSE_SCHEMA,
            "status": "ok",
            "pid": 4242,
            "uptime_seconds": 12.5,
            "requests": {"total": 17, "inflight": 1, "shed": 0},
        },
        status_codes=((200, "always, while the process lives"),),
    ),
    Endpoint(
        method="GET",
        path="/metrics",
        summary="The observability registry as a `repro/metrics/1` snapshot.",
        description="The same JSON document `--metrics json:PATH` writes, "
                    "validated by `tools/validate_metrics.py` against "
                    "`tools/metrics_schema.json`.  Counters accumulate for "
                    "the process lifetime; scrape deltas, not absolutes.",
        response_example={
            "schema": "repro/metrics/1",
            "counters": {"cache.plan.hits": 12, "server.requests": 13},
            "gauges": {"budget.deadline_consumed": 0.12},
            "histograms": {
                "server.request.seconds": {"count": 13, "sum": 0.81},
            },
        },
        status_codes=((200, "always"),),
    ),
    Endpoint(
        method="GET",
        path="/v1/cache-stats",
        summary="Hit/miss/eviction counters of every warm cache.",
        description="Plan, kernel, solver-plan and parsed-model caches, "
                    "each as `{hits, misses, evictions, hit_rate, size}`, "
                    "plus the coalescer's request accounting.  The "
                    "`solver` block additionally carries the monotone "
                    "per-process totals: structural `plans` built, numeric "
                    "`factorizations` performed, and the low-rank "
                    "`updates` counters `{applied, fallback_rank, "
                    "fallback_condition}` of the incremental "
                    "(Sherman-Morrison-Woodbury) re-solve path.  The "
                    "`engine.fused` block counts stacked-kernel group "
                    "executions (`groups`/`entries`/`fallbacks`) and the "
                    "shared-memory transport's `shm` "
                    "`{segments, rows}` totals.  The numbers are live "
                    "regardless of whether metrics collection is enabled — "
                    "this is the endpoint warm-cache smoke tests watch.",
        response_example={
            "schema": RESPONSE_SCHEMA,
            "plan": {"hits": 9, "misses": 3, "evictions": 0,
                     "hit_rate": 0.75, "size": 3},
            "kernel": {"hits": 6, "misses": 2, "evictions": 0,
                       "hit_rate": 0.75, "size": 2},
            "solver": {"hits": 4, "misses": 1, "evictions": 0,
                       "hit_rate": 0.8, "size": 1,
                       "plans": 5, "factorizations": 7,
                       "updates": {"applied": 18, "fallback_rank": 1,
                                   "fallback_condition": 0}},
            "model": {"hits": 10, "misses": 2, "evictions": 0,
                      "hit_rate": 0.833, "size": 2},
            "engine": {"fused": {"groups": 2, "entries": 9, "fallbacks": 0,
                                 "shm": {"segments": 1, "rows": 40}}},
            "server": {"requests": 12, "evaluations": 3, "coalesced": 2},
        },
        status_codes=((200, "always"),),
    ),
    Endpoint(
        method="POST",
        path="/v1/evaluate",
        summary="One reliability prediction: `Pfail(service, actuals)`.",
        description="The HTTP form of `python -m repro evaluate`.  The "
                    "model travels in the body; the parsed assembly, its "
                    "compiled plan, the numpy kernels and the solver "
                    "factorization all land in the daemon's warm caches, so "
                    "repeating a request pays only the closed-form "
                    "arithmetic.  Concurrent requests with the same "
                    "structural fingerprint and point coalesce behind a "
                    "single computation — followers carry "
                    "`\"coalesced\": true`.",
        request_schema=EVALUATE_REQUEST,
        request_example={
            "model": _LOCAL_MODEL_NOTE,
            "service": "search",
            "actuals": {"elem": 1, "list": 500, "res": 1},
            "solver": "auto",
            "budget": {"deadline": 5.0},
        },
        response_example={
            "schema": RESPONSE_SCHEMA,
            "service": "search",
            "actuals": {"elem": 1.0, "list": 500.0, "res": 1.0},
            "pfail": 4.0353e-3,
            "reliability": 0.9959647,
            "backend": "symbolic",
            "fingerprint": "0a1b2c3d4e5f...",
            "coalesced": False,
            "elapsed_seconds": 0.004,
        },
        status_codes=((200, "prediction produced"),) + _COMMON_ERRORS,
    ),
    Endpoint(
        method="POST",
        path="/v1/batch",
        summary="Many (model, service, point) evaluations in one pass.",
        description="The HTTP form of `python -m repro batch`.  Failures "
                    "stay per-entry: a bad point yields a typed `error` "
                    "object on that entry while the rest of the batch "
                    "completes, so the response is always `200` when the "
                    "batch itself was admissible.  Distinct models compile "
                    "once each through the shared plan cache, and entries "
                    "sharing a symbolic plan evaluate through one stacked "
                    "kernel call (`fused`, on by default).",
        request_schema=BATCH_REQUEST,
        request_example={
            "requests": [
                {"model": _LOCAL_MODEL_NOTE, "service": "search",
                 "actuals": {"elem": 1, "list": 500, "res": 1},
                 "label": "local@500"},
                {"model": _LOCAL_MODEL_NOTE, "service": "search",
                 "actuals": {"elem": 1, "list": 1000, "res": 1},
                 "label": "local@1000"},
            ],
        },
        response_example={
            "schema": RESPONSE_SCHEMA,
            "ok": True,
            "entries": [
                {"index": 0, "label": "local@500", "service": "search",
                 "actuals": {"elem": 1.0, "list": 500.0, "res": 1.0},
                 "ok": True, "pfail": 4.0353e-3, "reliability": 0.9959647,
                 "backend": "symbolic", "error": None},
            ],
            "stats": {"entries": 2, "plans": 1, "compilations": 0,
                      "cache_hits": 1, "fused_entries": 2,
                      "elapsed": 0.003},
        },
        status_codes=(
            (200, "batch ran; per-entry errors are in the body"),
        ) + _COMMON_ERRORS,
    ),
    Endpoint(
        method="POST",
        path="/v1/sweep",
        summary="`Pfail` across a grid of one formal parameter.",
        description="The HTTP form of `python -m repro sweep`.  The "
                    "symbolic method evaluates the compiled kernel "
                    "vectorized over the whole grid; the numeric method "
                    "loops with cooperative deadline checks.  Identical "
                    "concurrent sweeps coalesce exactly like `/v1/evaluate` "
                    "requests.",
        request_schema=SWEEP_REQUEST,
        request_example={
            "model": _LOCAL_MODEL_NOTE,
            "service": "search",
            "parameter": "list",
            "start": 1, "stop": 1000, "points": 5,
            "fixed": {"elem": 1, "res": 1},
        },
        response_example={
            "schema": RESPONSE_SCHEMA,
            "service": "search",
            "parameter": "list",
            "method": "symbolic",
            "values": [1.0, 250.75, 500.5, 750.25, 1000.0],
            "pfail": [6.1e-4, 2.1e-3, 4.0e-3, 6.2e-3, 8.9e-3],
            "coalesced": False,
            "elapsed_seconds": 0.005,
        },
        status_codes=((200, "sweep produced"),) + _COMMON_ERRORS,
    ),
)
