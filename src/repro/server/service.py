"""The evaluation service behind the HTTP surface — transport-agnostic.

:class:`EvaluationService` is everything the daemon does minus the
sockets: it validates request payloads against :mod:`repro.server.schema`,
parses models through the hardened loader into a digest-keyed LRU, serves
predictions through a long-lived :class:`~repro.engine.cache.PlanCache`
(which in turn warms the process-wide kernel and solver-plan caches), and
coalesces concurrent identical requests behind a single computation
(:mod:`repro.server.coalesce`).

Keeping it transport-agnostic buys two things: the whole service surface
is testable without opening a socket, and an asyncio/FastAPI adapter (the
optional extra the roadmap names) can wrap the same object without
touching the evaluation semantics.

Every public method takes an already-decoded JSON payload and returns a
plain JSON-safe dict; typed :class:`~repro.errors.ReproError` subclasses
propagate to the transport, which maps them onto the HTTP status taxonomy
(:data:`repro.server.app.HTTP_STATUS`).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time

import numpy as np

from repro import observability as obs
from repro.caching import LRUCache
from repro.engine.cache import PlanCache
from repro.errors import ServerOverloadedError
from repro.runtime.budget import EvaluationBudget
from repro.server.coalesce import Coalescer
from repro.server.schema import (
    BATCH_REQUEST,
    EVALUATE_REQUEST,
    RESPONSE_SCHEMA,
    SWEEP_REQUEST,
    validate_request,
)

__all__ = ["EvaluationService"]


def _canonical_digest(document: dict) -> str:
    """Content digest of a model document (sorted-key canonical JSON)."""
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _stats_dict(cache) -> dict:
    """``CacheStats`` snapshot plus current size, JSON-safe."""
    snapshot = cache.stats.snapshot()
    snapshot["size"] = len(cache)
    return snapshot


class EvaluationService:
    """Warm-cache reliability evaluation over JSON payloads.

    Args:
        plan_cache: the :class:`~repro.engine.cache.PlanCache` shared
            across requests for the server's lifetime (default: a private
            256-plan cache — daemons own their caches rather than the
            process-wide default, so embedded servers stay isolated).
        model_cache_size: parsed-assembly LRU bound (models are keyed by
            content digest, so a re-sent body skips JSON->model work).
        default_budget: limits applied to requests whose body names no
            ``budget`` — the daemon's own backpressure floor.  A request
            body's budget *replaces* the default.
        max_inflight: admission bound on concurrently evaluating
            requests; exceeding it raises
            :class:`~repro.errors.ServerOverloadedError` (HTTP 429).
    """

    def __init__(
        self,
        plan_cache: PlanCache | None = None,
        model_cache_size: int = 64,
        default_budget: dict | None = None,
        max_inflight: int = 64,
    ):
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache(256)
        self.models = LRUCache(model_cache_size, name="model")
        self.coalescer = Coalescer()
        self.default_budget = dict(default_budget or {})
        self.max_inflight = int(max_inflight)
        self.started = time.monotonic()
        self._lock = threading.Lock()
        self.requests = 0
        self.evaluations = 0
        self.shed = 0
        self._inflight = 0

    # -- admission / accounting --------------------------------------------

    def admit(self):
        """Context manager charging one in-flight request slot.

        Raises :class:`~repro.errors.ServerOverloadedError` when the
        server is already at ``max_inflight`` — before any model parsing
        or compilation is spent on the doomed request.
        """
        return _Admission(self)

    @property
    def inflight(self) -> int:
        """Requests currently being evaluated."""
        with self._lock:
            return self._inflight

    # -- endpoints ----------------------------------------------------------

    def evaluate(self, payload: dict) -> dict:
        """``POST /v1/evaluate`` — one prediction, coalesced and cached."""
        validate_request("/v1/evaluate", payload, EVALUATE_REQUEST)
        started = time.perf_counter()
        digest, assembly = self._assembly(payload["model"])
        service = payload["service"]
        actuals = {
            name: float(value)
            for name, value in (payload.get("actuals") or {}).items()
        }
        solver = payload.get("solver", "auto")
        use_kernel = bool(payload.get("compile", True))
        key = (
            "evaluate", digest, service,
            tuple(sorted(actuals.items())), solver, use_kernel,
        )

        def compute() -> dict:
            budget = self._budget(payload)
            with self._lock:
                self.evaluations += 1
            obs.count("server.evaluations")
            plan = self.plan_cache.get_or_compile(
                assembly, service, budget=budget, solver=solver
            )
            pfail = plan.pfail(actuals, budget=budget, use_kernel=use_kernel)
            return {
                "schema": RESPONSE_SCHEMA,
                "service": service,
                "actuals": actuals,
                "pfail": pfail,
                "reliability": 1.0 - pfail,
                "backend": plan.backend,
                "fingerprint": plan.fingerprint,
            }

        result, coalesced = self.coalescer.run(key, compute)
        response = dict(result)
        response["coalesced"] = coalesced
        response["elapsed_seconds"] = time.perf_counter() - started
        return response

    def batch(self, payload: dict) -> dict:
        """``POST /v1/batch`` — many points, per-entry error isolation."""
        from repro.engine.batch import BatchEngine, BatchRequest

        validate_request("/v1/batch", payload, BATCH_REQUEST)
        budget = self._budget(payload)
        solver = payload.get("solver", "auto")
        engine = BatchEngine(
            jobs=1,  # connection threads provide the concurrency
            cache=self.plan_cache,
            budget=budget,
            compile=bool(payload.get("compile", True)),
            solver=solver,
            fused=bool(payload.get("fused", True)),
        )
        requests = []
        for entry in payload["requests"]:
            _, assembly = self._assembly(entry["model"])
            requests.append(
                BatchRequest(
                    assembly,
                    entry["service"],
                    {
                        name: float(value)
                        for name, value in (entry.get("actuals") or {}).items()
                    },
                    label=entry.get("label", ""),
                )
            )
        with self._lock:
            self.evaluations += 1
        obs.count("server.evaluations")
        result = engine.run(requests)
        entries = [
            {
                "index": entry.index,
                "label": entry.label,
                "service": entry.service,
                "actuals": entry.actuals,
                "ok": entry.ok,
                "pfail": entry.pfail,
                "reliability": entry.reliability,
                "backend": entry.backend,
                "error": None if entry.ok else {
                    "type": type(entry.error).__name__,
                    "message": str(entry.error),
                },
            }
            for entry in result
        ]
        return {
            "schema": RESPONSE_SCHEMA,
            "ok": result.ok,
            "entries": entries,
            "stats": result.stats.snapshot(),
        }

    def sweep(self, payload: dict) -> dict:
        """``POST /v1/sweep`` — one parameter across a grid, coalesced."""
        from repro.analysis import sweep_parameter

        validate_request("/v1/sweep", payload, SWEEP_REQUEST)
        started = time.perf_counter()
        digest, assembly = self._assembly(payload["model"])
        service = payload["service"]
        parameter = payload["parameter"]
        points = int(payload.get("points", 20))
        fixed = {
            name: float(value)
            for name, value in (payload.get("fixed") or {}).items()
        }
        method = payload.get("method", "symbolic")
        solver = payload.get("solver", "auto")
        use_kernel = bool(payload.get("compile", True))
        fused = bool(payload.get("fused", True))
        grid = [
            float(v)
            for v in np.linspace(payload["start"], payload["stop"], points)
        ]
        key = (
            "sweep", digest, service, parameter, tuple(grid),
            tuple(sorted(fixed.items())), method, solver, use_kernel, fused,
        )

        def compute() -> dict:
            budget = self._budget(payload)
            with self._lock:
                self.evaluations += 1
            obs.count("server.evaluations")
            sweep = sweep_parameter(
                assembly, service, parameter, grid, fixed,
                method=method, cache=self.plan_cache, budget=budget,
                compile=use_kernel, solver=solver, fused=fused,
            )
            return {
                "schema": RESPONSE_SCHEMA,
                "service": service,
                "parameter": parameter,
                "method": method,
                "fixed": fixed,
                "values": [float(v) for v in sweep.values],
                "pfail": [float(p) for p in sweep.pfail],
            }

        result, coalesced = self.coalescer.run(key, compute)
        response = dict(result)
        response["coalesced"] = coalesced
        response["elapsed_seconds"] = time.perf_counter() - started
        return response

    def cache_stats(self) -> dict:
        """``GET /v1/cache-stats`` — live counters of every warm layer."""
        from repro.markov.solvers import (
            default_solver_cache,
            factorization_count,
            plan_count,
        )
        from repro.engine import fused_counts, shm_counts
        from repro.markov.updates import update_counts
        from repro.symbolic import default_kernel_cache

        solver = _stats_dict(default_solver_cache())
        solver["plans"] = plan_count()
        solver["factorizations"] = factorization_count()
        solver["updates"] = update_counts()
        return {
            "schema": RESPONSE_SCHEMA,
            "plan": _stats_dict(self.plan_cache),
            "kernel": _stats_dict(default_kernel_cache()),
            "solver": solver,
            "model": _stats_dict(self.models),
            "engine": {
                "fused": {**fused_counts(), "shm": shm_counts()},
            },
            "server": {
                "requests": self.requests,
                "evaluations": self.evaluations,
                "coalesced": self.coalescer.followers,
                "shed": self.shed,
            },
        }

    def health(self) -> dict:
        """``GET /healthz`` — liveness, uptime and request totals."""
        return {
            "schema": RESPONSE_SCHEMA,
            "status": "ok",
            "pid": os.getpid(),
            "uptime_seconds": time.monotonic() - self.started,
            "requests": {
                "total": self.requests,
                "inflight": self.inflight,
                "shed": self.shed,
            },
        }

    # -- internals ----------------------------------------------------------

    def _assembly(self, document: dict):
        """``(digest, assembly)`` for a model document, digest-cached."""
        from repro.dsl.loader import assembly_from_dict

        digest = _canonical_digest(document)
        assembly = self.models.get_or_create(
            digest, lambda: assembly_from_dict(document)
        )
        return digest, assembly

    def _budget(self, payload: dict) -> EvaluationBudget | None:
        """The request's budget: its own ``budget`` field, or the
        server default.  Fresh per computation — budgets are mutable
        consumption trackers and must never be shared across requests."""
        limits = payload.get("budget")
        if limits is None:
            limits = self.default_budget
        return EvaluationBudget.from_dict(limits)


class _Admission:
    """Context manager behind :meth:`EvaluationService.admit`."""

    __slots__ = ("_service",)

    def __init__(self, service: EvaluationService):
        self._service = service

    def __enter__(self):
        svc = self._service
        with svc._lock:
            svc.requests += 1
            if svc._inflight >= svc.max_inflight:
                svc.shed += 1
                obs.count("server.requests.shed")
                raise ServerOverloadedError(svc._inflight, svc.max_inflight)
            svc._inflight += 1
        obs.count("server.requests")
        return svc

    def __exit__(self, *exc_info):
        with self._service._lock:
            self._service._inflight -= 1
        return False
