"""``repro.server`` — reliability prediction as a long-running service.

Every one-shot CLI invocation pays the full cold path: import, plan
compilation, kernel compilation, solver factorization — and then throws
the warm caches away.  This package keeps them alive for a process
lifetime behind an HTTP surface (``python -m repro serve``), which is the
paper's §5 "reliability prediction engine" finally shaped like the broker
it was meant to serve: many callers, one warm engine.

Layering (each module only reaches down):

- :mod:`~repro.server.schema` — declarative request schemas + the
  JSON-Schema-subset validator; also the source the generated
  ``docs/api_reference.md`` is rendered from;
- :mod:`~repro.server.coalesce` — one in-flight computation per
  structural fingerprint (leader/follower);
- :mod:`~repro.server.service` — the transport-agnostic evaluation core
  over the warm plan/kernel/solver/model caches;
- :mod:`~repro.server.app` — the stdlib ``ThreadingHTTPServer`` binding,
  HTTP status taxonomy, and process lifecycle.

Embedded use (also how the doctests and tests run it)::

    from repro.server import ReproServer

    server = ReproServer(port=0)       # ephemeral port
    server.start()
    ...                                # urllib / requests against server.url
    server.stop()

See ``docs/server_guide.md`` for the endpoint walkthrough and
``docs/api_reference.md`` for the generated endpoint reference.
"""

from repro.server.app import HTTP_STATUS, ReproServer, http_status_for
from repro.server.coalesce import Coalescer
from repro.server.schema import (
    BATCH_REQUEST,
    ENDPOINTS,
    EVALUATE_REQUEST,
    SWEEP_REQUEST,
    Endpoint,
    schema_problems,
    validate_request,
)
from repro.server.service import EvaluationService

__all__ = [
    "BATCH_REQUEST",
    "Coalescer",
    "ENDPOINTS",
    "EVALUATE_REQUEST",
    "Endpoint",
    "EvaluationService",
    "HTTP_STATUS",
    "ReproServer",
    "SWEEP_REQUEST",
    "http_status_for",
    "schema_problems",
    "validate_request",
]
