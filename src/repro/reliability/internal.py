"""Internal-failure models: ``Pfail_int(A_ij)`` of section 3.2.

The paper distinguishes two cases for a request's internal failure
probability:

(a) the request is a method call on a software service — the internal
    operations are "the call of such service" only, which "could also be
    set equal to zero, if we assume that a method call is a reliable
    operation" → :func:`reliable_call` / :func:`constant_internal`;

(b) the request is ``call(cpu, N)`` — the execution of the caller's own
    code, whose failure probability must be "some function of N, according
    to some suitable software reliability model"; eq. (14) proposes
    ``1 - (1 - phi) ** N`` → :func:`per_operation_internal`.

All helpers return :class:`~repro.symbolic.Expression`\\ s over the calling
service's formal parameters, ready to be attached to a
:class:`~repro.model.requests.ServiceRequest`.
"""

from __future__ import annotations

from repro.errors import ProbabilityRangeError
from repro.symbolic import Call, Constant, Expression, ExpressionLike, as_expression

__all__ = [
    "reliable_call",
    "constant_internal",
    "per_operation_internal",
    "exponential_internal",
]


def reliable_call() -> Expression:
    """``Pfail_int = 0``: a method call assumed perfectly reliable
    (the paper's suggestion for case (a), used in section 4 for the
    ``call(sort_x, list)`` request)."""
    return Constant(0.0)


def constant_internal(probability: float) -> Expression:
    """A fixed internal failure probability per request issue.

    For case (a) when the call operation itself is *not* assumed perfect
    (e.g. a dynamic-dispatch layer with a measured defect rate).
    """
    if not 0.0 <= probability <= 1.0:
        raise ProbabilityRangeError("internal failure probability", probability)
    return Constant(float(probability))


def per_operation_internal(
    software_failure_rate: float | Expression | str, operations: ExpressionLike
) -> Expression:
    """Equation (14): ``Pfail_int(call(cpu, N)) = 1 - (1 - phi) ** N``.

    Args:
        software_failure_rate: ``phi``, the probability of a software
            failure in one operation — a number, or an expression/parameter
            name referencing an interface attribute (e.g.
            ``"software_failure_rate"``), which keeps ``phi`` visible to
            symbolic attribute-sensitivity analysis.
        operations: expression for ``N`` over the caller's formals.
    """
    if isinstance(software_failure_rate, (int, float)) and not isinstance(
        software_failure_rate, bool
    ):
        if not 0.0 <= software_failure_rate <= 1.0:
            raise ProbabilityRangeError(
                "software failure rate", software_failure_rate
            )
    phi = as_expression(software_failure_rate)
    n = as_expression(operations)
    return Constant(1.0) - (Constant(1.0) - phi) ** n


def exponential_internal(
    software_failure_rate: float | Expression | str, operations: ExpressionLike
) -> Expression:
    """Alternative software-reliability model: ``1 - exp(-phi * N)``.

    The continuous-hazard counterpart of eq. (14); for small ``phi`` the two
    agree to first order (``(1-phi)^N ~= e^(-phi*N)``), making this a useful
    cross-check model (see the MODELFORM ablation bench).
    """
    if isinstance(software_failure_rate, (int, float)) and not isinstance(
        software_failure_rate, bool
    ):
        if software_failure_rate < 0.0:
            raise ProbabilityRangeError(
                "software failure rate", software_failure_rate
            )
    phi = as_expression(software_failure_rate)
    n = as_expression(operations)
    return Constant(1.0) - Call("exp", (-(phi * n),))
