"""Time/workload-based failure models for simple services.

Section 3.1 assumes the reliability of a simple service "is a known function
of the service formal parameters" and demonstrates the exponential case
(eqs. 1 and 2).  This module generalizes that into a small library of
failure models.  Each model turns a *duration expression* (time spent, e.g.
``N / s`` for a cpu executing ``N`` operations at speed ``s``) into a
failure-probability :class:`~repro.symbolic.Expression`, so custom
:class:`~repro.model.resource.DeviceResource` services can be built from any
of them.

All models satisfy the basic sanity properties (probability in ``[0, 1]``,
monotone non-decreasing in the duration, zero failure probability for zero
duration) — property-tested in ``tests/property/test_failure_models.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError, ProbabilityRangeError
from repro.symbolic import Call, Constant, Expression, as_expression

__all__ = [
    "FailureModel",
    "ExponentialFailureModel",
    "WeibullFailureModel",
    "ConstantFailureModel",
]


class FailureModel:
    """Base class: maps a duration to a failure probability."""

    def failure_probability(self, duration: Expression | float | str) -> Expression:
        """``P(failure during 'duration')`` as a symbolic expression."""
        raise NotImplementedError

    def pfail(self, duration: float) -> float:
        """Numeric convenience: evaluate the model at a concrete duration."""
        if duration < 0:
            raise ModelError(f"duration must be non-negative, got {duration}")
        value = float(self.failure_probability(Constant(duration)).evaluate({}))
        if not 0.0 <= value <= 1.0 + 1e-12:
            raise ProbabilityRangeError("failure probability", value)
        return min(value, 1.0)


@dataclass(frozen=True)
class ExponentialFailureModel(FailureModel):
    """Constant-hazard model: ``P(fail in t) = 1 - exp(-rate * t)``.

    The model behind eqs. (1) and (2) ("assuming an exponential failure
    rate").

    Attributes:
        rate: failures per time unit (must be non-negative).
    """

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ModelError(f"exponential rate must be non-negative, got {self.rate}")

    def failure_probability(self, duration: Expression | float | str) -> Expression:
        t = as_expression(duration)
        return Constant(1.0) - Call("exp", (-(Constant(self.rate) * t),))


@dataclass(frozen=True)
class WeibullFailureModel(FailureModel):
    """Weibull model: ``P(fail in t) = 1 - exp(-(t / scale) ** shape)``.

    Captures wear-out (``shape > 1``) or infant mortality (``shape < 1``)
    for physical resources whose hazard is not constant; reduces to the
    exponential model at ``shape = 1`` with ``rate = 1/scale``.

    Attributes:
        scale: characteristic life (time units, positive).
        shape: Weibull shape parameter (positive).
    """

    scale: float
    shape: float

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ModelError(f"Weibull scale must be positive, got {self.scale}")
        if self.shape <= 0:
            raise ModelError(f"Weibull shape must be positive, got {self.shape}")

    def failure_probability(self, duration: Expression | float | str) -> Expression:
        t = as_expression(duration)
        hazard = (t / Constant(self.scale)) ** Constant(self.shape)
        return Constant(1.0) - Call("exp", (-hazard,))


@dataclass(frozen=True)
class ConstantFailureModel(FailureModel):
    """Duration-independent failure probability.

    Models per-invocation failure chances with no workload dependence (e.g.
    a flaky actuator that fails one invocation in a thousand regardless of
    the command size).

    Attributes:
        probability: the fixed per-invocation failure probability.
    """

    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ProbabilityRangeError("constant failure probability", self.probability)

    def failure_probability(self, duration: Expression | float | str) -> Expression:
        return Constant(self.probability)
