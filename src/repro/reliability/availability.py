"""Availability — releasing the paper's "no repair occurs" assumption.

The paper's section 3 fixes two assumptions: fail-stop *and* no repair.
The masking extension relaxes fail-stop; this module relaxes no-repair at
the **resource level**: a physical resource that fails and gets repaired
(rates ``lambda``/``mu``) is, at a random invocation instant, *down* with
its steady-state unavailability — one more independent failure cause in
front of the execution-time failure of eqs. (1)/(2):

    ``Pfail_avail(S, fp) = (1 - A) + A * Pfail_exec(S, fp)``

with ``A = mu / (lambda + mu)`` the steady-state availability of the
working<->failed birth-death CTMC (derived, and property-tested, via
:mod:`repro.markov.ctmc`).

This composes with everything else because it stays inside the paper's
interface contract: the wrapped resource is still a plain
:class:`~repro.model.service.SimpleService` publishing a closed-form
unreliability.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.markov.ctmc import ContinuousTimeMarkovChain
from repro.model.service import AnalyticInterface, SimpleService
from repro.symbolic import Constant, Expression

__all__ = ["SteadyStateAvailability", "with_availability"]

#: CTMC state labels of the repair model.
WORKING = "working"
FAILED = "failed"


class SteadyStateAvailability:
    """The working<->failed repair model of one resource.

    Args:
        failure_rate: ``lambda`` — failures per time unit while working.
        repair_rate: ``mu`` — repairs per time unit while failed.
    """

    def __init__(self, failure_rate: float, repair_rate: float):
        if failure_rate < 0:
            raise ModelError(f"failure rate must be non-negative, got {failure_rate}")
        if repair_rate <= 0:
            raise ModelError(
                f"repair rate must be positive, got {repair_rate} "
                f"(no repair is the paper's default — just don't wrap)"
            )
        self.failure_rate = float(failure_rate)
        self.repair_rate = float(repair_rate)

    def chain(self) -> ContinuousTimeMarkovChain:
        """The underlying two-state birth-death CTMC."""
        lam, mu = self.failure_rate, self.repair_rate
        return ContinuousTimeMarkovChain(
            (WORKING, FAILED),
            np.array([[-lam, lam], [mu, -mu]]),
        )

    @property
    def availability(self) -> float:
        """``A = mu / (lambda + mu)`` — the long-run fraction of time up."""
        return self.repair_rate / (self.failure_rate + self.repair_rate)

    @property
    def unavailability(self) -> float:
        """``1 - A``."""
        return self.failure_rate / (self.failure_rate + self.repair_rate)

    @property
    def mttf(self) -> float:
        """Mean time to failure, ``1 / lambda`` (inf for a perfect resource)."""
        if self.failure_rate == 0.0:
            return float("inf")
        return 1.0 / self.failure_rate

    @property
    def mttr(self) -> float:
        """Mean time to repair, ``1 / mu``."""
        return 1.0 / self.repair_rate


def with_availability(
    service: SimpleService,
    availability: SteadyStateAvailability | float,
    name: str | None = None,
) -> SimpleService:
    """Wrap a simple service with steady-state unavailability.

    The wrapped service fails an invocation when the resource is down at
    the invocation instant *or* the execution itself fails:

        ``Pfail' = (1 - A) + A * Pfail``

    Args:
        service: the execution-time service (e.g. a
            :class:`~repro.model.resource.CpuResource` service).
        availability: a :class:`SteadyStateAvailability` model, or a bare
            availability value in (0, 1].
        name: name of the wrapped service (default: ``"<name>+avail"``).
    """
    if isinstance(availability, SteadyStateAvailability):
        a = availability.availability
        extra_attributes = {
            "availability": a,
            "repair_rate": availability.repair_rate,
        }
    else:
        a = float(availability)
        extra_attributes = {"availability": a}
    if not 0.0 < a <= 1.0:
        raise ModelError(f"availability must be in (0, 1], got {a}")

    pfail: Expression = (
        Constant(1.0 - a) + Constant(a) * service.failure_probability
    )
    interface = AnalyticInterface(
        formal_parameters=service.interface.formal_parameters,
        attributes={**dict(service.interface.attributes), **extra_attributes},
        description=(
            f"{service.interface.description} "
            f"[with steady-state availability {a:.6g}]"
        ).strip(),
    )
    cls = type(service)  # preserves SimpleConnector for connector services
    return cls(
        name or f"{service.name}+avail", interface, pfail,
        duration=service.duration,
    )
