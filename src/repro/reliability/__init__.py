"""Failure-model library for simple services and internal failures.

Implements the exponential models behind eqs. (1)–(2), the
software-reliability internal model of eq. (14), and extension models
(Weibull, constant, exponential-in-operations).
"""

from repro.reliability.availability import (
    SteadyStateAvailability,
    with_availability,
)
from repro.reliability.failure_models import (
    ConstantFailureModel,
    ExponentialFailureModel,
    FailureModel,
    WeibullFailureModel,
)
from repro.reliability.internal import (
    constant_internal,
    exponential_internal,
    per_operation_internal,
    reliable_call,
)

__all__ = [
    "ConstantFailureModel",
    "SteadyStateAvailability",
    "ExponentialFailureModel",
    "FailureModel",
    "WeibullFailureModel",
    "constant_internal",
    "exponential_internal",
    "per_operation_internal",
    "reliable_call",
    "with_availability",
]
