"""repro.engine — parallel batch evaluation with plan caching.

The scaling layer of the library: where :mod:`repro.core` answers *one*
question about *one* model, this package answers many questions about many
models — the workload of the paper's §5 runtime selection loops — by
compiling models into reusable plans, caching them under structural
fingerprints, and fanning independent evaluations across a worker pool.

Modules:

- :mod:`repro.engine.fingerprint` — canonical SHA-256 fingerprints of
  assemblies; equal fingerprint ⇔ identical evaluation results, and any
  attribute or structural change invalidates.
- :mod:`repro.engine.plan` — picklable :class:`EvaluationPlan` objects:
  the symbolic closed form (or a robust-chain solve skeleton) compiled
  once, evaluated at any number of points, shippable to worker processes.
- :mod:`repro.engine.cache` — the thread-safe, LRU-bounded
  :class:`PlanCache` with hit/miss statistics.
- :mod:`repro.engine.parallel` — executor plumbing, picklable worker
  functions, and cooperative :class:`~repro.runtime.EvaluationBudget`
  enforcement across workers.
- :mod:`repro.engine.shm` — the zero-pickle shared-memory transport for
  heavy (robust/Monte-Carlo) workloads: model documents and result rows
  travel through ``multiprocessing.shared_memory`` segments owned (and
  always reclaimed) by the parent.
- :mod:`repro.engine.batch` — the :class:`BatchEngine` façade tying it
  together, with per-entry error isolation and fused stacked-kernel
  execution of same-fingerprint symbolic groups.

The engine also powers ``--jobs N`` on the CLI (``repro batch``,
``repro sweep``, ``repro fuzz``), parallel grids in
:mod:`repro.analysis.sweep`, Monte-Carlo trial blocks in
:mod:`repro.simulation`, and fuzz fan-out in :mod:`repro.robustness`.
See ``docs/architecture.md`` for where this layer sits and
``docs/performance_guide.md`` for tuning guidance.
"""

from repro.engine.batch import (
    BatchEngine,
    BatchEntry,
    BatchRequest,
    BatchResult,
    BatchStats,
)
from repro.engine.cache import CacheStats, PlanCache, default_cache
from repro.engine.fingerprint import (
    assembly_fingerprint,
    canonical_json,
    plan_key,
    service_fingerprint,
)
from repro.engine.parallel import (
    fused_counts,
    make_executor,
    reset_fused_counts,
    resolve_jobs,
    split_evenly,
)
from repro.engine.plan import (
    EvaluationPlan,
    compilation_count,
    compile_plan,
    reset_counters,
)
from repro.engine.shm import ShmWorkspace, reset_shm_counts, shm_counts

__all__ = [
    "BatchEngine",
    "BatchEntry",
    "BatchRequest",
    "BatchResult",
    "BatchStats",
    "CacheStats",
    "EvaluationPlan",
    "PlanCache",
    "ShmWorkspace",
    "assembly_fingerprint",
    "canonical_json",
    "compilation_count",
    "compile_plan",
    "default_cache",
    "fused_counts",
    "make_executor",
    "plan_key",
    "reset_counters",
    "reset_fused_counts",
    "reset_shm_counts",
    "resolve_jobs",
    "service_fingerprint",
    "shm_counts",
    "split_evenly",
]
