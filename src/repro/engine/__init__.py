"""repro.engine — parallel batch evaluation with plan caching.

The scaling layer of the library: where :mod:`repro.core` answers *one*
question about *one* model, this package answers many questions about many
models — the workload of the paper's §5 runtime selection loops — by
compiling models into reusable plans, caching them under structural
fingerprints, and fanning independent evaluations across a worker pool.

Modules:

- :mod:`repro.engine.fingerprint` — canonical SHA-256 fingerprints of
  assemblies; equal fingerprint ⇔ identical evaluation results, and any
  attribute or structural change invalidates.
- :mod:`repro.engine.plan` — picklable :class:`EvaluationPlan` objects:
  the symbolic closed form (or a robust-chain solve skeleton) compiled
  once, evaluated at any number of points, shippable to worker processes.
- :mod:`repro.engine.cache` — the thread-safe, LRU-bounded
  :class:`PlanCache` with hit/miss statistics.
- :mod:`repro.engine.parallel` — executor plumbing, picklable worker
  functions, and cooperative :class:`~repro.runtime.EvaluationBudget`
  enforcement across workers.
- :mod:`repro.engine.batch` — the :class:`BatchEngine` façade tying it
  together, with per-entry error isolation.

The engine also powers ``--jobs N`` on the CLI (``repro batch``,
``repro sweep``, ``repro fuzz``), parallel grids in
:mod:`repro.analysis.sweep`, Monte-Carlo trial blocks in
:mod:`repro.simulation`, and fuzz fan-out in :mod:`repro.robustness`.
See ``docs/architecture.md`` for where this layer sits and
``docs/performance_guide.md`` for tuning guidance.
"""

from repro.engine.batch import (
    BatchEngine,
    BatchEntry,
    BatchRequest,
    BatchResult,
    BatchStats,
)
from repro.engine.cache import CacheStats, PlanCache, default_cache
from repro.engine.fingerprint import (
    assembly_fingerprint,
    canonical_json,
    plan_key,
    service_fingerprint,
)
from repro.engine.parallel import make_executor, resolve_jobs, split_evenly
from repro.engine.plan import (
    EvaluationPlan,
    compilation_count,
    compile_plan,
    reset_counters,
)

__all__ = [
    "BatchEngine",
    "BatchEntry",
    "BatchRequest",
    "BatchResult",
    "BatchStats",
    "CacheStats",
    "EvaluationPlan",
    "PlanCache",
    "assembly_fingerprint",
    "canonical_json",
    "compilation_count",
    "compile_plan",
    "default_cache",
    "make_executor",
    "plan_key",
    "reset_counters",
    "resolve_jobs",
    "service_fingerprint",
    "split_evenly",
]
