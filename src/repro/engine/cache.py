"""The plan cache: one derivation per distinct model, ever.

Batch workloads — multi-model comparisons, parameter grids, Monte-Carlo
blocks, fuzzing sweeps — evaluate the *same* assembly at many points, and
the expensive part (the symbolic derivation or solve-skeleton build) is
identical across those points.  :class:`PlanCache` memoizes compiled
:class:`~repro.engine.plan.EvaluationPlan` objects under their
:func:`~repro.engine.fingerprint.plan_key`:

- **hit**  — the fingerprint matches a cached plan: no derivation runs;
- **miss** — first sight of this (model, service, mode): compile and keep;
- **invalidation is automatic** — mutating the model (an attribute, a
  transition, a binding) changes the fingerprint, so the stale plan is
  simply never looked up again; a bounded cache evicts it in LRU order.

The cache is thread-safe (a single lock around the index; compilation runs
outside it so concurrent misses on *different* models don't serialize) and
its :class:`CacheStats` are the observable the cache-correctness tests and
``BENCH_engine.json`` report: hits, misses, evictions, and the hit rate.

A process-wide default instance (:func:`default_cache`) backs the CLI and
the convenience APIs; long-lived services embedding the engine should own
per-tenant instances instead.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.engine.fingerprint import plan_key
from repro.engine.plan import EvaluationPlan, compile_plan
from repro.errors import EvaluationError
from repro.model.assembly import Assembly
from repro.model.service import Service
from repro.runtime.budget import EvaluationBudget

__all__ = ["CacheStats", "PlanCache", "default_cache"]


@dataclass
class CacheStats:
    """Observable counters of one :class:`PlanCache`.

    Attributes:
        hits: lookups served from the cache (no derivation ran).
        misses: lookups that compiled a fresh plan.
        evictions: plans dropped by the LRU bound.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy (for JSON reporters and logs)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """A bounded, thread-safe, fingerprint-keyed store of compiled plans.

    Args:
        max_size: maximum number of cached plans; the least recently used
            plan is evicted past the bound.  ``None`` means unbounded.
    """

    def __init__(self, max_size: int | None = 128):
        if max_size is not None and max_size < 1:
            raise EvaluationError(
                f"plan cache max_size must be positive, got {max_size!r}"
            )
        self.max_size = max_size
        self.stats = CacheStats()
        self._plans: OrderedDict[tuple, EvaluationPlan] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._plans)

    def get(
        self,
        assembly: Assembly,
        service: str | Service,
        symbolic_attributes: bool = False,
    ) -> EvaluationPlan | None:
        """The cached plan for this (model, service, mode), or ``None``.

        Does not update hit/miss statistics; use :meth:`get_or_compile`
        for the accounted path.
        """
        key = plan_key(assembly, service, symbolic_attributes)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
            return plan

    def get_or_compile(
        self,
        assembly: Assembly,
        service: str | Service,
        *,
        symbolic_attributes: bool = False,
        backend: str = "auto",
        budget: EvaluationBudget | None = None,
    ) -> EvaluationPlan:
        """The plan for this (model, service, mode), compiling on miss.

        Compilation runs outside the cache lock, so two threads missing on
        *different* models compile concurrently; two threads racing on the
        *same* key may both compile, and the first store wins (plans for
        equal fingerprints are interchangeable, so this is only duplicated
        work, never wrong answers).
        """
        key = plan_key(assembly, service, symbolic_attributes)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.stats.hits += 1
                return plan
            self.stats.misses += 1
        plan = compile_plan(
            assembly,
            service,
            symbolic_attributes=symbolic_attributes,
            backend=backend,
            budget=budget,
        )
        self.put(key, plan)
        return plan

    def put(self, key: tuple, plan: EvaluationPlan) -> None:
        """Store a compiled plan under its key, evicting past the bound."""
        with self._lock:
            if key not in self._plans and self.max_size is not None:
                while len(self._plans) >= self.max_size:
                    self._plans.popitem(last=False)
                    self.stats.evictions += 1
            self._plans[key] = plan
            self._plans.move_to_end(key)

    def clear(self) -> None:
        """Drop every cached plan (statistics are kept)."""
        with self._lock:
            self._plans.clear()


_default_cache: PlanCache | None = None
_default_lock = threading.Lock()


def default_cache() -> PlanCache:
    """The process-wide shared :class:`PlanCache` (created on first use)."""
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            _default_cache = PlanCache()
        return _default_cache
