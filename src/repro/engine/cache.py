"""The plan cache: one derivation per distinct model, ever.

Batch workloads — multi-model comparisons, parameter grids, Monte-Carlo
blocks, fuzzing sweeps — evaluate the *same* assembly at many points, and
the expensive part (the symbolic derivation or solve-skeleton build) is
identical across those points.  :class:`PlanCache` memoizes compiled
:class:`~repro.engine.plan.EvaluationPlan` objects under their
:func:`~repro.engine.fingerprint.plan_key`:

- **hit**  — the fingerprint matches a cached plan: no derivation runs;
- **miss** — first sight of this (model, service, mode): compile and keep;
- **invalidation is automatic** — mutating the model (an attribute, a
  transition, a binding) changes the fingerprint, so the stale plan is
  simply never looked up again; a bounded cache evicts it in LRU order.

The LRU substrate (thread-safe index, factory-outside-the-lock miss
handling, hit/miss/eviction statistics) is the shared
:class:`repro.caching.LRUCache` — the same machinery that backs the
symbolic compiler's :class:`~repro.symbolic.compiler.KernelCache` — so the
:class:`~repro.caching.CacheStats` observable here and in
``BENCH_engine.json`` reads identically across both caches.

A process-wide default instance (:func:`default_cache`) backs the CLI and
the convenience APIs; long-lived services embedding the engine should own
per-tenant instances instead.
"""

from __future__ import annotations

import threading

from repro.caching import CacheStats, LRUCache
from repro.engine.fingerprint import plan_key
from repro.engine.plan import EvaluationPlan, compile_plan
from repro.errors import EvaluationError
from repro.model.assembly import Assembly
from repro.model.service import Service
from repro.runtime.budget import EvaluationBudget

__all__ = ["CacheStats", "PlanCache", "default_cache"]


class PlanCache:
    """A bounded, thread-safe, fingerprint-keyed store of compiled plans.

    Args:
        max_size: maximum number of cached plans; the least recently used
            plan is evicted past the bound.  ``None`` means unbounded.
    """

    def __init__(self, max_size: int | None = 128):
        if max_size is not None and max_size < 1:
            raise EvaluationError(
                f"plan cache max_size must be positive, got {max_size!r}"
            )
        self._lru = LRUCache(max_size, name="plan")

    @property
    def max_size(self) -> int | None:
        return self._lru.max_size

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters of this cache."""
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    def get(
        self,
        assembly: Assembly,
        service: str | Service,
        symbolic_attributes: bool = False,
        solver: str = "auto",
        incremental: bool = False,
    ) -> EvaluationPlan | None:
        """The cached plan for this (model, service, mode), or ``None``.

        Does not update hit/miss statistics; use :meth:`get_or_compile`
        for the accounted path.
        """
        return self._lru.get(
            plan_key(assembly, service, symbolic_attributes, solver,
                     incremental)
        )

    def get_or_compile(
        self,
        assembly: Assembly,
        service: str | Service,
        *,
        symbolic_attributes: bool = False,
        backend: str = "auto",
        budget: EvaluationBudget | None = None,
        solver: str = "auto",
        incremental: bool = False,
    ) -> EvaluationPlan:
        """The plan for this (model, service, mode), compiling on miss.

        Compilation runs outside the cache lock, so two threads missing on
        *different* models compile concurrently; two threads racing on the
        *same* key may both compile, and the first store wins (plans for
        equal fingerprints are interchangeable, so this is only duplicated
        work, never wrong answers).
        """
        key = plan_key(assembly, service, symbolic_attributes, solver,
                       incremental)
        return self._lru.get_or_create(
            key,
            lambda: compile_plan(
                assembly,
                service,
                symbolic_attributes=symbolic_attributes,
                backend=backend,
                budget=budget,
                solver=solver,
                incremental=incremental,
            ),
        )

    def put(self, key: tuple, plan: EvaluationPlan) -> None:
        """Store a compiled plan under its key, evicting past the bound."""
        self._lru.put(key, plan)

    def clear(self) -> None:
        """Drop every cached plan (statistics are kept)."""
        self._lru.clear()


_default_cache: PlanCache | None = None
_default_lock = threading.Lock()


def default_cache() -> PlanCache:
    """The process-wide shared :class:`PlanCache` (created on first use)."""
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            _default_cache = PlanCache()
        return _default_cache
