"""Reusable, picklable evaluation plans.

Every evaluation backend in this library front-loads work that depends only
on the *model* (deriving closed forms, validating structure, building solve
skeletons) and then repeats it for every point of a sweep, every trial
block, every batch entry.  An :class:`EvaluationPlan` hoists that
model-dependent work out of the per-point loop once and for all:

- the **symbolic** backend compiles to the service's closed-form
  :class:`~repro.symbolic.Expression` — evaluating a point is one
  (vectorizable) expression evaluation, no matrix solves at all;
- the **robust** backend (the fallback for models the symbolic derivation
  refuses, e.g. cyclic assemblies) compiles to a *solve skeleton*: the
  canonical JSON of the assembly plus the degradation-chain configuration,
  rebuilt into a per-process :class:`~repro.runtime.RobustEvaluator` on
  first use.

Plans are deliberately **picklable** (expressions are plain AST objects;
assemblies travel as canonical JSON because live ``Assembly`` objects do
not pickle), so a plan compiled once in the parent process can be shipped
to every worker of a :class:`~repro.engine.batch.BatchEngine` pool.  Each
plan records the :func:`~repro.engine.fingerprint.assembly_fingerprint` it
was compiled from, which is what the plan cache keys on.

Module-level counters (:func:`compilation_count`, :func:`reset_counters`)
record how many plan compilations — i.e. real symbolic derivations or
skeleton builds — have happened in this process.  The cache-correctness
tests assert "warm cache ⇒ zero re-derivations" directly against them.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping, Sequence

import numpy as np

from repro import observability as obs
from repro.engine.fingerprint import canonical_json, service_fingerprint
from repro.errors import (
    BudgetExceededError,
    CyclicAssemblyError,
    EvaluationError,
    SymbolicError,
    UnboundParameterError,
)
from repro.model.assembly import Assembly
from repro.model.service import Service
from repro.runtime.budget import EvaluationBudget
from repro.runtime.guards import check_probability, check_unit_interval_array
from repro.symbolic import Expression
from repro.symbolic.compiler import CompiledKernel, compile_expression

__all__ = [
    "EvaluationPlan",
    "compile_plan",
    "compilation_count",
    "reset_counters",
]

_counter_lock = threading.Lock()
_compilations = 0


def compilation_count() -> int:
    """Number of real plan compilations performed by this process."""
    return _compilations


def reset_counters() -> None:
    """Zero the compilation counter (test isolation helper)."""
    global _compilations
    with _counter_lock:
        _compilations = 0


def _charge_compilation() -> None:
    global _compilations
    with _counter_lock:
        _compilations += 1
    # mirrored onto the metrics registry (no-op unless collection is on);
    # the module counter stays the in-process compatibility surface
    obs.count("plan.compilations")


class EvaluationPlan:
    """One compiled evaluation target, reusable across points and workers.

    Attributes:
        service: the evaluated service name.
        fingerprint: the :func:`~repro.engine.fingerprint.service_fingerprint`
            of the (assembly, service) pair the plan was compiled from —
            plans with equal fingerprints are interchangeable.
        backend: ``"symbolic"`` (closed form) or ``"robust"`` (degradation
            chain rebuilt per process).
        formals: the service's formal parameter names.
        symbolic_attributes: whether interface attributes were left free
            (``service::attribute`` symbols) at compilation.
        solver: linear-solver backend used by a robust plan's numeric
            tiers (``"auto"``, ``"dense"`` or ``"sparse"``; symbolic
            plans never solve, so they merely record it).
        incremental: whether a robust plan's numeric tiers serve
            repeated-structure solves through low-rank factorization
            updates (:mod:`repro.markov.updates`) — consecutive points of
            a numeric sweep/bisection then diff into row-deltas against
            the cached base factorization instead of re-factoring.
    """

    def __init__(
        self,
        service: str,
        fingerprint: str,
        backend: str,
        formals: tuple[str, ...],
        expression: Expression | None = None,
        assembly_json: str | None = None,
        symbolic_attributes: bool = False,
        solver: str = "auto",
        incremental: bool = False,
    ):
        if backend not in ("symbolic", "robust"):
            raise EvaluationError(f"unknown plan backend {backend!r}")
        if backend == "symbolic" and expression is None:
            raise EvaluationError("a symbolic plan needs an expression")
        if backend == "robust" and assembly_json is None:
            raise EvaluationError("a robust plan needs the assembly JSON")
        self.service = service
        self.fingerprint = fingerprint
        self.backend = backend
        self.formals = tuple(formals)
        self.expression = expression
        self.assembly_json = assembly_json
        self.symbolic_attributes = bool(symbolic_attributes)
        from repro.markov.solvers import validate_solver

        self.solver = validate_solver(solver)
        self.incremental = bool(incremental)
        self._evaluator = None  # per-process, rebuilt after pickling
        self._kernel_obj = None  # lazy CompiledKernel, rebuilt after pickling

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_evaluator"] = None  # evaluators hold live assemblies
        state["_kernel_obj"] = None  # kernels hold thread-local buffers
        return state

    # -- evaluation --------------------------------------------------------

    def kernel(self) -> CompiledKernel | None:
        """The compiled numpy kernel of a symbolic plan (lazy, memoized
        through the process-wide kernel cache; ``None`` for robust plans)."""
        if self.backend != "symbolic":
            return None
        if self._kernel_obj is None:
            self._kernel_obj = compile_expression(self.expression)
        return self._kernel_obj

    def pfail(
        self,
        actuals: Mapping[str, float] | None = None,
        *,
        budget: EvaluationBudget | None = None,
        use_kernel: bool = True,
        **kwargs: float,
    ) -> float:
        """``Pfail(service, actuals)`` through the compiled backend.

        Actuals may be passed as a mapping, as keyword arguments, or both
        (keywords win).  Extra bindings are ignored by the symbolic
        backend (closed forms often eliminate parameters), so batch
        callers can pass one uniform binding set.  ``use_kernel=False``
        forces the recursive tree walk instead of the compiled kernel.
        """
        bound = {**(dict(actuals) if actuals else {}), **kwargs}
        if budget is not None:
            budget.check_deadline(f"plan evaluation of {self.service!r}")
        if self.backend == "symbolic":
            env = {name: float(value) for name, value in bound.items()}
            target = self.kernel() if use_kernel else self.expression
            value = float(np.asarray(target.evaluate(env), dtype=float))
            return check_probability(f"Pfail({self.service})", value)
        evaluator = self._robust_evaluator(budget)
        relevant = {k: v for k, v in bound.items() if k in self.formals}
        return float(evaluator.evaluate(self.service, **relevant).pfail)

    def reliability(
        self,
        actuals: Mapping[str, float] | None = None,
        *,
        budget: EvaluationBudget | None = None,
        **kwargs: float,
    ) -> float:
        """``1 - Pfail`` through the compiled backend."""
        return 1.0 - self.pfail(actuals, budget=budget, **kwargs)

    def pfail_grid(
        self,
        parameter: str,
        values: Sequence[float] | np.ndarray,
        fixed: Mapping[str, float] | None = None,
        *,
        budget: EvaluationBudget | None = None,
        use_kernel: bool = True,
    ) -> np.ndarray:
        """``Pfail`` over a whole grid of one parameter.

        The symbolic backend evaluates the closed form vectorized over the
        numpy array — through the compiled kernel by default
        (``use_kernel=False`` falls back to the recursive tree walk); the
        robust backend falls back to a per-point loop with cooperative
        deadline checks.
        """
        grid = np.asarray(values, dtype=float)
        if grid.ndim != 1 or grid.size == 0:
            raise EvaluationError("grid values must be a non-empty 1-D sequence")
        fixed = dict(fixed or {})
        if budget is not None:
            budget.check_deadline(f"grid evaluation of {self.service!r}")
        if self.backend == "symbolic":
            env = {**{k: float(v) for k, v in fixed.items()}, parameter: grid}
            target = self.kernel() if use_kernel else self.expression
            result = np.asarray(target.evaluate(env), dtype=float)
            if result.shape == grid.shape:
                # the kernel's final op allocates a fresh array, so the
                # result is safe to hand out — unless the closed form
                # degenerates to the bare parameter and "result" is the
                # caller's own grid
                if np.shares_memory(result, grid):
                    return result.copy()
                return result
            # the closed form eliminated the swept parameter: a scalar
            return np.full(grid.shape, float(result))
        out = np.empty(grid.shape, dtype=float)
        env = dict(fixed)
        for i, value in enumerate(grid):
            env[parameter] = float(value)
            try:
                out[i] = self.pfail(env, budget=budget)
            except BudgetExceededError as exc:
                exc.add_note(self._partial_note("grid", i, grid.size))
                raise
        return out

    def pfail_stack(
        self,
        points: Sequence[Mapping[str, float]],
        *,
        budget: EvaluationBudget | None = None,
        use_kernel: bool = True,
    ) -> np.ndarray:
        """``Pfail`` at many independent points in one fused pass.

        ``points`` is a sequence of actual-parameter bindings — the shape a
        batch engine holds after grouping same-fingerprint requests.  The
        symbolic backend stacks each parameter into one ``(n,)`` column and
        runs the compiled kernel **once** over the stack (no per-point
        Python dispatch, no per-point dict building), returning results
        bitwise-identical to ``n`` :meth:`pfail` calls.  A point missing a
        parameter the closed form needs raises
        :class:`~repro.errors.UnboundParameterError`, exactly as the
        per-point path would.

        The robust backend keeps its per-point loop (each point is a full
        degradation-chain evaluation); a budget deadline hit mid-stack
        raises with a partial-progress note rather than silently
        truncating.
        """
        points = [dict(point) for point in points]
        n = len(points)
        if n == 0:
            raise EvaluationError("pfail_stack needs at least one point")
        if budget is not None:
            budget.check_deadline(f"stacked evaluation of {self.service!r}")
        if self.backend == "symbolic":
            kernel = self.kernel() if use_kernel else None
            if kernel is not None:
                names = kernel.parameters
            else:
                names = tuple(sorted(self.expression.free_parameters()))
            columns: dict[str, np.ndarray] = {}
            for name in names:
                try:
                    columns[name] = np.fromiter(
                        (point[name] for point in points), dtype=float, count=n
                    )
                except KeyError:
                    raise UnboundParameterError(name) from None
            if kernel is not None:
                stacked = kernel.evaluate_stack(columns, n)
            else:
                value = np.asarray(
                    self.expression.evaluate(columns), dtype=float
                )
                if value.shape == (n,):
                    stacked = value
                else:
                    stacked = np.full(n, float(value))
            return check_unit_interval_array(
                f"Pfail({self.service})", stacked
            )
        out = np.empty(n, dtype=float)
        for i, point in enumerate(points):
            try:
                out[i] = self.pfail(point, budget=budget)
            except BudgetExceededError as exc:
                exc.add_note(self._partial_note("stacked", i, n))
                raise
        return out

    def _partial_note(self, what: str, done: int, total: int) -> str:
        return (
            f"{what} evaluation of {self.service!r} stopped at point "
            f"{done + 1}/{total} ({done} completed); partial results "
            "discarded"
        )

    # -- internals ---------------------------------------------------------

    def _robust_evaluator(self, budget: EvaluationBudget | None):
        from repro.dsl import load_assembly
        from repro.runtime.robust import RobustEvaluator

        if self._evaluator is None:
            assembly = load_assembly(self.assembly_json)
            self._evaluator = RobustEvaluator(
                assembly, budget=budget, solver=self.solver,
                incremental=self.incremental,
            )
        elif budget is not None:
            self._evaluator.budget = budget
        return self._evaluator

    def __repr__(self) -> str:
        return (
            f"EvaluationPlan({self.service!r}, backend={self.backend!r}, "
            f"fingerprint={self.fingerprint[:12]}...)"
        )


def compile_plan(
    assembly: Assembly,
    service: str | Service,
    *,
    symbolic_attributes: bool = False,
    backend: str = "auto",
    budget: EvaluationBudget | None = None,
    solver: str = "auto",
    incremental: bool = False,
) -> EvaluationPlan:
    """Compile an (assembly, service) pair into an :class:`EvaluationPlan`.

    Args:
        assembly: the assembly to compile against.
        service: the evaluation target.
        symbolic_attributes: leave interface attributes free (for
            attribute sweeps/sensitivities); symbolic backend only.
        backend: ``"symbolic"``, ``"robust"``, or ``"auto"`` (try the
            closed-form derivation, fall back to the robust skeleton when
            the assembly is cyclic or the derivation fails with a typed
            symbolic error).
        budget: optional budget charged during the derivation.
        solver: linear-solver backend recorded on the plan and used by
            robust plans' numeric tiers (see :mod:`repro.markov.solvers`).
        incremental: record the low-rank-update opt-in on the plan (robust
            numeric tiers only; see :mod:`repro.markov.updates`).

    Every call performs real work and bumps :func:`compilation_count`;
    reuse compiled plans through :class:`repro.engine.cache.PlanCache`
    rather than calling this in a loop.
    """
    from repro.core.symbolic_evaluator import SymbolicEvaluator

    name = service.name if isinstance(service, Service) else str(service)
    svc = assembly.service(name)
    fingerprint = service_fingerprint(assembly, name)
    if backend not in ("auto", "symbolic", "robust"):
        raise EvaluationError(f"unknown plan backend {backend!r}")

    _charge_compilation()

    with obs.span("plan.compile", service=name, requested=backend) as sp:
        if backend in ("auto", "symbolic"):
            try:
                expression = SymbolicEvaluator(
                    assembly,
                    symbolic_attributes=symbolic_attributes,
                    budget=budget,
                ).pfail_expression(name)
            except (CyclicAssemblyError, SymbolicError):
                if backend == "symbolic":
                    raise
            else:
                sp.set_tag(backend="symbolic")
                obs.count("plan.compiled.symbolic")
                return EvaluationPlan(
                    name,
                    fingerprint,
                    "symbolic",
                    svc.formal_parameters,
                    expression=expression,
                    symbolic_attributes=symbolic_attributes,
                    solver=solver,
                    incremental=incremental,
                )

        if symbolic_attributes:
            raise EvaluationError(
                "symbolic_attributes requires the symbolic backend; the robust "
                "skeleton binds attributes numerically"
            )
        sp.set_tag(backend="robust")
        obs.count("plan.compiled.robust")
        return EvaluationPlan(
            name,
            fingerprint,
            "robust",
            svc.formal_parameters,
            assembly_json=canonical_json(assembly),
            solver=solver,
            incremental=incremental,
        )
