"""Zero-pickle shared-memory transport for heavy parallel workloads.

The process-pool path ships every payload — model JSON, point dicts,
result floats — through pickle.  For microsecond-scale compiled kernels
that overhead inverts the speedup entirely (the fused in-parent path is
the answer there), but even for the genuinely heavy workloads — sparse
Markov solves, Monte-Carlo — pickling the model document once per chunk
and one result object per entry is pure tax.  This module moves those
workloads onto :mod:`multiprocessing.shared_memory`:

- the parent lays out one **workspace** per fan-out: the canonical model
  document as a byte segment, the stacked actual-parameter matrix (rows =
  entries, columns = the plan's formal parameters) with a presence mask
  (absent actuals must stay absent — ``NaN`` is a legal user value), and
  result/status rows the workers fill in place;
- workers attach by segment *name* (the only thing pickled is a small
  spec dict), rebuild the evaluator from the shared document — cached per
  worker process by content digest, so pool reuse skips the JSON parse
  and skeleton build — and write result rows directly into the shared
  arrays.  Only typed :class:`~repro.engine.parallel.WorkerFailure`
  records travel back through the future;
- **lifecycle survives worker SIGKILL**: the parent owns every segment
  and closes + unlinks them in its ``finally`` (same discipline as the
  workunits supervisor's pool teardown), a module-level registry backed
  by a single ``atexit`` hook drains anything a crashed caller leaked,
  and workers suppress the duplicate resource-tracker registration an
  attach would otherwise create — without that, trackers both warn about
  and double-unlink segments the parent already released at interpreter
  shutdown (the duplicate-teardown warnings seen under ``--chaos`` runs).

Status rows double as crash forensics: a row still ``0`` (unset) after a
``BrokenProcessPool`` identifies exactly which entries the dead worker
never served.
"""

from __future__ import annotations

import atexit
import hashlib
import threading
import time
import warnings

import numpy as np

from repro import observability as obs
from repro.engine.parallel import (
    WorkerFailure,
    _begin_worker_observation,
    _ship_worker_observation,
    worker_budget,
)
from repro.errors import ReproError

try:  # pragma: no cover - present on every supported CPython
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None
    resource_tracker = None

__all__ = [
    "ShmWorkspace",
    "available",
    "reset_shm_counts",
    "shm_counts",
    "shm_numeric_sweep_rows",
    "shm_plan_rows",
]

#: Row status codes written by workers.
ROW_UNSET, ROW_OK, ROW_FAILED = 0, 1, 2


# ---------------------------------------------------------------------------
# availability + counters
# ---------------------------------------------------------------------------

_probe_lock = threading.Lock()
_probe_result: bool | None = None


def available() -> bool:
    """Whether shared-memory segments actually work on this platform.

    Probed once per process: some sandboxes import
    :mod:`multiprocessing.shared_memory` fine but refuse the underlying
    ``shm_open``.
    """
    global _probe_result
    if _probe_result is None:
        with _probe_lock:
            if _probe_result is None:
                if shared_memory is None:
                    _probe_result = False
                else:
                    try:
                        probe = shared_memory.SharedMemory(create=True, size=16)
                        probe.close()
                        probe.unlink()
                        _probe_result = True
                    except OSError:
                        _probe_result = False
    return _probe_result


_counts_lock = threading.Lock()
_counts = {"segments": 0, "rows": 0}


def shm_counts() -> dict:
    """Process-wide shared-memory transport counters (``segments`` created
    by this process, result ``rows`` served through them)."""
    with _counts_lock:
        return dict(_counts)


def reset_shm_counts() -> None:
    """Zero the transport counters (test isolation helper)."""
    with _counts_lock:
        for key in _counts:
            _counts[key] = 0


def _charge(segments: int = 0, rows: int = 0) -> None:
    with _counts_lock:
        _counts["segments"] += segments
        _counts["rows"] += rows
    if segments:
        obs.count("engine.fused.shm.segments", segments)
    if rows:
        obs.count("engine.fused.shm.rows", rows)


# ---------------------------------------------------------------------------
# leak backstop: one atexit hook drains workspaces a caller never closed
# ---------------------------------------------------------------------------

_live_lock = threading.Lock()
_live: set = set()
_atexit_registered = False


def _track(workspace: "ShmWorkspace") -> None:
    global _atexit_registered
    with _live_lock:
        _live.add(workspace)
        if not _atexit_registered:
            # registered lazily (and exactly once) so it runs *before*
            # multiprocessing's own atexit machinery — atexit is LIFO and
            # multiprocessing registers at import, long before the first
            # workspace exists
            atexit.register(_drain_at_exit)
            _atexit_registered = True


def _untrack(workspace: "ShmWorkspace") -> None:
    with _live_lock:
        _live.discard(workspace)


def _drain_at_exit() -> None:  # pragma: no cover - interpreter shutdown
    """Release workspaces leaked by callers that died mid-flight.

    Runs once, silently: every close here is a *backstop* for a teardown
    that already failed loudly elsewhere, and duplicate resource-tracker
    chatter at shutdown is exactly the noise this hook exists to remove.
    """
    with _live_lock:
        leftover = list(_live)
        _live.clear()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for workspace in leftover:
            workspace.close()


_attach_lock = threading.Lock()


def _attach(name: str):
    """Worker-side attach that leaves lifecycle ownership with the parent.

    Attaching by name registers the segment with a resource tracker a
    *second* time, and ``close()`` never unregisters.  In a forked worker
    the tracker is the parent's (so the parent's later unlink-time
    unregister would miss and the tracker complains); in a spawned worker
    it is a private tracker that double-unlinks and warns about leaked
    segments at worker exit.  Either way the fix is the same — the parent
    owns create *and* unlink, so an attach must not register at all
    (CPython grows a ``track=False`` kwarg for exactly this in 3.13; this
    is the standard back-port).
    """
    with _attach_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


# ---------------------------------------------------------------------------
# parent-side workspace
# ---------------------------------------------------------------------------


class ShmWorkspace:
    """Parent-owned shared segments for one fan-out.

    Holds one byte segment for the model document plus named float/uint8
    arrays (points, mask, results, status).  ``close()`` is idempotent and
    both closes and unlinks every segment; it runs from the caller's
    ``finally`` even when the pool broke, and the module ``atexit`` hook
    drains anything that still slipped through.
    """

    def __init__(self) -> None:
        self._segments: dict[str, "shared_memory.SharedMemory"] = {}
        self._arrays: dict[str, tuple[str, tuple, str]] = {}
        self._views: dict[str, np.ndarray] = {}
        self._doc_size = 0
        self._closed = False

    @classmethod
    def create(cls, doc: bytes, arrays: dict) -> "ShmWorkspace":
        """Lay out a workspace: ``doc`` bytes plus ``{key: (shape, dtype)}``
        arrays, all zero-initialized."""
        if not available():
            raise ReproError("shared-memory transport is unavailable")
        workspace = cls()
        try:
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, len(doc))
            )
            segment.buf[: len(doc)] = doc
            workspace._segments["doc"] = segment
            workspace._doc_size = len(doc)
            for key, (shape, dtype) in arrays.items():
                nbytes = int(np.dtype(dtype).itemsize * int(np.prod(shape)))
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, nbytes)
                )
                view = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
                view[...] = 0
                workspace._segments[key] = segment
                workspace._arrays[key] = (segment.name, tuple(shape), str(dtype))
                workspace._views[key] = view
        except BaseException:
            workspace.close()
            raise
        _track(workspace)
        _charge(segments=len(workspace._segments))
        return workspace

    def array(self, key: str) -> np.ndarray:
        """The live parent-side view of a named array."""
        return self._views[key]

    def spec(self) -> dict:
        """The small picklable payload a worker needs to attach."""
        return {
            "doc": {
                "name": self._segments["doc"].name,
                "size": self._doc_size,
            },
            "arrays": dict(self._arrays),
        }

    def close(self) -> None:
        """Close and unlink every segment (idempotent, crash-tolerant)."""
        if self._closed:
            return
        self._closed = True
        _untrack(self)
        # numpy views pin the exported buffers; drop them before close()
        self._views.clear()
        for segment in self._segments.values():
            try:
                segment.close()
            except OSError:  # pragma: no cover - already gone
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments.clear()

    def __enter__(self) -> "ShmWorkspace":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# worker-side attachment + evaluator caches
# ---------------------------------------------------------------------------


class _Attached:
    """Worker-side mirror of a :class:`ShmWorkspace` spec."""

    def __init__(self, spec: dict) -> None:
        self._segments = []
        doc_segment = _attach(spec["doc"]["name"])
        self._segments.append(doc_segment)
        self.doc = bytes(doc_segment.buf[: spec["doc"]["size"]])
        self.arrays: dict[str, np.ndarray] = {}
        for key, (name, shape, dtype) in spec["arrays"].items():
            segment = _attach(name)
            self._segments.append(segment)
            self.arrays[key] = np.ndarray(shape, dtype=dtype, buffer=segment.buf)

    def close(self) -> None:
        self.arrays.clear()
        for segment in self._segments:
            try:
                segment.close()  # close only — the parent owns unlink
            except OSError:  # pragma: no cover
                pass
        self._segments.clear()


#: Per-worker-process caches keyed by document digest (+ solver config):
#: pool-reused workers skip the JSON parse and evaluator rebuild on every
#: chunk after their first.  Bounded FIFO — workers see a handful of
#: distinct models per campaign, not an unbounded stream.
_CACHE_CAP = 8
_plan_cache: dict = {}
_assembly_cache: dict = {}


def _cache_put(cache: dict, key, value) -> None:
    if len(cache) >= _CACHE_CAP:
        cache.pop(next(iter(cache)))
    cache[key] = value


def _plan_for(doc: bytes, config: dict):
    from repro.engine.plan import EvaluationPlan

    digest = hashlib.sha256(doc).hexdigest()
    key = (
        digest,
        config["service"],
        config.get("solver", "auto"),
        bool(config.get("incremental", False)),
    )
    plan = _plan_cache.get(key)
    if plan is None:
        plan = EvaluationPlan(
            config["service"],
            config["fingerprint"],
            "robust",
            tuple(config["formals"]),
            assembly_json=doc.decode("utf-8"),
            solver=config.get("solver", "auto"),
            incremental=bool(config.get("incremental", False)),
        )
        _cache_put(_plan_cache, key, plan)
    return plan


def _assembly_for(doc: bytes):
    from repro.dsl import load_assembly

    digest = hashlib.sha256(doc).hexdigest()
    assembly = _assembly_cache.get(digest)
    if assembly is None:
        assembly = load_assembly(doc.decode("utf-8"))
        _cache_put(_assembly_cache, digest, assembly)
    return assembly


# ---------------------------------------------------------------------------
# worker functions (module-level: process pools pickle by name)
# ---------------------------------------------------------------------------


def shm_plan_rows(payload: dict) -> dict:
    """Evaluate robust-plan rows ``[start, stop)`` against shared arrays.

    Payload: ``spec`` (workspace layout), ``config`` (service,
    fingerprint, formals, solver, incremental), ``start``/``stop`` row
    range, ``deadline``, ``observe``/``dispatched_at``.  Results land in
    the shared ``results``/``status`` rows; only per-row
    :class:`WorkerFailure` records (keyed by row index) come back through
    the future.
    """
    owned = _begin_worker_observation(payload)
    attached = _Attached(payload["spec"])
    try:
        config = payload["config"]
        plan = _plan_for(attached.doc, config)
        budget = worker_budget(payload.get("deadline"))
        if plan._evaluator is not None:
            # pooled reuse: never let a previous chunk's budget linger
            plan._evaluator.budget = budget
        formals = tuple(config["formals"])
        points = attached.arrays["points"]
        mask = attached.arrays["mask"]
        results = attached.arrays["results"]
        status = attached.arrays["status"]
        failures: dict[int, WorkerFailure] = {}
        for row in range(payload["start"], payload["stop"]):
            point = {
                name: float(points[row, column])
                for column, name in enumerate(formals)
                if mask[row, column]
            }
            t0 = time.perf_counter()
            try:
                results[row] = plan.pfail(point, budget=budget)
                status[row] = ROW_OK
            except ReproError as exc:
                failures[row] = WorkerFailure.from_error(exc)
                status[row] = ROW_FAILED
            obs.observe("batch.entry.seconds", time.perf_counter() - t0)
        return _ship_worker_observation(failures, owned)
    finally:
        attached.close()


def shm_numeric_sweep_rows(payload: dict) -> dict:
    """Evaluate numeric-sweep rows ``[start, stop)`` against shared arrays.

    Payload: ``spec`` (``values``/``results``/``status`` arrays plus the
    model document), ``config`` (service, parameter, fixed, solver,
    incremental), row range, ``deadline``, observability markers.  A grid
    chunk fails as a unit (matching :func:`numeric_sweep_chunk`): the
    first error marks the remaining rows failed and comes back as
    ``{start: WorkerFailure}``.
    """
    from repro.core.evaluator import ReliabilityEvaluator

    owned = _begin_worker_observation(payload)
    attached = _Attached(payload["spec"])
    try:
        config = payload["config"]
        budget = worker_budget(payload.get("deadline"))
        values = attached.arrays["values"]
        results = attached.arrays["results"]
        status = attached.arrays["status"]
        start, stop = payload["start"], payload["stop"]
        t0 = time.perf_counter()
        try:
            evaluator = ReliabilityEvaluator(
                _assembly_for(attached.doc),
                validate=False, check_domains=False, budget=budget,
                solver=config.get("solver", "auto"),
                incremental=bool(config.get("incremental", False)),
            )
            fixed = config["fixed"]
            parameter = config["parameter"]
            failures: dict[int, WorkerFailure] = {}
            for row in range(start, stop):
                results[row] = evaluator.pfail(
                    config["service"],
                    **{**fixed, parameter: float(values[row])},
                )
                status[row] = ROW_OK
        except ReproError as exc:
            failures = {start: WorkerFailure.from_error(exc)}
            status[start:stop] = np.where(
                status[start:stop] == ROW_OK, ROW_OK, ROW_FAILED
            )
        obs.observe("batch.entry.seconds", time.perf_counter() - t0)
        return _ship_worker_observation(failures, owned)
    finally:
        attached.close()
