"""The batch-evaluation engine: many models × many points, one pass.

The paper frames reliability prediction as the inner loop of *runtime
service selection* (§5): a broker holds many candidate assemblies and must
rank them all, fast, under a deadline.  :class:`BatchEngine` is that loop's
engine room:

1. every distinct ``(model, service)`` target is compiled **once** into a
   reusable :class:`~repro.engine.plan.EvaluationPlan` through the
   :class:`~repro.engine.cache.PlanCache` (same fingerprint ⇒ zero
   re-derivations, warm across requests);
2. the evaluation points fan out across a ``concurrent.futures`` pool
   (:mod:`repro.engine.parallel`), with the parent's
   :class:`~repro.runtime.EvaluationBudget` enforced cooperatively — the
   remaining deadline travels with every chunk;
3. failures stay **per-point**: a bad point yields a typed error *entry*
   in the :class:`BatchResult` while the rest of the batch completes —
   the graceful-degradation contract of the runtime layer, extended to
   batches.

Typical use::

    engine = BatchEngine(jobs=4)
    result = engine.evaluate(assembly, "search", points)   # one model
    result = engine.run([BatchRequest(a1, "s"), ...])      # many models

The per-run :class:`BatchStats` (plan compilations, cache hits, wall
clock, worker count) are the numbers ``BENCH_engine.json`` publishes.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro import observability as obs
from repro.engine import shm
from repro.engine.cache import PlanCache
from repro.engine.parallel import (
    WorkerFailure,
    broken_pool_error,
    charge_fused,
    evaluate_plan_points,
    make_executor,
    rebuild_error,
    remaining_deadline,
    resolve_jobs,
    split_evenly,
    unpack_worker_payload,
)
from repro.engine.plan import EvaluationPlan, compile_plan, compilation_count
from repro.errors import EvaluationError, ReproError
from repro.model.assembly import Assembly
from repro.model.service import Service
from repro.runtime.budget import EvaluationBudget

__all__ = ["BatchEngine", "BatchEntry", "BatchRequest", "BatchResult", "BatchStats"]


@dataclass(frozen=True)
class BatchRequest:
    """One evaluation request: a model, a target service, one point.

    Attributes:
        assembly: the assembly to evaluate (parent-side object; workers
            receive compiled plans, never the assembly itself).
        service: the target service name.
        actuals: the actual parameters for this point.
        label: optional caller tag carried through to the result entry
            (e.g. a candidate id in a selection loop).
    """

    assembly: Assembly
    service: str
    actuals: Mapping[str, float] = field(default_factory=dict)
    label: str = ""


@dataclass
class BatchEntry:
    """Outcome of one request: a prediction or a typed error, never both.

    Attributes:
        index: position in the submitted batch (results keep order).
        label: the request's caller tag.
        service: evaluated service name.
        actuals: the point evaluated.
        pfail: predicted unreliability, or ``None`` on failure.
        backend: ``"symbolic"``/``"robust"`` plan backend that served it.
        error: the typed error for failed entries, or ``None``.
    """

    index: int
    label: str
    service: str
    actuals: dict[str, float]
    pfail: float | None = None
    backend: str = ""
    error: ReproError | None = None

    @property
    def ok(self) -> bool:
        """True when a prediction was produced."""
        return self.error is None

    @property
    def reliability(self) -> float | None:
        """``1 - pfail`` for successful entries."""
        return None if self.pfail is None else 1.0 - self.pfail


@dataclass
class BatchStats:
    """Accounting of one batch run (the ``BENCH_engine.json`` payload).

    Attributes:
        entries: number of points evaluated.
        plans: distinct (model, service) targets in the batch.
        compilations: plan compilations this run actually performed —
            with a warm cache this is 0 regardless of batch size.
        cache_hits / cache_misses: cache traffic attributable to this run.
        jobs: worker count used.
        fused_entries: entries served by stacked (fused) kernel calls
            instead of per-point dispatch.
        elapsed: wall-clock seconds for the whole batch.
    """

    entries: int = 0
    plans: int = 0
    compilations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1
    fused_entries: int = 0
    elapsed: float = 0.0

    def snapshot(self) -> dict[str, float]:
        """Plain-dict copy for JSON reporters."""
        return {
            "entries": self.entries,
            "plans": self.plans,
            "compilations": self.compilations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "jobs": self.jobs,
            "fused_entries": self.fused_entries,
            "elapsed": self.elapsed,
        }


class BatchResult:
    """Ordered outcomes of a batch run plus its accounting."""

    def __init__(self, entries: list[BatchEntry], stats: BatchStats):
        self.entries = entries
        self.stats = stats

    @property
    def ok(self) -> bool:
        """True when every entry produced a prediction."""
        return all(entry.ok for entry in self.entries)

    @property
    def failures(self) -> list[BatchEntry]:
        """Entries that ended in a typed error."""
        return [entry for entry in self.entries if not entry.ok]

    def pfails(self) -> list[float | None]:
        """Predictions in submission order (``None`` for failed entries)."""
        return [entry.pfail for entry in self.entries]

    def best(self) -> BatchEntry | None:
        """The most reliable successful entry (selection-loop helper)."""
        candidates = [entry for entry in self.entries if entry.ok]
        if not candidates:
            return None
        return min(candidates, key=lambda entry: entry.pfail)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)


class BatchEngine:
    """Parallel batch evaluation over cached plans.

    Args:
        jobs: worker count — 1 (default) runs serially in-process, 0 means
            one worker per CPU core, ``N > 1`` fans out across ``N``
            workers (see ``mode``).
        mode: ``"process"`` (default; true CPU parallelism — plans are
            pickled to workers), ``"thread"`` (cheaper startup, suits the
            numpy-vectorized symbolic backend), or ``"serial"``.
        cache: a :class:`~repro.engine.cache.PlanCache` to reuse plans
            across runs, ``None`` for a private per-engine cache, or
            ``False`` to disable caching (every point recompiles — the
            cold baseline the benchmarks measure against).
        budget: optional shared :class:`~repro.runtime.EvaluationBudget`;
            the deadline is enforced in the parent at dispatch/collection
            and cooperatively inside every worker.
        compile: evaluate symbolic plans through compiled numpy kernels
            (default); ``False`` forces the recursive tree walk (the
            ``--no-compile`` escape hatch).
        solver: linear-solver backend threaded into every compiled plan
            (``"auto"``, ``"dense"`` or ``"sparse"``; see
            :mod:`repro.markov.solvers`).
        incremental: route robust plans' numeric solves through low-rank
            factorization updates (:mod:`repro.markov.updates`) when
            consecutive entries share chain structure.
        fused: serve each same-fingerprint symbolic group through **one**
            stacked kernel call in the parent (no per-point Python
            dispatch, no pool), and move multi-entry robust groups of a
            process pool onto the shared-memory transport
            (:mod:`repro.engine.shm`) so workers stop pickling model
            documents and per-entry results.  Default on; ``False``
            restores the pure per-point paths (the ``--no-fused`` escape
            hatch).
    """

    def __init__(
        self,
        jobs: int | None = 1,
        mode: str = "process",
        cache: PlanCache | None | bool = None,
        budget: EvaluationBudget | None = None,
        compile: bool = True,
        solver: str = "auto",
        incremental: bool = False,
        fused: bool = True,
    ):
        from repro.markov.solvers import validate_solver

        self.jobs = resolve_jobs(jobs)
        self.solver = validate_solver(solver)
        self.incremental = bool(incremental)
        if mode not in ("process", "thread", "serial"):
            raise EvaluationError(f"unknown executor mode {mode!r}")
        self.mode = mode
        if cache is False:
            self.cache = None
        elif cache is None or cache is True:
            self.cache = PlanCache()
        else:
            self.cache = cache
        self.budget = budget
        self.compile = bool(compile)
        self.fused = bool(fused)

    # -- public API --------------------------------------------------------

    def evaluate(
        self,
        assembly: Assembly,
        service: str | Service,
        points: Sequence[Mapping[str, float]],
        labels: Sequence[str] | None = None,
    ) -> BatchResult:
        """Evaluate one model at many actual-parameter points."""
        name = service.name if isinstance(service, Service) else str(service)
        if labels is not None and len(labels) != len(points):
            raise EvaluationError(
                f"got {len(labels)} labels for {len(points)} points"
            )
        requests = [
            BatchRequest(
                assembly, name, dict(point),
                label=labels[i] if labels is not None else "",
            )
            for i, point in enumerate(points)
        ]
        return self.run(requests)

    def run(self, requests: Sequence[BatchRequest]) -> BatchResult:
        """Evaluate a heterogeneous batch (many models, many points)."""
        started = time.monotonic()
        if self.budget is not None:
            self.budget.start()
        compilations_before = compilation_count()
        hits_before = self.cache.stats.hits if self.cache else 0
        misses_before = self.cache.stats.misses if self.cache else 0

        serial = self.jobs <= 1 or self.mode == "serial" or len(requests) <= 1
        obs.gauge("batch.jobs", 1 if serial else self.jobs)
        fused_entries = 0
        with obs.span(
            "batch.run", entries=len(requests), mode=self.mode
        ) as run_span:
            groups = self._compile_groups(requests)
            entries = [
                BatchEntry(i, r.label, r.service, dict(r.actuals))
                for i, r in enumerate(requests)
            ]
            remaining = groups
            if self.fused:
                remaining, fused_entries = self._run_fused(groups, entries)
            if remaining:
                left = sum(len(ix) for _, ix in remaining.values())
                if serial or left <= 1:
                    self._run_serial(remaining, entries)
                else:
                    self._run_parallel(remaining, entries)
            run_span.set_tag(
                plans=len(groups),
                fused=fused_entries,
                failures=sum(1 for e in entries if not e.ok),
            )

        stats = BatchStats(
            entries=len(entries),
            plans=len(groups),
            compilations=compilation_count() - compilations_before,
            cache_hits=(self.cache.stats.hits - hits_before) if self.cache else 0,
            cache_misses=(
                (self.cache.stats.misses - misses_before) if self.cache else 0
            ),
            jobs=self.jobs,
            fused_entries=fused_entries,
            elapsed=time.monotonic() - started,
        )
        return BatchResult(entries, stats)

    # -- internals ---------------------------------------------------------

    def _plan_for(self, assembly: Assembly, service: str) -> EvaluationPlan:
        if self.cache is not None:
            return self.cache.get_or_compile(
                assembly, service, budget=self.budget, solver=self.solver,
                incremental=self.incremental,
            )
        return compile_plan(
            assembly, service, budget=self.budget, solver=self.solver,
            incremental=self.incremental,
        )

    def _compile_groups(
        self, requests: Sequence[BatchRequest]
    ) -> dict[str, tuple[EvaluationPlan, list[int]]]:
        """Compile each distinct target once; group request indices by plan.

        Plans or compilation *errors* are shared across a group: if a
        model cannot compile, every entry of that group reports the same
        typed error instead of the whole batch raising.
        """
        groups: dict[str, tuple[EvaluationPlan | ReproError, list[int]]] = {}
        by_identity: dict[tuple[int, str], str] = {}
        for index, request in enumerate(requests):
            ident = (id(request.assembly), request.service)
            fingerprint = by_identity.get(ident)
            if fingerprint is None:
                try:
                    plan = self._plan_for(request.assembly, request.service)
                    fingerprint = plan.fingerprint
                except ReproError as exc:
                    plan = exc
                    fingerprint = f"error:{index}"
                by_identity[ident] = fingerprint
                groups.setdefault(fingerprint, (plan, []))
            groups[fingerprint][1].append(index)
        return groups

    def _run_fused(self, groups, entries: list[BatchEntry]):
        """Serve multi-entry symbolic groups through one stacked kernel
        call each, in the parent process.

        Returns the groups the fused path cannot serve — robust plans,
        compilation errors, singletons — plus the fused entry count.  A
        group whose stacked call raises (one poisoned point fails the
        whole stack) is handed back untouched so the per-point paths keep
        their per-entry error isolation; those hand-backs are counted as
        ``engine.fused.fallbacks``.
        """
        remaining: dict = {}
        fused_entries = 0
        for fingerprint, (plan, indices) in groups.items():
            if (
                isinstance(plan, ReproError)
                or plan.backend != "symbolic"
                or len(indices) <= 1
            ):
                remaining[fingerprint] = (plan, indices)
                continue
            t0 = time.perf_counter()
            try:
                if self.budget is not None:
                    self.budget.check_deadline("batch evaluation")
                stacked = plan.pfail_stack(
                    [entries[i].actuals for i in indices],
                    budget=self.budget,
                    use_kernel=self.compile,
                )
            except ReproError:
                charge_fused(fallbacks=1)
                remaining[fingerprint] = (plan, indices)
                continue
            elapsed = time.perf_counter() - t0
            per_entry = elapsed / len(indices)
            for offset, index in enumerate(indices):
                entry = entries[index]
                entry.backend = plan.backend
                entry.pfail = float(stacked[offset])
                obs.observe("batch.entry.seconds", per_entry)
            charge_fused(groups=1, entries=len(indices))
            fused_entries += len(indices)
        return remaining, fused_entries

    def _run_serial(self, groups, entries: list[BatchEntry]) -> None:
        for plan, indices in groups.values():
            for index in indices:
                entry = entries[index]
                if isinstance(plan, ReproError):
                    entry.error = plan
                    continue
                entry.backend = plan.backend
                t0 = time.perf_counter()
                try:
                    if self.budget is not None:
                        self.budget.check_deadline("batch evaluation")
                    entry.pfail = plan.pfail(
                        entry.actuals, budget=self.budget, use_kernel=self.compile
                    )
                except ReproError as exc:
                    entry.error = exc
                obs.observe("batch.entry.seconds", time.perf_counter() - t0)

    def _use_shm(self, plan, indices) -> bool:
        """Whether a group should ride the shared-memory transport: heavy
        (robust) plans fanning real work across a process pool."""
        return (
            self.fused
            and self.mode == "process"
            and not isinstance(plan, ReproError)
            and plan.backend == "robust"
            and len(indices) > 1
            and shm.available()
        )

    def _submit_shm(self, executor, futures, plan, indices, entries, workspaces):
        """Lay out one shared workspace for a robust group and fan its
        rows across the pool — workers read the model document and write
        result rows in place; nothing heavy is pickled."""
        formals = plan.formals
        n, k = len(indices), max(1, len(formals))
        workspace = shm.ShmWorkspace.create(
            plan.assembly_json.encode("utf-8"),
            {
                "points": ((n, k), "float64"),
                "mask": ((n, k), "uint8"),
                "results": ((n,), "float64"),
                "status": ((n,), "uint8"),
            },
        )
        workspaces.append(workspace)
        points = workspace.array("points")
        mask = workspace.array("mask")
        for row, index in enumerate(indices):
            actuals = entries[index].actuals
            for column, name in enumerate(formals):
                if name in actuals:
                    points[row, column] = float(actuals[name])
                    mask[row, column] = 1
        shm._charge(rows=n)
        config = {
            "service": plan.service,
            "fingerprint": plan.fingerprint,
            "formals": list(formals),
            "solver": plan.solver,
            "incremental": plan.incremental,
        }
        spec = workspace.spec()
        for rows in split_evenly(list(range(n)), self.jobs):
            payload = {
                "spec": spec,
                "config": config,
                "start": rows[0],
                "stop": rows[-1] + 1,
                "deadline": remaining_deadline(self.budget),
                "observe": obs.enabled(),
                "dispatched_at": time.time(),
            }
            futures[executor.submit(shm.shm_plan_rows, payload)] = (
                "shm",
                plan,
                indices[rows[0]:rows[-1] + 1],
                workspace,
                rows[0],
            )

    def _run_parallel(self, groups, entries: list[BatchEntry]) -> None:
        executor = make_executor(self.jobs, self.mode)
        if executor is None:  # pragma: no cover - guarded by caller
            return self._run_serial(groups, entries)
        futures = {}
        workspaces: list = []
        try:
            with executor:
                for plan, indices in groups.values():
                    if isinstance(plan, ReproError):
                        for index in indices:
                            entries[index].error = plan
                        continue
                    if self._use_shm(plan, indices):
                        self._submit_shm(
                            executor, futures, plan, indices, entries, workspaces
                        )
                        continue
                    for chunk in split_evenly(indices, self.jobs):
                        payload = {
                            "plan": plan,
                            "points": [entries[i].actuals for i in chunk],
                            "deadline": remaining_deadline(self.budget),
                            "use_kernel": self.compile,
                            "observe": obs.enabled(),
                            "dispatched_at": time.time(),
                        }
                        futures[executor.submit(evaluate_plan_points, payload)] = (
                            "points",
                            plan,
                            chunk,
                        )
                pending = set(futures)
                try:
                    while pending:
                        done, pending = wait(pending, return_when=FIRST_COMPLETED)
                        if self.budget is not None:
                            self.budget.check_deadline("batch collection")
                        for future in done:
                            tag = futures[future]
                            if tag[0] == "shm":
                                _, plan, chunk, workspace, start = tag
                                failures = unpack_worker_payload(future.result())
                                results = workspace.array("results")
                                for offset, index in enumerate(chunk):
                                    entry = entries[index]
                                    entry.backend = plan.backend
                                    failure = failures.get(start + offset)
                                    if failure is not None:
                                        entry.error = rebuild_error(failure)
                                    else:
                                        entry.pfail = float(results[start + offset])
                                continue
                            _, plan, chunk = tag
                            outcomes = unpack_worker_payload(future.result())
                            for index, outcome in zip(chunk, outcomes):
                                entry = entries[index]
                                entry.backend = plan.backend
                                if isinstance(outcome, WorkerFailure):
                                    entry.error = rebuild_error(outcome)
                                else:
                                    entry.pfail = float(outcome)
                except BrokenProcessPool as exc:
                    affected = [
                        e.index for e in entries
                        if e.pfail is None and e.error is None
                    ]
                    raise broken_pool_error(
                        "batch evaluation", affected, exc
                    ) from exc
        finally:
            for future in futures:
                future.cancel()
            for workspace in workspaces:
                workspace.close()
