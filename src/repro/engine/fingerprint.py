"""Canonical structural fingerprints of assemblies and evaluation targets.

The plan cache (:mod:`repro.engine.cache`) must answer one question fast:
*is this the same model I already compiled?*  Object identity cannot answer
it — callers rebuild assemblies from JSON, mutate copies, or construct the
same architecture twice — so the engine hashes the model's **canonical
serialized form** instead: the ``repro/1`` dictionary produced by
:func:`repro.dsl.serializer.assembly_to_dict`, rendered as sorted-key JSON
and digested with SHA-256.

Because the serialized form covers everything the evaluators read — flow
topology, transition-probability expressions, request actuals, completion
and sharing declarations, interface formals *and published attribute
values* — two assemblies share a fingerprint exactly when every evaluation
backend would return identical results for them.  In particular, mutating a
published attribute (a new ``failure_rate``, a retuned ``speed``) changes
the fingerprint and therefore invalidates any cached plan, which is the
invalidation rule the cache relies on.

Fingerprints are plain hex strings: hashable, picklable, loggable, and
stable across processes and Python versions (the serializer sorts keys and
uses no floating-point repr shortcuts).
"""

from __future__ import annotations

import hashlib
import json

from repro.errors import ModelError
from repro.model.assembly import Assembly
from repro.model.service import Service

__all__ = [
    "assembly_fingerprint",
    "canonical_json",
    "plan_key",
    "service_fingerprint",
]


def canonical_json(assembly: Assembly) -> str:
    """The canonical ``repro/1`` JSON text of an assembly.

    Sorted keys, no extraneous whitespace — byte-identical for
    structurally identical assemblies, and loadable by
    :func:`repro.dsl.load_assembly` (the form shipped to worker
    processes, which cannot receive live assemblies: bindings hold
    mapping proxies that do not pickle).
    """
    from repro.dsl.serializer import assembly_to_dict

    try:
        document = assembly_to_dict(assembly)
    except ModelError:
        raise
    except Exception as exc:  # defensive: fingerprinting must be typed
        raise ModelError(
            f"cannot serialize assembly {assembly.name!r} for "
            f"fingerprinting: {type(exc).__name__}: {exc}"
        ) from exc
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def assembly_fingerprint(assembly: Assembly) -> str:
    """SHA-256 hex digest of the assembly's canonical serialized form.

    Equal fingerprints imply identical evaluation results on every
    backend; any structural or attribute change yields a new digest.
    """
    return hashlib.sha256(canonical_json(assembly).encode("utf-8")).hexdigest()


def service_fingerprint(assembly: Assembly, service: str | Service) -> str:
    """Fingerprint of one evaluation target: assembly digest + service name.

    The service's closed form depends on the whole assembly (bindings,
    connectors, transitively reached providers), so the digest covers the
    full model; the service name scopes it to one entry point.
    """
    name = service.name if isinstance(service, Service) else str(service)
    # ensure the target exists — a typo must not poison the cache
    assembly.service(name)
    digest = assembly_fingerprint(assembly)
    return hashlib.sha256(f"{digest}:{name}".encode("utf-8")).hexdigest()


def plan_key(
    assembly: Assembly,
    service: str | Service,
    symbolic_attributes: bool = False,
    solver: str = "auto",
    incremental: bool = False,
) -> tuple[str, str, bool, str, bool]:
    """The cache key of one evaluation plan.

    A tuple ``(assembly digest, service name, symbolic_attributes,
    solver, incremental)`` — attribute-symbolic plans answer different
    questions (attribute sweeps, sensitivities) than fully bound ones,
    robust plans carry their solver backend, and incremental plans route
    numeric solves through the low-rank update path, so each caches
    separately.
    """
    name = service.name if isinstance(service, Service) else str(service)
    return (
        assembly_fingerprint(assembly), name, bool(symbolic_attributes),
        str(solver), bool(incremental),
    )
