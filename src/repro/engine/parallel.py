"""Worker-pool plumbing: executors, picklable workers, budget cooperation.

The batch engine fans independent work units — plan evaluations, sweep
chunks, Monte-Carlo trial blocks, fuzz cases — across a
:mod:`concurrent.futures` pool.  This module holds everything that must be
importable from a fresh worker process:

- **executor selection** (:func:`resolve_jobs`, :func:`make_executor`):
  ``jobs <= 1`` short-circuits to the serial path (no pool, no pickling);
  ``mode="process"`` gives true CPU parallelism for the pure-Python solve
  paths; ``mode="thread"`` suits the numpy-vectorized symbolic backend and
  avoids process spin-up on small grids;
- **module-level worker functions** (process pools can only call picklable
  top-level callables) that receive plain-data payloads: compiled
  :class:`~repro.engine.plan.EvaluationPlan` objects, canonical assembly
  JSON, mutation documents — never live model objects, which do not pickle;
- **cooperative budget semantics**: the parent computes the *remaining*
  deadline at dispatch (:func:`remaining_deadline`) and each worker
  enforces it locally through its own :class:`~repro.runtime.EvaluationBudget`;
  consumption caps (Monte-Carlo trials) are charged once, in the parent,
  before dispatch.  A worker that trips its local budget reports a typed
  :class:`WorkerFailure` which the parent rehydrates into the original
  error class (:func:`rebuild_error`), so ``--jobs 8`` surfaces the same
  exit codes as ``--jobs 1``.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import repro.errors as _errors
from repro import observability as obs
from repro.errors import (
    BudgetExceededError,
    EvaluationError,
    ReproError,
    error_chain,
)
from repro.runtime.budget import EvaluationBudget

__all__ = [
    "WorkerFailure",
    "broken_pool_error",
    "evaluate_plan_points",
    "fused_counts",
    "fuzz_block",
    "make_executor",
    "numeric_sweep_chunk",
    "plan_sweep_chunk",
    "rebuild_error",
    "remaining_deadline",
    "reset_clamp_warning",
    "reset_fused_counts",
    "resolve_jobs",
    "simulate_block",
    "split_evenly",
    "unpack_worker_payload",
]


# ---------------------------------------------------------------------------
# fused-execution counters (shared by the batch engine and the sweep layer)
# ---------------------------------------------------------------------------

_fused_lock = threading.Lock()
_fused = {"groups": 0, "entries": 0, "fallbacks": 0}


def fused_counts() -> dict:
    """Process-wide fused-execution counters.

    ``groups``: same-fingerprint groups served by one stacked kernel call;
    ``entries``: individual (model, point) evaluations those calls fused;
    ``fallbacks``: groups the fused path handed back to the per-point path
    (a poisoned point, so errors stay per-entry).
    """
    with _fused_lock:
        return dict(_fused)


def reset_fused_counts() -> None:
    """Zero the fused counters (test isolation helper)."""
    with _fused_lock:
        for key in _fused:
            _fused[key] = 0


def charge_fused(groups: int = 0, entries: int = 0, fallbacks: int = 0) -> None:
    """Charge fused-execution work to the module counters and metrics."""
    with _fused_lock:
        _fused["groups"] += groups
        _fused["entries"] += entries
        _fused["fallbacks"] += fallbacks
    if groups:
        obs.count("engine.fused.groups", groups)
    if entries:
        obs.count("engine.fused.entries", entries)
    if fallbacks:
        obs.count("engine.fused.fallbacks", fallbacks)


def split_evenly(items: list, parts: int) -> list[list]:
    """Split ``items`` into at most ``parts`` contiguous, near-equal chunks.

    Contiguity preserves result ordering under simple concatenation; the
    first ``len(items) % parts`` chunks carry one extra element.  Empty
    chunks are never produced.
    """
    parts = max(1, min(int(parts), len(items)))
    base, extra = divmod(len(items), parts)
    chunks: list[list] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


#: Environment marker that makes the clamp-warning once-flag survive
#: process boundaries: child processes (including the fresh workers a
#: :class:`~repro.workunits.Supervisor` spawns after a
#: ``BrokenProcessPool`` pool restart) inherit the parent's environment,
#: import this module with the marker set, and stay silent instead of
#: re-emitting a warning the user already saw.
_CLAMP_WARNED_ENV = "REPRO_JOBS_CLAMP_WARNED"

#: Process-wide once-flag for the jobs-clamp warning.  Campaign layers call
#: :func:`resolve_jobs` once per dispatch round; repeating the same warning
#: every round is noise, so it fires once per process *tree* — the flag is
#: seeded from :data:`_CLAMP_WARNED_ENV` so restarted/spawned pools do not
#: re-warn (tests reset it via :func:`reset_clamp_warning`).
_clamp_warning_emitted = os.environ.get(_CLAMP_WARNED_ENV) == "1"


def reset_clamp_warning() -> None:
    """Re-arm the once-per-process-tree jobs-clamp warning (test helper)."""
    global _clamp_warning_emitted
    _clamp_warning_emitted = False
    os.environ.pop(_CLAMP_WARNED_ENV, None)


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` request: ``None``/1 → serial, 0 → all cores.

    Explicit requests are clamped to ``os.cpu_count()`` with a
    :class:`RuntimeWarning` — benchmarking showed an oversubscribed pool
    is strictly *slower* than a right-sized one on this workload (workers
    are CPU-bound; extra processes only add spawn and pickling overhead).
    The warning is emitted once per process tree — the once-flag is
    mirrored into the environment (:data:`_CLAMP_WARNED_ENV`) so worker
    processes, including pools the work-unit supervisor restarts after a
    ``BrokenProcessPool``, never repeat it; every call still records the
    resolved count on the ``engine.jobs.resolved`` gauge.
    """
    global _clamp_warning_emitted
    if jobs is None:
        obs.gauge("engine.jobs.resolved", 1)
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise EvaluationError(f"jobs must be >= 0, got {jobs}")
    cores = os.cpu_count() or 1
    if jobs == 0:
        resolved = cores
    elif jobs > cores:
        if not _clamp_warning_emitted:
            _clamp_warning_emitted = True
            os.environ[_CLAMP_WARNED_ENV] = "1"
            warnings.warn(
                f"requested jobs={jobs} exceeds the {cores} available "
                f"core(s); clamping to {cores} (oversubscribed pools are "
                f"slower, not faster, on CPU-bound evaluation)",
                RuntimeWarning,
                stacklevel=2,
            )
        resolved = cores
    else:
        resolved = jobs
    obs.gauge("engine.jobs.resolved", resolved)
    return resolved


def make_executor(jobs: int, mode: str = "process") -> Executor | None:
    """An executor for ``jobs`` workers, or ``None`` for the serial path.

    Args:
        jobs: resolved worker count (see :func:`resolve_jobs`).
        mode: ``"process"`` (CPU-bound pure-Python work), ``"thread"``
            (numpy-vectorized or I/O-bound work), or ``"serial"``.
    """
    if mode not in ("process", "thread", "serial"):
        raise EvaluationError(f"unknown executor mode {mode!r}")
    if jobs <= 1 or mode == "serial":
        return None
    if mode == "thread":
        return ThreadPoolExecutor(max_workers=jobs)
    return ProcessPoolExecutor(max_workers=jobs)


def remaining_deadline(budget: EvaluationBudget | None) -> float | None:
    """Seconds of deadline left to hand a worker, or ``None`` if unlimited.

    Checks the parent's budget first, so dispatching past the deadline
    raises in the parent rather than fanning out doomed work.
    """
    if budget is None or budget.deadline is None:
        return None
    budget.check_deadline("parallel dispatch")
    return budget.remaining_time()


def worker_budget(deadline: float | None, **limits) -> EvaluationBudget | None:
    """A worker-local budget enforcing the parent's remaining envelope."""
    if deadline is None and not any(v is not None for v in limits.values()):
        return None
    return EvaluationBudget(deadline=deadline, **limits)


def broken_pool_error(
    what: str, indices, cause: BaseException
) -> "ReproError":
    """Map a raw :class:`BrokenProcessPool` into the typed taxonomy.

    A worker killed hard (SIGKILL, OOM, native crash) breaks the whole
    pool: every pending ``future.result()`` raises
    ``concurrent.futures.process.BrokenProcessPool``, which is not a
    :class:`ReproError` and would escape as a traceback.  Collection loops
    catch it and raise the returned
    :class:`~repro.errors.WorkerCrashedError` instead, carrying the
    indices of the entries whose results were lost.
    """
    from repro.errors import WorkerCrashedError

    obs.count("engine.worker_crashes")
    error = WorkerCrashedError(what, indices)
    error.__cause__ = cause
    return error


# ---------------------------------------------------------------------------
# typed-error transport
# ---------------------------------------------------------------------------


@dataclass
class WorkerFailure:
    """A typed error captured in a worker, in picklable form.

    Custom :class:`~repro.errors.ReproError` subclasses take structured
    ``__init__`` arguments, so the live exceptions do not survive pickling
    across a process boundary; workers ship this transport record and the
    parent rebuilds an equivalent error with :func:`rebuild_error`.

    ``cause_chain`` carries the stringified ``__cause__``/``__context__``
    chain of the original error (outermost first), so nested failures keep
    their root cause across the process boundary instead of flattening to
    the outer message alone.
    """

    kind: str
    message: str
    resource: str | None = None  # BudgetExceededError fields, when present
    limit: float | None = None
    used: float | None = None
    cause_chain: tuple[str, ...] = field(default_factory=tuple)

    @classmethod
    def from_error(cls, error: ReproError) -> "WorkerFailure":
        chain = error_chain(error)[1:]  # [0] repeats kind/message
        if isinstance(error, BudgetExceededError):
            return cls(
                type(error).__name__, str(error),
                resource=error.resource, limit=error.limit, used=error.used,
                cause_chain=chain,
            )
        return cls(type(error).__name__, str(error), cause_chain=chain)


def rebuild_error(failure: WorkerFailure) -> ReproError:
    """Rehydrate a :class:`WorkerFailure` into a raisable typed error.

    Budget trips reconstruct exactly (resource/limit/used survive the
    transport); other classes are rebuilt by name when their constructor
    takes a bare message, and fall back to the nearest base class
    otherwise — the CLI exit-code taxonomy keys on ``isinstance``, so a
    base-class fallback still maps to the right exit code family.

    A transported ``cause_chain`` is re-attached as exception notes
    (``add_note``), so ``--jobs 8`` tracebacks show the same root causes
    as ``--jobs 1``.
    """
    if failure.resource is not None:
        error: ReproError | None = BudgetExceededError(
            failure.resource, failure.limit, failure.used, failure.message
        )
    else:
        error = None
        cls = getattr(_errors, failure.kind, None)
        if isinstance(cls, type) and issubclass(cls, ReproError):
            try:
                error = cls(failure.message)
            except TypeError:
                for base in cls.__mro__[1:]:
                    if issubclass(base, ReproError):
                        try:
                            error = base(f"[{failure.kind}] {failure.message}")
                            break
                        except TypeError:
                            continue
        if error is None:
            error = EvaluationError(f"[{failure.kind}] {failure.message}")
    for link in getattr(failure, "cause_chain", ()):
        error.add_note(f"caused by {link}")
    return error


# ---------------------------------------------------------------------------
# worker-side observability (metrics/span shipping across the pool)
# ---------------------------------------------------------------------------


def _begin_worker_observation(payload: dict) -> bool:
    """Start a private collection scope in this worker, if asked to.

    Returns True when this call owns a scope whose data must be shipped
    back.  In ``mode="thread"`` pools the parent's scope is already live in
    this process, so data lands in the shared registry directly and nothing
    needs shipping (returns False).
    """
    if not payload.get("observe"):
        return False
    if obs.enabled():
        return False  # thread pool: parent scope collects directly
    obs.reset()
    obs.enable()
    dispatched = payload.get("dispatched_at")
    if dispatched is not None:
        obs.observe("batch.queue.seconds", max(0.0, time.time() - dispatched))
    return True


def _ship_worker_observation(results, owned: bool):
    """Wrap worker results with this scope's metrics/span deltas."""
    if not owned:
        return results
    snapshot = obs.registry().snapshot()
    spans = obs.tracer().export()
    obs.reset()  # pooled workers are reused: next payload gets a clean delta
    return {"results": results, "metrics": snapshot, "spans": spans}


def unpack_worker_payload(outcome):
    """Parent-side inverse of :func:`_ship_worker_observation`.

    Merges any shipped metrics into the parent registry and adopts shipped
    spans under the parent's current span, then returns the bare results.
    Plain (unwrapped) outcomes pass through untouched, so callers can
    unpack unconditionally.
    """
    if isinstance(outcome, dict) and "results" in outcome:
        metrics = outcome.get("metrics")
        if metrics:
            obs.registry().merge(metrics)
        spans = outcome.get("spans")
        if spans:
            obs.tracer().merge(spans)
        return outcome["results"]
    return outcome


# ---------------------------------------------------------------------------
# worker functions (must stay module-level: process pools pickle by name)
# ---------------------------------------------------------------------------


def evaluate_plan_points(payload: dict) -> list:
    """Evaluate one compiled plan at many actual-parameter points.

    Payload: ``plan`` (:class:`EvaluationPlan`), ``points`` (list of
    name→value dicts), ``deadline`` (remaining seconds or ``None``),
    ``use_kernel`` (compiled-kernel evaluation, default on).
    Returns one entry per point: a float ``Pfail`` or a
    :class:`WorkerFailure` (per-point isolation: one bad point does not
    poison the block).
    """
    owned = _begin_worker_observation(payload)
    plan = payload["plan"]
    budget = worker_budget(payload.get("deadline"))
    use_kernel = payload.get("use_kernel", True)
    results: list = []
    for point in payload["points"]:
        t0 = time.perf_counter()
        try:
            results.append(plan.pfail(point, budget=budget, use_kernel=use_kernel))
        except ReproError as exc:
            results.append(WorkerFailure.from_error(exc))
        obs.observe("batch.entry.seconds", time.perf_counter() - t0)
    return _ship_worker_observation(results, owned)


def plan_sweep_chunk(payload: dict) -> list[float] | WorkerFailure:
    """Evaluate one grid chunk of a sweep through a compiled plan.

    Payload: ``plan``, ``parameter``, ``values`` (list of floats),
    ``fixed`` (dict), ``deadline``, ``use_kernel``.
    """
    owned = _begin_worker_observation(payload)
    plan = payload["plan"]
    budget = worker_budget(payload.get("deadline"))
    t0 = time.perf_counter()
    try:
        result: list[float] | WorkerFailure = list(
            plan.pfail_grid(
                payload["parameter"], payload["values"], payload["fixed"],
                budget=budget,
                use_kernel=payload.get("use_kernel", True),
            )
        )
    except ReproError as exc:
        result = WorkerFailure.from_error(exc)
    obs.observe("batch.entry.seconds", time.perf_counter() - t0)
    return _ship_worker_observation(result, owned)


def numeric_sweep_chunk(payload: dict) -> list[float] | WorkerFailure:
    """Evaluate one grid chunk through the recursive numeric evaluator.

    Payload: ``assembly_json`` (canonical ``repro/1`` text), ``service``,
    ``parameter``, ``values``, ``fixed``, ``deadline``, optional
    ``solver`` and ``incremental``.  The assembly is rebuilt from JSON
    because live assemblies do not pickle.
    """
    from repro.core.evaluator import ReliabilityEvaluator
    from repro.dsl import load_assembly

    owned = _begin_worker_observation(payload)
    budget = worker_budget(payload.get("deadline"))
    t0 = time.perf_counter()
    try:
        assembly = load_assembly(payload["assembly_json"])
        evaluator = ReliabilityEvaluator(
            assembly, validate=False, check_domains=False, budget=budget,
            solver=payload.get("solver", "auto"),
            incremental=payload.get("incremental", False),
        )
        fixed = payload["fixed"]
        parameter = payload["parameter"]
        result: list[float] | WorkerFailure = [
            evaluator.pfail(
                payload["service"], **{**fixed, parameter: float(v)}
            )
            for v in payload["values"]
        ]
    except ReproError as exc:
        result = WorkerFailure.from_error(exc)
    obs.observe("batch.entry.seconds", time.perf_counter() - t0)
    return _ship_worker_observation(result, owned)


def simulate_block(payload: dict) -> tuple[int, int] | WorkerFailure:
    """Run one Monte-Carlo trial block; returns ``(trials, failures)``.

    Payload: ``assembly_json``, ``service``, ``actuals``, ``trials``,
    ``seed``, ``deadline``.  Trials were already charged against the
    parent's budget; the worker enforces only the remaining deadline.
    """
    from repro.dsl import load_assembly
    from repro.simulation.engine import MonteCarloSimulator

    owned = _begin_worker_observation(payload)
    budget = worker_budget(payload.get("deadline"))
    t0 = time.perf_counter()
    try:
        assembly = load_assembly(payload["assembly_json"])
        simulator = MonteCarloSimulator(
            assembly, seed=payload["seed"], validate=False, budget=budget
        )
        estimate = simulator.estimate_pfail(
            payload["service"], payload["trials"], **payload["actuals"]
        )
        result: tuple[int, int] | WorkerFailure = (
            estimate.trials, estimate.failures
        )
    except ReproError as exc:
        result = WorkerFailure.from_error(exc)
    obs.observe("batch.entry.seconds", time.perf_counter() - t0)
    return _ship_worker_observation(result, owned)


def fuzz_block(payload: dict) -> list:
    """Run a block of fuzz cases; returns the list of ``FuzzCase`` records.

    Payload: ``cases`` (list of ``(index, mutation)`` pairs — mutations
    are picklable documents), ``service``, ``actuals``, ``seed``,
    ``trials``, ``deadline``.  Case classification already treats every
    outcome as data (ok / typed-error / violation), so no failure
    transport is needed here.
    """
    from repro.robustness.harness import run_fuzz_case

    owned = _begin_worker_observation(payload)
    results = []
    for index, mutation in payload["cases"]:
        t0 = time.perf_counter()
        results.append(
            run_fuzz_case(
                index,
                mutation,
                service=payload["service"],
                actuals=payload["actuals"],
                seed=payload["seed"],
                trials=payload["trials"],
                deadline=payload["deadline"],
            )
        )
        obs.observe("batch.entry.seconds", time.perf_counter() - t0)
    return _ship_worker_observation(results, owned)
