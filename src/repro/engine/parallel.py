"""Worker-pool plumbing: executors, picklable workers, budget cooperation.

The batch engine fans independent work units — plan evaluations, sweep
chunks, Monte-Carlo trial blocks, fuzz cases — across a
:mod:`concurrent.futures` pool.  This module holds everything that must be
importable from a fresh worker process:

- **executor selection** (:func:`resolve_jobs`, :func:`make_executor`):
  ``jobs <= 1`` short-circuits to the serial path (no pool, no pickling);
  ``mode="process"`` gives true CPU parallelism for the pure-Python solve
  paths; ``mode="thread"`` suits the numpy-vectorized symbolic backend and
  avoids process spin-up on small grids;
- **module-level worker functions** (process pools can only call picklable
  top-level callables) that receive plain-data payloads: compiled
  :class:`~repro.engine.plan.EvaluationPlan` objects, canonical assembly
  JSON, mutation documents — never live model objects, which do not pickle;
- **cooperative budget semantics**: the parent computes the *remaining*
  deadline at dispatch (:func:`remaining_deadline`) and each worker
  enforces it locally through its own :class:`~repro.runtime.EvaluationBudget`;
  consumption caps (Monte-Carlo trials) are charged once, in the parent,
  before dispatch.  A worker that trips its local budget reports a typed
  :class:`WorkerFailure` which the parent rehydrates into the original
  error class (:func:`rebuild_error`), so ``--jobs 8`` surfaces the same
  exit codes as ``--jobs 1``.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import repro.errors as _errors
from repro.errors import BudgetExceededError, EvaluationError, ReproError
from repro.runtime.budget import EvaluationBudget

__all__ = [
    "WorkerFailure",
    "evaluate_plan_points",
    "fuzz_block",
    "make_executor",
    "numeric_sweep_chunk",
    "plan_sweep_chunk",
    "rebuild_error",
    "remaining_deadline",
    "resolve_jobs",
    "simulate_block",
    "split_evenly",
]


def split_evenly(items: list, parts: int) -> list[list]:
    """Split ``items`` into at most ``parts`` contiguous, near-equal chunks.

    Contiguity preserves result ordering under simple concatenation; the
    first ``len(items) % parts`` chunks carry one extra element.  Empty
    chunks are never produced.
    """
    parts = max(1, min(int(parts), len(items)))
    base, extra = divmod(len(items), parts)
    chunks: list[list] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` request: ``None``/1 → serial, 0 → all cores.

    Explicit requests are clamped to ``os.cpu_count()`` with a
    :class:`RuntimeWarning` — benchmarking showed an oversubscribed pool
    is strictly *slower* than a right-sized one on this workload (workers
    are CPU-bound; extra processes only add spawn and pickling overhead).
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise EvaluationError(f"jobs must be >= 0, got {jobs}")
    cores = os.cpu_count() or 1
    if jobs == 0:
        return cores
    if jobs > cores:
        warnings.warn(
            f"requested jobs={jobs} exceeds the {cores} available core(s); "
            f"clamping to {cores} (oversubscribed pools are slower, not "
            f"faster, on CPU-bound evaluation)",
            RuntimeWarning,
            stacklevel=2,
        )
        return cores
    return jobs


def make_executor(jobs: int, mode: str = "process") -> Executor | None:
    """An executor for ``jobs`` workers, or ``None`` for the serial path.

    Args:
        jobs: resolved worker count (see :func:`resolve_jobs`).
        mode: ``"process"`` (CPU-bound pure-Python work), ``"thread"``
            (numpy-vectorized or I/O-bound work), or ``"serial"``.
    """
    if mode not in ("process", "thread", "serial"):
        raise EvaluationError(f"unknown executor mode {mode!r}")
    if jobs <= 1 or mode == "serial":
        return None
    if mode == "thread":
        return ThreadPoolExecutor(max_workers=jobs)
    return ProcessPoolExecutor(max_workers=jobs)


def remaining_deadline(budget: EvaluationBudget | None) -> float | None:
    """Seconds of deadline left to hand a worker, or ``None`` if unlimited.

    Checks the parent's budget first, so dispatching past the deadline
    raises in the parent rather than fanning out doomed work.
    """
    if budget is None or budget.deadline is None:
        return None
    budget.check_deadline("parallel dispatch")
    return budget.remaining_time()


def worker_budget(deadline: float | None, **limits) -> EvaluationBudget | None:
    """A worker-local budget enforcing the parent's remaining envelope."""
    if deadline is None and not any(v is not None for v in limits.values()):
        return None
    return EvaluationBudget(deadline=deadline, **limits)


# ---------------------------------------------------------------------------
# typed-error transport
# ---------------------------------------------------------------------------


@dataclass
class WorkerFailure:
    """A typed error captured in a worker, in picklable form.

    Custom :class:`~repro.errors.ReproError` subclasses take structured
    ``__init__`` arguments, so the live exceptions do not survive pickling
    across a process boundary; workers ship this transport record and the
    parent rebuilds an equivalent error with :func:`rebuild_error`.
    """

    kind: str
    message: str
    resource: str | None = None  # BudgetExceededError fields, when present
    limit: float | None = None
    used: float | None = None

    @classmethod
    def from_error(cls, error: ReproError) -> "WorkerFailure":
        if isinstance(error, BudgetExceededError):
            return cls(
                type(error).__name__, str(error),
                resource=error.resource, limit=error.limit, used=error.used,
            )
        return cls(type(error).__name__, str(error))


def rebuild_error(failure: WorkerFailure) -> ReproError:
    """Rehydrate a :class:`WorkerFailure` into a raisable typed error.

    Budget trips reconstruct exactly (resource/limit/used survive the
    transport); other classes are rebuilt by name when their constructor
    takes a bare message, and fall back to the nearest base class
    otherwise — the CLI exit-code taxonomy keys on ``isinstance``, so a
    base-class fallback still maps to the right exit code family.
    """
    if failure.resource is not None:
        return BudgetExceededError(
            failure.resource, failure.limit, failure.used, failure.message
        )
    cls = getattr(_errors, failure.kind, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        try:
            return cls(failure.message)
        except TypeError:
            for base in cls.__mro__[1:]:
                if issubclass(base, ReproError):
                    try:
                        return base(f"[{failure.kind}] {failure.message}")
                    except TypeError:
                        continue
    return EvaluationError(f"[{failure.kind}] {failure.message}")


# ---------------------------------------------------------------------------
# worker functions (must stay module-level: process pools pickle by name)
# ---------------------------------------------------------------------------


def evaluate_plan_points(payload: dict) -> list:
    """Evaluate one compiled plan at many actual-parameter points.

    Payload: ``plan`` (:class:`EvaluationPlan`), ``points`` (list of
    name→value dicts), ``deadline`` (remaining seconds or ``None``),
    ``use_kernel`` (compiled-kernel evaluation, default on).
    Returns one entry per point: a float ``Pfail`` or a
    :class:`WorkerFailure` (per-point isolation: one bad point does not
    poison the block).
    """
    plan = payload["plan"]
    budget = worker_budget(payload.get("deadline"))
    use_kernel = payload.get("use_kernel", True)
    results: list = []
    for point in payload["points"]:
        try:
            results.append(plan.pfail(point, budget=budget, use_kernel=use_kernel))
        except ReproError as exc:
            results.append(WorkerFailure.from_error(exc))
    return results


def plan_sweep_chunk(payload: dict) -> list[float] | WorkerFailure:
    """Evaluate one grid chunk of a sweep through a compiled plan.

    Payload: ``plan``, ``parameter``, ``values`` (list of floats),
    ``fixed`` (dict), ``deadline``, ``use_kernel``.
    """
    plan = payload["plan"]
    budget = worker_budget(payload.get("deadline"))
    try:
        return list(
            plan.pfail_grid(
                payload["parameter"], payload["values"], payload["fixed"],
                budget=budget,
                use_kernel=payload.get("use_kernel", True),
            )
        )
    except ReproError as exc:
        return WorkerFailure.from_error(exc)


def numeric_sweep_chunk(payload: dict) -> list[float] | WorkerFailure:
    """Evaluate one grid chunk through the recursive numeric evaluator.

    Payload: ``assembly_json`` (canonical ``repro/1`` text), ``service``,
    ``parameter``, ``values``, ``fixed``, ``deadline``, optional
    ``solver``.  The assembly is rebuilt from JSON because live
    assemblies do not pickle.
    """
    from repro.core.evaluator import ReliabilityEvaluator
    from repro.dsl import load_assembly

    budget = worker_budget(payload.get("deadline"))
    try:
        assembly = load_assembly(payload["assembly_json"])
        evaluator = ReliabilityEvaluator(
            assembly, validate=False, check_domains=False, budget=budget,
            solver=payload.get("solver", "auto"),
        )
        fixed = payload["fixed"]
        parameter = payload["parameter"]
        return [
            evaluator.pfail(
                payload["service"], **{**fixed, parameter: float(v)}
            )
            for v in payload["values"]
        ]
    except ReproError as exc:
        return WorkerFailure.from_error(exc)


def simulate_block(payload: dict) -> tuple[int, int] | WorkerFailure:
    """Run one Monte-Carlo trial block; returns ``(trials, failures)``.

    Payload: ``assembly_json``, ``service``, ``actuals``, ``trials``,
    ``seed``, ``deadline``.  Trials were already charged against the
    parent's budget; the worker enforces only the remaining deadline.
    """
    from repro.dsl import load_assembly
    from repro.simulation.engine import MonteCarloSimulator

    budget = worker_budget(payload.get("deadline"))
    try:
        assembly = load_assembly(payload["assembly_json"])
        simulator = MonteCarloSimulator(
            assembly, seed=payload["seed"], validate=False, budget=budget
        )
        result = simulator.estimate_pfail(
            payload["service"], payload["trials"], **payload["actuals"]
        )
        return result.trials, result.failures
    except ReproError as exc:
        return WorkerFailure.from_error(exc)


def fuzz_block(payload: dict) -> list:
    """Run a block of fuzz cases; returns the list of ``FuzzCase`` records.

    Payload: ``cases`` (list of ``(index, mutation)`` pairs — mutations
    are picklable documents), ``service``, ``actuals``, ``seed``,
    ``trials``, ``deadline``.  Case classification already treats every
    outcome as data (ok / typed-error / violation), so no failure
    transport is needed here.
    """
    from repro.robustness.harness import run_fuzz_case

    results = []
    for index, mutation in payload["cases"]:
        results.append(
            run_fuzz_case(
                index,
                mutation,
                service=payload["service"],
                actuals=payload["actuals"],
                seed=payload["seed"],
                trials=payload["trials"],
                deadline=payload["deadline"],
            )
        )
    return results
