"""Command-line interface: the "reliability prediction engine" binding.

Section 5 of the paper argues the analytic interface should live in
machine-processable service descriptions "bound to some underlying
reliability prediction engine that implements the algorithm outlined in
section 3.3".  This CLI is that engine over the ``repro/1`` JSON form:

.. code-block:: text

    python -m repro export-scenario local -o local.json
    python -m repro validate local.json
    python -m repro describe local.json
    python -m repro evaluate local.json search --set elem=1 list=500 res=1
    python -m repro evaluate local.json search --set ... --report
    python -m repro closed-form local.json search
    python -m repro batch search --model local.json --model remote.json \\
        --at elem=1 list=500 res=1 --at elem=1 list=1000 res=1 --jobs 4
    python -m repro sweep local.json search list --from 1 --to 1000 \\
        --points 25 --set elem=1 res=1 --jobs 4
    python -m repro compare local.json remote.json search list \\
        --from 1 --to 1000 --points 25 --set elem=1 res=1
    python -m repro invocations local.json search --set elem=1 list=500 res=1
    python -m repro simulate local.json search --trials 20000 --seed 7 \\
        --set elem=1 list=500 res=1 --jobs 2
    python -m repro fuzz local.json --count 200 --seed 7 --jobs 2
    python -m repro serve --port 8349

``--jobs N`` fans the command's independent work units (batch points,
sweep grid chunks, Monte-Carlo trial blocks, fuzz cases) across ``N``
workers through :mod:`repro.engine`; ``--jobs 0`` uses every core and the
default ``--jobs 1`` keeps the exact sequential path.

``--metrics summary`` (on ``evaluate``/``batch``/``sweep``/``fuzz``)
prints a per-span profile table and the counter/gauge values collected by
:mod:`repro.observability`; ``--metrics json:PATH`` writes the snapshot as
``repro/metrics/1`` JSON; ``--trace PATH`` appends one JSON line per
finished span.  Worker processes ship their metrics and spans back to the
parent, so the output aggregates the whole pool.  Both flags default to
off, in which case the instrumentation short-circuits to no-ops.

Errors never surface as tracebacks: every :class:`ReproError` subtree maps
to its own nonzero exit code with a one-line message on stderr (see
``EXIT_CODES`` / ``--help``), so unattended callers can branch on the
failure class.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.errors import (
    BudgetExceededError,
    EvaluationError,
    MarkovError,
    ModelError,
    NumericalInstabilityError,
    ReproError,
    SymbolicError,
    WorkerCrashedError,
)

__all__ = ["main", "build_parser", "exit_code_for", "EXIT_CODES"]

#: The exit-code taxonomy, most specific error class first.
EXIT_CODES: tuple[tuple[type[BaseException], int], ...] = (
    (NumericalInstabilityError, 7),
    (BudgetExceededError, 8),
    (WorkerCrashedError, 11),
    (ModelError, 3),
    (SymbolicError, 4),
    (MarkovError, 5),
    (EvaluationError, 6),
    (ReproError, 10),
)

#: Exit code when the fuzz harness finds a contract violation.
EXIT_FUZZ_VIOLATION = 9

_EXIT_CODE_HELP = """\
exit codes:
   0  success
   1  generic failure (missing file, invalid model report)
   2  usage error (bad command line)
   3  model error — malformed model or input document
   4  symbolic error — expression parsing/evaluation
   5  markov error — non-analyzable Markov chain
   6  evaluation error — evaluator failure (cycles, bad actuals, ...)
   7  numerical instability — result rejected as untrustworthy
   8  budget exceeded — deadline/state/depth/sweep/trial limit hit
   9  fuzz contract violated — a mutated model crashed the engine
  10  other repro error
  11  worker died — a pool process was killed (SIGKILL/OOM) mid-run;
      rerun as a campaign (--store/--resume) to retry around it
"""


def exit_code_for(error: ReproError) -> int:
    """The taxonomy exit code for a :class:`ReproError` instance."""
    for cls, code in EXIT_CODES:
        if isinstance(error, cls):
            return code
    return 10  # pragma: no cover - EXIT_CODES ends with ReproError


def _parse_bindings(pairs: Sequence[str]) -> dict[str, float]:
    bindings: dict[str, float] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise ReproError(
                f"--set expects name=value pairs, got {pair!r}"
            )
        try:
            bindings[name] = float(value)
        except ValueError:
            raise ReproError(f"--set {pair!r}: {value!r} is not a number") from None
    return bindings


def _load(path: str):
    from repro.dsl import load_assembly

    text = Path(path).read_text()
    return load_assembly(text)


def _budget_from_args(args):
    """An :class:`~repro.runtime.EvaluationBudget` from the budget flags,
    or ``None`` when no limit was requested."""
    from repro.runtime import EvaluationBudget

    limits = {
        "deadline": getattr(args, "deadline", None),
        "max_states": getattr(args, "max_states", None),
        "max_depth": getattr(args, "max_depth", None),
        "max_sweeps": getattr(args, "max_sweeps", None),
        "max_trials": getattr(args, "max_trials", None),
    }
    if all(v is None for v in limits.values()):
        return None
    return EvaluationBudget(**limits)


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Architecture-based reliability prediction engine "
                    "(Grassi, LNCS 3549).",
        epilog=_EXIT_CODE_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_set(sub):
        sub.add_argument(
            "--set", nargs="*", default=[], metavar="NAME=VALUE",
            help="actual parameter bindings",
        )

    def non_negative(cast):
        def parse(text: str):
            try:
                value = cast(text)
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"invalid {cast.__name__} value: {text!r}"
                ) from None
            if value < 0:
                raise argparse.ArgumentTypeError(
                    f"must be non-negative, got {text!r}"
                )
            return value
        return parse

    def add_jobs(sub):
        sub.add_argument(
            "--jobs", type=non_negative(int), default=1, metavar="N",
            help="parallel workers (0 = all cores, 1 = sequential)",
        )

    def add_compile(sub):
        sub.add_argument(
            "--no-compile", action="store_true",
            help="evaluate closed forms by recursive tree walk instead of "
                 "compiled numpy kernels (escape hatch; slower)",
        )

    def add_solver(sub):
        sub.add_argument(
            "--solver", choices=["auto", "dense", "sparse"], default="auto",
            help="linear-solver backend for absorbing-chain solves: auto "
                 "(structure-aware; default), dense (numpy), sparse "
                 "(CSR + splu / triangular fast path; needs scipy)",
        )

    def add_incremental(sub):
        sub.add_argument(
            "--incremental", action="store_true",
            help="serve structurally identical re-solves through low-rank "
                 "(Sherman-Morrison-Woodbury) updates of the cached base "
                 "factorization instead of re-factoring per point "
                 "(numeric solves only; needs scipy, silently off without)",
        )

    def add_fused(sub):
        sub.add_argument(
            "--fused", action=argparse.BooleanOptionalAction, default=True,
            help="fused execution (default on): symbolic grids/batches run "
                 "through one stacked kernel call per model group, and "
                 "heavy parallel workloads ride the zero-pickle "
                 "shared-memory transport; --no-fused restores the "
                 "per-point and pickling pool paths",
        )

    def metrics_mode(text: str) -> str:
        if text in ("off", "summary") or text.startswith("json:"):
            return text
        raise argparse.ArgumentTypeError(
            f"expected off, summary or json:PATH, got {text!r}"
        )

    def add_observability(sub):
        sub.add_argument(
            "--metrics", type=metrics_mode, default="off",
            metavar="{off,summary,json:PATH}",
            help="collect evaluation metrics: 'summary' prints a profile "
                 "table and counter list, 'json:PATH' writes a metrics "
                 "snapshot as JSON (schema repro/metrics/1)",
        )
        sub.add_argument(
            "--trace", default=None, metavar="PATH",
            help="append one JSON line per finished span to PATH",
        )

    def add_campaign(sub):
        group = sub.add_argument_group(
            "campaign mode",
            "fault-tolerant sharded execution (repro.workunits): any of "
            "these flags switches the command to a supervised campaign "
            "with per-unit retry, quarantine and a resumable journal",
        )
        group.add_argument(
            "--store", default=None, metavar="PATH",
            help="journal every work-unit attempt to this JSONL store "
                 "(an existing store for the same campaign is resumed)",
        )
        group.add_argument(
            "--resume", default=None, metavar="STORE",
            help="resume from an existing journal: completed units are "
                 "skipped, output is bit-identical to an uninterrupted run",
        )
        group.add_argument(
            "--unit-timeout", type=non_negative(float), default=None,
            metavar="SECONDS",
            help="hard per-unit wall-clock timeout; hung workers are "
                 "killed and the unit retried",
        )
        group.add_argument(
            "--retries", type=non_negative(int), default=2, metavar="N",
            help="failed attempts a unit may retry before quarantine "
                 "(default 2; capped exponential backoff between attempts)",
        )
        group.add_argument(
            "--validate-redundancy", type=non_negative(int), default=0,
            metavar="N",
            help="re-execute every N-th completed unit and compare the "
                 "payloads (0 = off; a nondeterminism tripwire)",
        )
        group.add_argument(
            "--units", type=non_negative(int), default=None, metavar="N",
            help="shard the campaign into N work units (default: "
                 "kind-specific slice size, independent of --jobs)",
        )
        group.add_argument(
            "--chaos", default=None, metavar="SPEC",
            help="inject worker faults for testing, e.g. "
                 "'crash@0,hang@1,corrupt@2x*' (ACTION@UNIT[xN|x*])",
        )

    def add_budget(sub):
        sub.add_argument(
            "--deadline", type=non_negative(float), default=None,
            metavar="SECONDS",
            help="wall-clock budget; exceeding it exits with code 8",
        )
        sub.add_argument(
            "--max-states", type=non_negative(int), default=None, metavar="N",
            help="largest absorbing DTMC the solver may factor",
        )
        sub.add_argument(
            "--max-depth", type=non_negative(int), default=None, metavar="N",
            help="maximum service-composition recursion depth",
        )
        sub.add_argument(
            "--max-sweeps", type=non_negative(int), default=None, metavar="N",
            help="maximum fixed-point sweeps",
        )
        sub.add_argument(
            "--max-trials", type=non_negative(int), default=None, metavar="N",
            help="maximum Monte Carlo trials",
        )

    sub = commands.add_parser("validate", help="structural validation report")
    sub.add_argument("file")

    sub = commands.add_parser("describe", help="render assembly and flows")
    sub.add_argument("file")

    sub = commands.add_parser("evaluate", help="predict Pfail/reliability")
    sub.add_argument("file")
    sub.add_argument("service")
    add_set(sub)
    add_budget(sub)
    add_solver(sub)
    add_incremental(sub)
    sub.add_argument(
        "--report", action="store_true",
        help="include the per-state failure breakdown",
    )
    sub.add_argument(
        "--fixed-point", action="store_true",
        help="use the fixed-point evaluator (required for recursive "
             "assemblies)",
    )
    sub.add_argument(
        "--robust", action="store_true",
        help="run the graceful-degradation chain (symbolic -> numeric -> "
             "fixed-point -> Monte Carlo) and report the serving tier",
    )
    add_observability(sub)

    sub = commands.add_parser(
        "closed-form", help="derive the symbolic Pfail expression"
    )
    sub.add_argument("file")
    sub.add_argument("service")
    sub.add_argument(
        "--symbolic-attributes", action="store_true",
        help="leave interface attributes as free 'service::attr' symbols",
    )

    sub = commands.add_parser(
        "batch",
        help="evaluate many (model, point) pairs in one pass with plan "
             "caching and an optional worker pool",
    )
    sub.add_argument("service")
    sub.add_argument(
        "--model", action="append", required=True, metavar="FILE",
        help="assembly to evaluate (repeat for a multi-model batch)",
    )
    sub.add_argument(
        "--at", action="append", nargs="+", default=None, metavar="NAME=VALUE",
        help="one evaluation point per --at group (repeatable); every "
             "model is evaluated at every point",
    )
    add_jobs(sub)
    add_budget(sub)
    add_compile(sub)
    add_solver(sub)
    add_incremental(sub)
    add_fused(sub)
    add_campaign(sub)
    add_observability(sub)

    sub = commands.add_parser("sweep", help="reliability vs one parameter")
    sub.add_argument("file")
    sub.add_argument("service")
    sub.add_argument("parameter")
    sub.add_argument("--from", dest="start", type=float, required=True)
    sub.add_argument("--to", dest="stop", type=float, required=True)
    sub.add_argument("--points", type=int, default=20)
    sub.add_argument(
        "--method", choices=["symbolic", "numeric"], default="symbolic",
        help="evaluation back-end for the grid",
    )
    add_set(sub)
    add_jobs(sub)
    add_budget(sub)
    add_compile(sub)
    add_solver(sub)
    add_incremental(sub)
    add_fused(sub)
    add_campaign(sub)
    add_observability(sub)

    sub = commands.add_parser(
        "compare", help="two assemblies head-to-head with crossovers"
    )
    sub.add_argument("file_a")
    sub.add_argument("file_b")
    sub.add_argument("service")
    sub.add_argument("parameter")
    sub.add_argument("--from", dest="start", type=float, required=True)
    sub.add_argument("--to", dest="stop", type=float, required=True)
    sub.add_argument("--points", type=int, default=20)
    add_set(sub)

    sub = commands.add_parser(
        "invocations", help="expected invocation counts per service"
    )
    sub.add_argument("file")
    sub.add_argument("service")
    add_set(sub)

    sub = commands.add_parser(
        "simulate", help="Monte Carlo fault-injection estimate"
    )
    sub.add_argument("file")
    sub.add_argument("service")
    sub.add_argument("--trials", type=int, default=10_000)
    sub.add_argument("--seed", type=int, default=None)
    add_set(sub)
    add_jobs(sub)
    add_budget(sub)

    sub = commands.add_parser(
        "fuzz",
        help="model fault injection: corrupt the assembly N ways and "
             "assert the engine answers or refuses with a typed error",
    )
    sub.add_argument("file")
    sub.add_argument(
        "--service", default=None,
        help="target service (default: top-level composite)",
    )
    sub.add_argument(
        "--count", type=int, default=200,
        help="number of mutated models to run (default 200)",
    )
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--trials", type=int, default=2_000,
        help="Monte Carlo trials for the degradation tier",
    )
    sub.add_argument(
        "--deadline", type=float, default=10.0,
        help="per-case wall-clock budget in seconds",
    )
    sub.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: fewer trials and a tight per-case deadline",
    )
    add_set(sub)
    add_jobs(sub)
    add_campaign(sub)
    add_observability(sub)

    sub = commands.add_parser(
        "performance", help="predict the expected execution time"
    )
    sub.add_argument("file")
    sub.add_argument("service")
    add_set(sub)

    sub = commands.add_parser(
        "uncertainty",
        help="propagate published-attribute uncertainty to the prediction",
    )
    sub.add_argument("file")
    sub.add_argument("service")
    sub.add_argument(
        "--relative-std", type=float, default=0.1,
        help="relative standard deviation applied to every attribute",
    )
    sub.add_argument("--samples", type=int, default=10_000)
    sub.add_argument("--seed", type=int, default=None)
    add_set(sub)

    sub = commands.add_parser(
        "serve",
        help="run the reliability-as-a-service daemon: a long-running "
             "HTTP server with persistent warm caches (plan, kernel, "
             "solver, model), request coalescing and load shedding",
    )
    sub.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1; 0.0.0.0 exposes the "
             "daemon to the network)",
    )
    sub.add_argument(
        "--port", type=non_negative(int), default=8349,
        help="TCP port (default 8349; 0 picks an ephemeral port and "
             "prints it in the banner)",
    )
    sub.add_argument(
        "--max-inflight", type=non_negative(int), default=64, metavar="N",
        help="concurrent evaluations admitted before shedding with 429 "
             "(default 64)",
    )
    sub.add_argument(
        "--max-body-bytes", type=non_negative(int),
        default=8 * 1024 * 1024, metavar="BYTES",
        help="largest accepted request body (default 8 MiB)",
    )
    sub.add_argument(
        "--plan-cache-size", type=non_negative(int), default=256, metavar="N",
        help="compiled evaluation plans kept warm (LRU; default 256)",
    )
    sub.add_argument(
        "--model-cache-size", type=non_negative(int), default=64, metavar="N",
        help="parsed model documents kept warm, keyed by content digest "
             "(LRU; default 64)",
    )
    sub.add_argument(
        "--quiet", action="store_true",
        help="suppress per-request log lines (the banner still prints; "
             "all server output goes to stderr either way)",
    )
    add_budget(sub)
    add_observability(sub)

    sub = commands.add_parser(
        "export-scenario",
        help="write a built-in scenario assembly as repro/1 JSON",
    )
    sub.add_argument(
        "name",
        choices=["local", "remote", "booking", "booking-shared",
                 "pipeline", "shared-db", "replicated-db"],
    )
    sub.add_argument("-o", "--output", default=None, help="output path "
                     "(default: stdout)")

    return parser


def _cmd_validate(args) -> int:
    from repro.model import validate_assembly

    report = validate_assembly(_load(args.file))
    print(report)
    return 0 if report.ok else 1


def _cmd_describe(args) -> int:
    from repro.model.service import CompositeService

    assembly = _load(args.file)
    print(assembly.describe())
    for service in assembly.services:
        if isinstance(service, CompositeService):
            print(f"\nflow of {service.name!r}:")
            print(service.flow.describe())
    return 0


def _cmd_evaluate(args) -> int:
    from repro.core import FixedPointEvaluator, ReliabilityEvaluator

    assembly = _load(args.file)
    bindings = _parse_bindings(args.set)
    budget = _budget_from_args(args)
    if args.robust:
        from repro.runtime import RobustEvaluator

        evaluator = RobustEvaluator(
            assembly, budget=budget, solver=args.solver,
            incremental=args.incremental,
        )
        print(evaluator.evaluate(args.service, **bindings))
        return 0
    cls = FixedPointEvaluator if args.fixed_point else ReliabilityEvaluator
    evaluator = cls(
        assembly, budget=budget, solver=args.solver,
        incremental=args.incremental,
    )
    if args.report:
        print(evaluator.report(args.service, **bindings))
    else:
        pfail = evaluator.pfail(args.service, **bindings)
        print(f"Pfail({args.service}) = {pfail:.9e}")
        print(f"R({args.service})     = {1.0 - pfail:.9f}")
    return 0


def _cmd_closed_form(args) -> int:
    from repro.core import SymbolicEvaluator

    assembly = _load(args.file)
    evaluator = SymbolicEvaluator(
        assembly, symbolic_attributes=args.symbolic_attributes
    )
    expression = evaluator.pfail_expression(args.service)
    print(f"Pfail({args.service}, {', '.join(sorted(expression.free_parameters()))}) =")
    print(f"  {expression}")
    return 0


def _kernel_stats_line(enabled: bool) -> str:
    """One-line summary of the process-wide kernel cache for batch/sweep
    output (hit/miss counters of :func:`repro.symbolic.kernel_cache_stats`)."""
    if not enabled:
        return "kernel cache: compilation disabled (--no-compile)"
    from repro.symbolic import default_kernel_cache

    cache = default_kernel_cache()
    stats = cache.stats
    return (
        f"kernel cache: {stats.hits} hits, {stats.misses} misses, "
        f"{len(cache)} kernel(s) cached"
    )


def _campaign_requested(args) -> bool:
    """True when any campaign-mode flag was used on this invocation."""
    return any((
        getattr(args, "store", None) is not None,
        getattr(args, "resume", None) is not None,
        getattr(args, "unit_timeout", None) is not None,
        getattr(args, "validate_redundancy", 0),
        getattr(args, "units", None) is not None,
        getattr(args, "chaos", None) is not None,
    ))


#: sentinel: "derive the campaign budget from this command's budget flags"
_BUDGET_FROM_FLAGS = object()


def _campaign_run(args, campaign, budget=_BUDGET_FROM_FLAGS):
    """Run ``campaign`` under the supervisor with this command's flags.

    Returns the :class:`~repro.workunits.CampaignReport`; the campaign
    summary goes to stderr so stdout stays bit-identical across
    interrupted-and-resumed runs.  Commands whose ``--deadline`` flag is
    *not* a whole-run budget (fuzz: it is per-case) must pass ``budget``
    explicitly.
    """
    from repro.workunits import run_campaign

    if args.store is not None and args.resume is not None:
        raise ReproError("--store and --resume are mutually exclusive "
                         "(both name the journal; pick one)")
    chaos = None
    if args.chaos is not None:
        from repro.robustness import ChaosPolicy

        chaos = ChaosPolicy.parse(args.chaos)
    report = run_campaign(
        campaign,
        args.store if args.store is not None else args.resume,
        jobs=args.jobs,
        unit_timeout=args.unit_timeout,
        retries=args.retries,
        validate_redundancy=args.validate_redundancy,
        budget=_budget_from_args(args) if budget is _BUDGET_FROM_FLAGS
        else budget,
        chaos=chaos,
    )
    print(report.summary(), file=sys.stderr)
    return report


def _cmd_batch_campaign(args) -> int:
    from repro.workunits import assemble_batch, batch_campaign

    points = [_parse_bindings(group) for group in args.at] if args.at else None
    campaign = batch_campaign(
        [(path, _load(path)) for path in args.model],
        args.service,
        points,
        solver=args.solver,
        compile=not args.no_compile,
        incremental=args.incremental,
        fused=args.fused,
        units=args.units,
    )
    report = _campaign_run(args, campaign)
    entries = assemble_batch(campaign, report)
    for entry in entries:
        point = " ".join(
            f"{k}={v:g}" for k, v in sorted(entry.actuals.items())
        ) or "-"
        if entry.ok:
            print(
                f"{entry.label:24s} {point:32s} "
                f"Pfail = {entry.pfail:.9e}  [{entry.backend}]"
            )
        else:
            print(
                f"{entry.label:24s} {point:32s} "
                f"error[{type(entry.error).__name__}]: {entry.error}"
            )
    return 0 if report.ok and all(e.ok for e in entries) else 1


def _cmd_batch(args) -> int:
    if _campaign_requested(args):
        return _cmd_batch_campaign(args)
    from repro.engine import BatchEngine, BatchRequest
    from repro.robustness.harness import domain_representative

    def default_point(assembly):
        # no --at: evaluate each model at its domain representatives
        service = assembly.service(args.service)
        return {
            p.name: domain_representative(p.domain)
            for p in service.interface.formal_parameters
        }

    points = [_parse_bindings(group) for group in args.at] if args.at else None
    engine = BatchEngine(
        jobs=args.jobs,
        budget=_budget_from_args(args),
        compile=not args.no_compile,
        solver=args.solver,
        incremental=args.incremental,
        fused=args.fused,
    )
    models = [_load(path) for path in args.model]
    requests = [
        BatchRequest(assembly, args.service, point, label=path)
        for path, assembly in zip(args.model, models)
        for point in (points if points is not None else [default_point(assembly)])
    ]
    result = engine.run(requests)
    for entry in result:
        point = " ".join(
            f"{k}={v:g}" for k, v in sorted(entry.actuals.items())
        ) or "-"
        if entry.ok:
            print(
                f"{entry.label:24s} {point:32s} "
                f"Pfail = {entry.pfail:.9e}  [{entry.backend}]"
            )
        else:
            print(
                f"{entry.label:24s} {point:32s} "
                f"error[{type(entry.error).__name__}]: {entry.error}"
            )
    stats = result.stats
    print(
        f"batch: {stats.entries} evaluations over {stats.plans} plans "
        f"({stats.compilations} compiled, {stats.cache_hits} cache hits, "
        f"{stats.fused_entries} fused) "
        f"with {stats.jobs} worker(s) in {stats.elapsed:.3f}s"
    )
    print(_kernel_stats_line(enabled=not args.no_compile))
    return 0 if result.ok else 1


def _cmd_sweep_campaign(args) -> int:
    from repro.analysis import format_sweep
    from repro.workunits import assemble_sweep, sweep_campaign

    campaign = sweep_campaign(
        _load(args.file),
        args.service,
        args.parameter,
        [float(v) for v in np.linspace(args.start, args.stop, args.points)],
        _parse_bindings(args.set),
        method=args.method,
        solver=args.solver,
        compile=not args.no_compile,
        incremental=args.incremental,
        units=args.units,
    )
    report = _campaign_run(args, campaign)
    print(format_sweep(assemble_sweep(campaign, report)))
    return 0 if report.ok else 1


def _cmd_sweep(args) -> int:
    from repro.analysis import format_sweep, sweep_parameter

    if _campaign_requested(args):
        return _cmd_sweep_campaign(args)
    assembly = _load(args.file)
    grid = np.linspace(args.start, args.stop, args.points)
    sweep = sweep_parameter(
        assembly, args.service, args.parameter, grid, _parse_bindings(args.set),
        method=args.method, jobs=args.jobs, budget=_budget_from_args(args),
        compile=not args.no_compile, solver=args.solver,
        incremental=args.incremental, fused=args.fused,
    )
    print(format_sweep(sweep))
    print(_kernel_stats_line(enabled=not args.no_compile))
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis import compare_assemblies, format_comparison

    grid = np.linspace(args.start, args.stop, args.points)
    comparison = compare_assemblies(
        _load(args.file_a), _load(args.file_b), args.service, args.parameter,
        grid, _parse_bindings(args.set),
    )
    print(format_comparison(comparison))
    return 0


def _cmd_invocations(args) -> int:
    from repro.analysis import expected_invocations

    profile = expected_invocations(
        _load(args.file), args.service, **_parse_bindings(args.set)
    )
    print(profile)
    return 0


def _cmd_simulate(args) -> int:
    from repro.simulation import MonteCarloSimulator

    simulator = MonteCarloSimulator(
        _load(args.file), seed=args.seed, budget=_budget_from_args(args)
    )
    result = simulator.estimate_pfail(
        args.service, args.trials, jobs=args.jobs, **_parse_bindings(args.set)
    )
    low, high = result.confidence_interval()
    print(
        f"simulated Pfail({args.service}) = {result.pfail:.6e} "
        f"({result.failures}/{result.trials} failures)"
    )
    print(f"95% Wilson interval: [{low:.6e}, {high:.6e}]")
    return 0


def _cmd_performance(args) -> int:
    from repro.core import PerformanceEvaluator
    from repro.model.service import CompositeService

    assembly = _load(args.file)
    bindings = _parse_bindings(args.set)
    evaluator = PerformanceEvaluator(assembly)
    duration = evaluator.expected_duration(args.service, **bindings)
    print(f"E[T]({args.service}) = {duration:.6e} time units")
    if isinstance(assembly.service(args.service), CompositeService):
        print("per-state breakdown (duration x expected visits):")
        for name, (state_duration, visits) in evaluator.state_durations(
            args.service, **bindings
        ).items():
            print(
                f"  {name:20s} {state_duration:.6e} x {visits:.4f} "
                f"= {state_duration * visits:.6e}"
            )
    return 0


def _cmd_uncertainty(args) -> int:
    from repro.analysis import delta_method, sample_uncertainty

    assembly = _load(args.file)
    bindings = _parse_bindings(args.set)
    delta = delta_method(
        assembly, args.service, bindings, relative_std=args.relative_std
    )
    sampled = sample_uncertainty(
        assembly, args.service, bindings,
        relative_std=args.relative_std, samples=args.samples, seed=args.seed,
    )
    low, high = delta.interval()
    print(f"Pfail({args.service}) = {delta.pfail:.6e}")
    print(
        f"attribute uncertainty +/-{args.relative_std * 100:.0f}% -> "
        f"std {delta.std:.3e} (delta method), {sampled.std:.3e} (sampled)"
    )
    print(f"95% interval (delta): [{low:.6e}, {high:.6e}]")
    print("sampled percentiles:")
    for p, value in sorted(sampled.percentiles.items()):
        print(f"  p{p:>4.1f}  {value:.6e}")
    if delta.contributions:
        print("variance contributions:")
        ranked = sorted(
            delta.contributions.items(), key=lambda kv: kv[1], reverse=True
        )
        for name, share in ranked[:5]:
            print(f"  {name:35s} {share * 100:6.2f}%")
    return 0


def _cmd_export_scenario(args) -> int:
    from repro.dsl import dump_assembly
    from repro.scenarios import (
        booking_assembly,
        local_assembly,
        pipeline_assembly,
        remote_assembly,
        replicated_assembly,
    )

    builders = {
        "local": local_assembly,
        "remote": remote_assembly,
        "booking": booking_assembly,
        "booking-shared": lambda: booking_assembly(shared_gds=True),
        "pipeline": pipeline_assembly,
        "shared-db": lambda: replicated_assembly(3, shared=True),
        "replicated-db": lambda: replicated_assembly(3, shared=False),
    }
    text = dump_assembly(builders[args.name]())
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_serve(args) -> int:
    from repro import observability as obs
    from repro.engine.cache import PlanCache
    from repro.server import EvaluationService, ReproServer

    # the daemon always collects metrics so GET /metrics is live; the
    # --metrics/--trace flags only control what is *emitted* on shutdown
    # (handled by _finish_observation — on stderr/file, never stdout)
    obs.enable()
    limits = {
        name: value
        for name, value in {
            "deadline": args.deadline,
            "max_states": args.max_states,
            "max_depth": args.max_depth,
            "max_sweeps": args.max_sweeps,
            "max_trials": args.max_trials,
        }.items()
        if value is not None
    }
    service = EvaluationService(
        plan_cache=PlanCache(args.plan_cache_size or None),
        model_cache_size=args.model_cache_size,
        default_budget=limits,
        max_inflight=args.max_inflight,
    )
    server = ReproServer(
        host=args.host,
        port=args.port,
        service=service,
        max_body_bytes=args.max_body_bytes,
        quiet=args.quiet,
    )
    return server.serve_forever()


def _cmd_fuzz_campaign(args) -> int:
    from repro.workunits import assemble_fuzz, fuzz_campaign

    bindings = _parse_bindings(args.set)
    trials = 500 if args.smoke else args.trials
    deadline = min(args.deadline, 5.0) if args.smoke else args.deadline
    campaign = fuzz_campaign(
        _load(args.file),
        args.count,
        seed=args.seed,
        service=args.service,
        actuals=bindings or None,
        trials=trials,
        deadline=deadline,
        units=args.units,
    )
    # fuzz's --deadline is the per-case budget baked into each unit, not
    # a whole-campaign wall clock — never hand it to the supervisor
    report = _campaign_run(args, campaign, budget=None)
    fuzz = assemble_fuzz(campaign, report)
    print(fuzz.summary())
    if not fuzz.ok:
        return EXIT_FUZZ_VIOLATION
    return 0 if report.ok else 1


def _cmd_fuzz(args) -> int:
    from repro.robustness import FuzzHarness

    if _campaign_requested(args):
        return _cmd_fuzz_campaign(args)
    bindings = _parse_bindings(args.set)
    trials = 500 if args.smoke else args.trials
    deadline = min(args.deadline, 5.0) if args.smoke else args.deadline
    harness = FuzzHarness(
        _load(args.file),
        service=args.service,
        actuals=bindings or None,
        seed=args.seed,
        trials=trials,
        deadline=deadline,
    )
    report = harness.run(args.count, jobs=args.jobs)
    print(report.summary())
    return 0 if report.ok else EXIT_FUZZ_VIOLATION


def _begin_observation(args):
    """Enable metrics/trace collection when the command asked for it.

    Returns the state tuple :func:`_finish_observation` needs, or ``None``
    when both flags are off (the zero-overhead default).
    """
    metrics = getattr(args, "metrics", "off")
    trace = getattr(args, "trace", None)
    if metrics == "off" and trace is None:
        return None
    from repro import observability as obs
    from repro.observability.hooks import JsonlSink

    obs.reset()
    sink = None
    hooks = []
    if trace is not None:
        sink = JsonlSink(trace)
        hooks.append(sink)
    obs.enable(hooks=hooks)
    return metrics, trace, sink


def _finish_observation(state) -> None:
    """Emit the requested metrics/trace outputs and disable collection.

    Runs in a ``finally`` so a failing command still flushes what it
    collected — the profile of a run that tripped its budget is exactly
    the interesting one.
    """
    if state is None:
        return
    metrics, trace, sink = state
    from repro import observability as obs
    from repro.observability.hooks import SummarySink

    if metrics == "summary":
        summary = SummarySink()
        summary.merge_records([s.to_dict() for s in obs.tracer().finished])
        print(summary.render(), file=sys.stderr)
        snapshot = obs.registry().snapshot()
        for name, value in sorted(snapshot["counters"].items()):
            print(f"  {name} = {value}", file=sys.stderr)
        for name, value in sorted(snapshot["gauges"].items()):
            print(f"  {name} = {value:g}", file=sys.stderr)
    elif metrics.startswith("json:"):
        Path(metrics[len("json:"):]).write_text(
            obs.registry().to_json() + "\n"
        )
    if sink is not None:
        sink.close()
        if sink.write_errors:
            print(
                f"warning: {sink.write_errors} trace write error(s) on "
                f"{trace}", file=sys.stderr,
            )
    obs.reset()


_COMMANDS = {
    "validate": _cmd_validate,
    "describe": _cmd_describe,
    "evaluate": _cmd_evaluate,
    "closed-form": _cmd_closed_form,
    "batch": _cmd_batch,
    "sweep": _cmd_sweep,
    "compare": _cmd_compare,
    "invocations": _cmd_invocations,
    "simulate": _cmd_simulate,
    "performance": _cmd_performance,
    "uncertainty": _cmd_uncertainty,
    "export-scenario": _cmd_export_scenario,
    "fuzz": _cmd_fuzz,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Every :class:`ReproError` maps to its taxonomy exit code (see
    ``EXIT_CODES``) with a one-line ``error[<Class>]`` message on stderr —
    no tracebacks at this boundary.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    observation = _begin_observation(args)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error[{type(exc).__name__}]: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        _finish_observation(observation)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
