"""Profiling hooks: pluggable observers of the span stream.

A :class:`Hook` sees every span start and end, which is enough to build any
profiling view without touching the tracer: the three shippable sinks are

- :class:`InMemorySink` — collects finished spans for programmatic
  inspection (what the property tests assert balance over);
- :class:`JsonlSink` — appends one JSON object per finished span to a
  file (the ``--trace PATH`` CLI flag);
- :class:`SummarySink` — aggregates wall/CPU totals per span name and
  renders the ``--metrics summary`` profile table.

Hooks must never raise into the instrumented path — the tracer calls them
inline — so sinks that touch the filesystem swallow ``OSError`` and record
it on themselves instead.
"""

from __future__ import annotations

import json
from typing import Protocol, runtime_checkable

from repro.observability.tracing import Span

__all__ = ["Hook", "InMemorySink", "JsonlSink", "SummarySink"]


@runtime_checkable
class Hook(Protocol):
    """The span-observer protocol; both methods are required."""

    def on_span_start(self, span: Span) -> None: ...

    def on_span_end(self, span: Span) -> None: ...


class InMemorySink:
    """Collect finished spans in a list (open spans are counted only)."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.started = 0

    def on_span_start(self, span: Span) -> None:
        self.started += 1

    def on_span_end(self, span: Span) -> None:
        self.spans.append(span)

    @property
    def open_spans(self) -> int:
        """Spans started but not yet finished (0 when balanced)."""
        return self.started - len(self.spans)


class JsonlSink:
    """Append one JSON line per finished span to ``path``.

    The file is opened lazily on the first span and must be released with
    :meth:`close` (the CLI does so in a ``finally``).  I/O failures are
    recorded in :attr:`write_errors` instead of raised — tracing must not
    take down the evaluation it observes.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self.write_errors = 0
        self._handle = None

    def on_span_start(self, span: Span) -> None:
        pass

    def on_span_end(self, span: Span) -> None:
        try:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        except OSError:
            self.write_errors += 1

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                self.write_errors += 1
            self._handle = None


class SummarySink:
    """Aggregate spans by name into a profile table.

    Per name: call count, total/max wall seconds, total CPU seconds, and
    error count.  :meth:`render` produces the aligned text table the CLI
    prints for ``--metrics summary``.
    """

    def __init__(self) -> None:
        self.rows: dict[str, dict[str, float]] = {}

    def on_span_start(self, span: Span) -> None:
        pass

    def on_span_end(self, span: Span) -> None:
        row = self.rows.setdefault(
            span.name,
            {"count": 0, "wall": 0.0, "wall_max": 0.0, "cpu": 0.0, "errors": 0},
        )
        row["count"] += 1
        row["wall"] += span.wall
        row["wall_max"] = max(row["wall_max"], span.wall)
        row["cpu"] += span.cpu
        if span.status == "error":
            row["errors"] += 1

    def merge_records(self, records: list[dict]) -> None:
        """Fold exported span dicts (e.g. from a worker) into the table."""
        for record in records:
            row = self.rows.setdefault(
                record.get("name", "?"),
                {"count": 0, "wall": 0.0, "wall_max": 0.0, "cpu": 0.0,
                 "errors": 0},
            )
            row["count"] += 1
            row["wall"] += float(record.get("wall", 0.0))
            row["wall_max"] = max(
                row["wall_max"], float(record.get("wall", 0.0))
            )
            row["cpu"] += float(record.get("cpu", 0.0))
            if record.get("status") == "error":
                row["errors"] += 1

    def render(self) -> str:
        """The profile table, widest spans first."""
        if not self.rows:
            return "profile: no spans recorded"
        lines = [
            f"{'span':32s} {'count':>7s} {'wall(s)':>10s} {'max(s)':>10s} "
            f"{'cpu(s)':>10s} {'errors':>6s}"
        ]
        ranked = sorted(
            self.rows.items(), key=lambda kv: kv[1]["wall"], reverse=True
        )
        for name, row in ranked:
            lines.append(
                f"{name:32s} {int(row['count']):7d} {row['wall']:10.4f} "
                f"{row['wall_max']:10.4f} {row['cpu']:10.4f} "
                f"{int(row['errors']):6d}"
            )
        return "\n".join(lines)
