"""Structured tracing: nested spans with wall/CPU time, tags and parents.

A *span* is one timed region of work — a degradation tier, a plan
compilation, a batch entry — with a name, free-form tags, and a parent, so
nested spans form the call tree of one evaluation.  The API is a context
manager::

    with tracer.span("robust.tier", tier="symbolic") as span:
        ...
        span.set_tag(result="ok")

Design constraints, in order:

1. **Disabled means free** — the facade in :mod:`repro.observability`
   short-circuits to a shared :data:`NO_SPAN` singleton before any of this
   module runs, so uninstrumented operation costs one branch.
2. **Usable from worker processes** — spans carry process-unique string
   ids (``"<pid>-<n>"``); a worker exports its finished spans as plain
   dicts and the parent re-parents them under the dispatching span with
   :meth:`Tracer.merge` ("span merging on join").
3. **Bounded memory** — a tracer retains at most ``max_spans`` finished
   spans (oldest kept, so the trace prefix survives) and counts the
   overflow in :attr:`Tracer.dropped`.

Hooks (see :mod:`repro.observability.hooks`) observe every span start and
end, which is how the JSONL trace file and the ``--profile``-style summary
table are produced without the tracer knowing about either.
"""

from __future__ import annotations

import itertools
import os
import threading
import time

__all__ = ["NO_SPAN", "Span", "Tracer"]


class Span:
    """One timed, tagged region of work.

    Attributes:
        name: the span's dotted name (``"robust.tier"``).
        tags: free-form string→value tags (set at creation or via
            :meth:`set_tag`).
        span_id: process-unique string id.
        parent_id: the enclosing span's id, or ``None`` for a root.
        wall: elapsed wall-clock seconds (populated by :meth:`finish`).
        cpu: elapsed process CPU seconds (populated by :meth:`finish`).
        status: ``"open"``, then ``"ok"`` or ``"error"``.
        error: ``"Type: message"`` for error spans, else ``""``.
    """

    __slots__ = (
        "_cpu0", "_t0", "cpu", "error", "name", "parent_id", "span_id",
        "started_at", "status", "tags", "wall",
    )

    def __init__(self, name: str, span_id: str, parent_id: str | None, tags: dict):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.tags = tags
        self.started_at = time.time()
        self.status = "open"
        self.error = ""
        self.wall = 0.0
        self.cpu = 0.0
        self._t0 = time.perf_counter()
        self._cpu0 = time.process_time()

    def set_tag(self, **tags) -> None:
        """Attach or overwrite tags on an open span."""
        self.tags.update(tags)

    def finish(self, error: BaseException | None = None) -> None:
        """Close the span, recording wall/CPU time and the outcome."""
        if self.status != "open":
            return
        self.wall = time.perf_counter() - self._t0
        self.cpu = time.process_time() - self._cpu0
        if error is None:
            self.status = "ok"
        else:
            self.status = "error"
            self.error = f"{type(error).__name__}: {error}"

    def to_dict(self) -> dict:
        """Plain-dict form (JSONL export and cross-process transport)."""
        record = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "wall": self.wall,
            "cpu": self.cpu,
            "status": self.status,
        }
        if self.tags:
            record["tags"] = dict(self.tags)
        if self.error:
            record["error"] = self.error
        return record

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, status={self.status!r}, "
            f"wall={self.wall:.6f}s)"
        )


class _NoSpan:
    """The do-nothing span returned while tracing is disabled.

    A single shared instance; every method is a no-op so instrumented code
    never branches on "is tracing on" beyond the facade's one check.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_tag(self, **tags) -> None:
        pass


#: The shared disabled-path span (see :class:`_NoSpan`).
NO_SPAN = _NoSpan()


class _SpanContext:
    """Context manager pairing one span with its tracer's stack."""

    __slots__ = ("_span", "_tracer")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self._span, exc)
        return False


class Tracer:
    """A thread-aware span factory with bounded retention and hooks.

    Args:
        hooks: objects implementing the
            :class:`~repro.observability.hooks.Hook` protocol, notified on
            every span start/end.
        max_spans: finished spans retained for :meth:`export` (the oldest
            are kept; overflow increments :attr:`dropped`).
    """

    def __init__(self, hooks=(), max_spans: int = 10_000):
        self.hooks = list(hooks)
        self.max_spans = int(max_spans)
        self.dropped = 0
        self.finished: list[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, **tags) -> _SpanContext:
        """Open a child of the current span (context manager yields it)."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(name, f"{os.getpid()}-{next(self._ids)}", parent, tags)
        stack.append(span)
        for hook in self.hooks:
            hook.on_span_start(span)
        return _SpanContext(self, span)

    def current(self) -> Span | None:
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _finish(self, span: Span, error: BaseException | None) -> None:
        span.finish(error)
        stack = self._stack()
        if span in stack:  # tolerate exotic unwinding; never corrupt others
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        self._record(span)
        for hook in self.hooks:
            hook.on_span_end(span)

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self.finished) < self.max_spans:
                self.finished.append(span)
            else:
                self.dropped += 1

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- export + merge ----------------------------------------------------

    def export(self) -> list[dict]:
        """Finished spans as plain dicts, in completion order."""
        with self._lock:
            return [span.to_dict() for span in self.finished]

    def merge(self, records: list[dict], parent: Span | None = None) -> int:
        """Adopt spans exported by another tracer (a worker process).

        Root spans of the incoming batch are re-parented under ``parent``
        (default: this thread's current span), so a worker's sub-tree hangs
        off the dispatching span in the joined trace.  Returns the number
        of spans adopted.
        """
        if parent is None:
            parent = self.current()
        parent_id = parent.span_id if parent is not None else None
        incoming_ids = {r.get("span_id") for r in records}
        adopted = 0
        with self._lock:
            for record in records:
                span = Span.__new__(Span)
                span.name = record.get("name", "?")
                span.span_id = record.get("span_id", f"merged-{adopted}")
                merged_parent = record.get("parent_id")
                if merged_parent not in incoming_ids:
                    merged_parent = parent_id
                span.parent_id = merged_parent
                span.started_at = float(record.get("started_at", 0.0))
                span.wall = float(record.get("wall", 0.0))
                span.cpu = float(record.get("cpu", 0.0))
                span.status = record.get("status", "ok")
                span.error = record.get("error", "")
                span.tags = dict(record.get("tags", {}))
                span._t0 = 0.0
                span._cpu0 = 0.0
                if len(self.finished) < self.max_spans:
                    self.finished.append(span)
                    adopted += 1
                else:
                    self.dropped += 1
        return adopted
