"""The metrics registry: counters, gauges and histograms with no deps.

Production observability needs three primitive shapes, and this module
implements exactly those — nothing imported beyond the standard library, so
the registry can sit below every other layer of :mod:`repro`:

- :class:`Counter` — a monotone event count (cache hits, solver
  factorizations, degradation-tier failures);
- :class:`Gauge` — a last-written level (budget trials consumed, worker
  fan-out of the current batch);
- :class:`Histogram` — a bounded-reservoir distribution (per-entry batch
  latency, queue wait), tracking exact ``count``/``sum``/``min``/``max``
  plus a fixed-size sample reservoir for quantile estimates.

All three are thread-safe; the :class:`MetricsRegistry` that owns them is a
get-or-create name index.  Snapshots are plain dicts under the
``repro/metrics/1`` schema (see ``tools/metrics_schema.json``), which makes
them JSON-exportable and — crucially for the worker-pool paths —
**mergeable**: a worker process snapshots its private registry and the
parent folds it in with :meth:`MetricsRegistry.merge` (counters add,
gauges take the incoming value, histograms combine moments and pool
reservoir samples), so ``--jobs 8`` reports the same aggregate counters as
``--jobs 1``.

The reservoir uses deterministic per-histogram seeding (derived from the
metric name), so two identically seeded runs produce bit-identical
snapshots — the determinism audit relies on that.
"""

from __future__ import annotations

import json
import random
import threading
import zlib

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA",
]

#: Schema tag stamped into every snapshot (validated by CI's metrics smoke).
SCHEMA = "repro/metrics/1"


class Counter:
    """A monotone, thread-safe event counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counters are monotone; cannot add {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-written level (not monotone; set freely)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A bounded-reservoir distribution tracker.

    Exact moments (``count``, ``sum``, ``min``, ``max``) are kept for every
    observation; at most ``max_samples`` raw values are retained in a
    reservoir (Vitter's algorithm R) for quantile estimates.  The reservoir
    RNG is seeded from the metric name, so identical observation sequences
    yield identical snapshots.
    """

    __slots__ = (
        "_lock", "_rng", "count", "max", "max_samples", "min", "samples",
        "total",
    )

    def __init__(self, name: str = "", max_samples: int = 256) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.max_samples = int(max_samples)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: list[float] = []
        self._rng = random.Random(zlib.crc32(name.encode()))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self.samples) < self.max_samples:
                self.samples.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.max_samples:
                    self.samples[slot] = value

    def quantile(self, q: float) -> float:
        """Reservoir-estimated ``q``-quantile (0 <= q <= 1; NaN if empty)."""
        with self._lock:
            samples = sorted(self.samples)
        if not samples:
            return float("nan")
        index = min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))
        return samples[index]

    def snapshot(self) -> dict:
        with self._lock:
            count, total = self.count, self.total
            low, high = self.min, self.max
            samples = list(self.samples)
        if not count:
            return {"count": 0, "sum": 0.0}
        ordered = sorted(samples)

        def pick(q: float) -> float:
            return ordered[min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))]

        return {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "mean": total / count,
            "p50": pick(0.5),
            "p95": pick(0.95),
            "samples_kept": len(samples),
        }

    def _absorb(self, other: dict) -> None:
        """Fold a snapshot produced elsewhere (worker merge path)."""
        count = int(other.get("count", 0))
        if not count:
            return
        with self._lock:
            self.count += count
            self.total += float(other.get("sum", 0.0))
            self.min = min(self.min, float(other.get("min", self.min)))
            self.max = max(self.max, float(other.get("max", self.max)))
            # moments are exact; the reservoir only re-absorbs the summary
            # points a snapshot carries (quantiles stay estimates)
            for key in ("p50", "p95", "mean"):
                if key in other and len(self.samples) < self.max_samples:
                    self.samples.append(float(other[key]))


class MetricsRegistry:
    """A thread-safe, get-or-create name index of metrics.

    Metric names are dotted paths (``cache.plan.hits``,
    ``batch.entry.seconds``); the registry imposes no schema beyond
    non-empty strings, but instrumented code follows the
    ``<subsystem>.<object>.<event>`` convention documented in
    ``docs/observability_guide.md``.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- get-or-create accessors -------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter())
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge())
        return metric

    def histogram(self, name: str, max_samples: int = 256) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(
                    name, Histogram(name, max_samples=max_samples)
                )
        return metric

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict copy of every metric (the ``repro/metrics/1`` form)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "schema": SCHEMA,
            "counters": {k: v.value for k, v in sorted(counters.items())},
            "gauges": {k: v.value for k, v in sorted(gauges.items())},
            "histograms": {
                k: v.snapshot() for k, v in sorted(histograms.items())
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot rendered as JSON text."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    # -- aggregation -------------------------------------------------------

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` from another registry (e.g. a worker
        process) into this one: counters add, gauges take the incoming
        value, histograms combine moments and pool summary samples."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, data in snapshot.get("histograms", {}).items():
            self.histogram(name)._absorb(data)

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters) + len(self._gauges) + len(self._histograms)
            )
