"""``repro.observability`` — metrics, tracing and profiling for the stack.

Four interacting subsystems (degradation chains, the batch engine, compiled
kernels, the sparse solver backend) make the evaluation pipeline fast and
resilient — and opaque.  This package is the single pane of glass over all
of them:

- :mod:`~repro.observability.metrics` — a zero-dependency registry of
  counters, gauges and bounded-reservoir histograms (thread-safe,
  snapshot-to-dict, JSON export, cross-process merge);
- :mod:`~repro.observability.tracing` — nested spans with wall/CPU time,
  tags and parent ids, usable from worker processes with span merging on
  join;
- :mod:`~repro.observability.hooks` — the :class:`Hook` protocol plus
  shippable sinks (in-memory, JSONL file, profile summary table).

**The facade.**  Instrumented library code never talks to registries or
tracers directly; it calls the module-level helpers::

    from repro import observability as obs

    obs.count("cache.plan.hits")
    obs.gauge("budget.trials_used", n)
    obs.observe("batch.entry.seconds", dt)
    with obs.span("robust.tier", tier="symbolic"):
        ...

All of these short-circuit on one module-global flag while observability is
disabled (the default): ``count``/``gauge``/``observe`` return immediately
and ``span`` hands back a shared no-op singleton.  The disabled path is a
single branch — the ``BENCH_observability.json`` benchmark holds it to
within noise of uninstrumented code.

Enable with :func:`enable` (optionally passing hooks), read with
:func:`registry` / :func:`tracer`, snapshot with
``registry().snapshot()``, and restore the pristine state with
:func:`reset` (test isolation).
"""

from __future__ import annotations

import threading

from repro.observability.hooks import Hook, InMemorySink, JsonlSink, SummarySink
from repro.observability.metrics import (
    SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import NO_SPAN, Span, Tracer

__all__ = [
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "Hook",
    "InMemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "NO_SPAN",
    "Span",
    "SummarySink",
    "Tracer",
    "count",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "observe",
    "registry",
    "reset",
    "span",
    "tracer",
]

_lock = threading.Lock()
_enabled = False
_registry = MetricsRegistry()
_tracer = Tracer()


def enabled() -> bool:
    """True while metrics/tracing collection is on in this process."""
    return _enabled


def enable(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    hooks=(),
) -> tuple[MetricsRegistry, Tracer]:
    """Turn collection on (idempotent); returns the active pair.

    Args:
        registry: use this registry (default: keep/create the global one).
        tracer: use this tracer (default: keep/create the global one).
        hooks: extra :class:`Hook` objects appended to the active tracer.
    """
    global _enabled, _registry, _tracer
    with _lock:
        if registry is not None:
            _registry = registry
        if tracer is not None:
            _tracer = tracer
        for hook in hooks:
            if hook not in _tracer.hooks:
                _tracer.hooks.append(hook)
        _enabled = True
    return _registry, _tracer


def disable() -> None:
    """Turn collection off (recorded data stays readable)."""
    global _enabled
    with _lock:
        _enabled = False


def reset() -> None:
    """Disable and replace registry + tracer with fresh ones (tests)."""
    global _enabled, _registry, _tracer
    with _lock:
        _enabled = False
        _registry = MetricsRegistry()
        _tracer = Tracer()


def registry() -> MetricsRegistry:
    """The active :class:`MetricsRegistry` (readable even while disabled)."""
    return _registry


def tracer() -> Tracer:
    """The active :class:`Tracer` (readable even while disabled)."""
    return _tracer


# ---------------------------------------------------------------------------
# the hot-path helpers (one-branch no-ops while disabled)
# ---------------------------------------------------------------------------


def count(name: str, amount: int = 1) -> None:
    """Bump a counter (no-op while disabled)."""
    if _enabled:
        _registry.counter(name).inc(amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge (no-op while disabled)."""
    if _enabled:
        _registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record one histogram observation (no-op while disabled)."""
    if _enabled:
        _registry.histogram(name).observe(value)


def span(name: str, **tags):
    """Open a traced span (the shared no-op span while disabled)."""
    if _enabled:
        return _tracer.span(name, **tags)
    return NO_SPAN
