"""Travel-booking scenario: a realistic SOC composition.

The paper's introduction motivates SOC with applications assembled from
independently provided services; this scenario is such an application,
exercising every modeling feature at once:

- a three-level composition (``booking`` -> flight/hotel/payment services
  -> cpu/net resources), like section 4's level structure but wider;
- an **OR state** with two *independent* flight-search providers — genuine
  fault tolerance (eq. 7);
- a variant (:func:`booking_assembly(shared_gds=True)`) where both flight
  searches are secretly routed to the **same** GDS backend — the paper's
  sharing trap (eq. 12): the published architecture looks redundant but the
  dependency model says otherwise;
- RPC connectors with parametric transported sizes, so the predicted
  reliability depends on the itinerary size end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import (
    OR,
    AnalyticInterface,
    Assembly,
    CompositeService,
    CpuResource,
    FlowBuilder,
    FormalParameter,
    IntegerDomain,
    NetworkResource,
    RemoteCallConnector,
    ServiceRequest,
    perfect_connector,
)
from repro.reliability import per_operation_internal
from repro.symbolic import Constant, Parameter

__all__ = ["BookingParameters", "booking_assembly"]


@dataclass(frozen=True)
class BookingParameters:
    """Constants of the travel-booking scenario."""

    #: software failure rate of the orchestrating booking component.
    phi_booking: float = 5e-7
    #: software failure rates of the two flight-search services.
    phi_flights_a: float = 2e-6
    phi_flights_b: float = 3e-6
    #: software failure rate of the hotel service.
    phi_hotel: float = 1e-6
    #: software failure rate of the payment service.
    phi_payment: float = 5e-7
    #: cpu attributes (one node per provider organization).
    cpu_speed: float = 1e6
    cpu_failure_rate: float = 1e-7
    #: wide-area network between the orchestrator and the providers.
    net_bandwidth: float = 2e3
    net_failure_rate: float = 2e-3
    #: RPC cost constants.
    marshal_cost: float = 8.0
    transmit_cost: float = 1.0
    #: search work per itinerary item (operations = work * itinerary).
    search_work: float = 200.0
    #: probability that the customer also books a hotel.
    hotel_probability: float = 0.7


def _leaf_service(name: str, phi: float, work_per_item: float) -> CompositeService:
    """A provider service: one flow state spending ``work * items``
    operations on its own node."""
    items = Parameter("items")
    operations = Constant(work_per_item) * items
    flow = (
        FlowBuilder(formals=("items",))
        .state(
            "work",
            requests=[
                ServiceRequest(
                    "cpu",
                    actuals={CpuResource.PARAM: operations},
                    internal_failure=per_operation_internal("software_failure_rate", operations),
                    label=f"{name} business logic",
                )
            ],
        )
        .sequence("work")
        .build()
    )
    interface = AnalyticInterface(
        formal_parameters=(
            FormalParameter("items", domain=IntegerDomain(low=0)),
        ),
        attributes={"software_failure_rate": phi},
        description=f"{name} provider service",
    )
    return CompositeService(name, interface, flow)


def _booking_component(params: BookingParameters, shared_gds: bool) -> CompositeService:
    """The orchestrator: flights (OR-redundant) -> hotel (probabilistic) ->
    payment."""
    itinerary = Parameter("itinerary")
    own_work = Constant(50.0) * itinerary
    flight_slots = ("gds", "gds") if shared_gds else ("flights_a", "flights_b")
    flow = (
        FlowBuilder(formals=("itinerary",))
        .state(
            "flights",
            requests=[
                ServiceRequest(
                    slot,
                    actuals={"items": itinerary},
                    label=f"flight search {tag}",
                )
                for tag, slot in zip("ab", flight_slots)
            ],
            completion=OR,
            shared=shared_gds,
        )
        .state(
            "hotel",
            requests=[
                ServiceRequest("hotel", actuals={"items": itinerary}),
            ],
        )
        .state(
            "payment",
            requests=[
                ServiceRequest(
                    "payment",
                    actuals={"items": itinerary},
                    internal_failure=per_operation_internal(
                        "software_failure_rate", own_work
                    ),
                    label="charge and confirm",
                ),
            ],
        )
        .transition("Start", "flights", 1)
        .transition("flights", "hotel", params.hotel_probability)
        .transition("flights", "payment", 1.0 - params.hotel_probability)
        .transition("hotel", "payment", 1)
        .transition("payment", "End", 1)
        .build()
    )
    interface = AnalyticInterface(
        formal_parameters=(
            FormalParameter(
                "itinerary",
                domain=IntegerDomain(low=1),
                description="number of itinerary items to book",
            ),
        ),
        attributes={"software_failure_rate": params.phi_booking},
        description="travel-booking orchestration service",
    )
    return CompositeService("booking", interface, flow)


def booking_assembly(
    params: BookingParameters | None = None, shared_gds: bool = False
) -> Assembly:
    """The full travel-booking assembly.

    Args:
        params: scenario constants.
        shared_gds: ``False`` — two independent flight-search providers on
            separate nodes (true OR redundancy); ``True`` — both flight
            requests route to a single GDS backend through a single RPC
            connector (the sharing model: one backend failure defeats the
            redundancy).
    """
    p = params or BookingParameters()
    assembly = Assembly("booking-shared-gds" if shared_gds else "booking")

    orchestrator_cpu = CpuResource("cpu_orch", p.cpu_speed, p.cpu_failure_rate).service()
    net = NetworkResource("wan", p.net_bandwidth, p.net_failure_rate).service()
    hotel = _leaf_service("hotel", p.phi_hotel, p.search_work)
    payment = _leaf_service("payment", p.phi_payment, p.search_work / 2)
    booking = _booking_component(p, shared_gds)
    assembly.add_services(orchestrator_cpu, net, hotel, payment, booking)

    def wire_provider(provider: CompositeService, phi_unused: float, tag: str) -> None:
        """Give a provider its own node and an RPC path from the
        orchestrator."""
        node = CpuResource(f"cpu_{provider.name}", p.cpu_speed, p.cpu_failure_rate)
        rpc = RemoteCallConnector(
            f"rpc_{provider.name}", p.marshal_cost, p.transmit_cost
        )
        assembly.add_services(node.service(), rpc.service())
        assembly.add_services(
            perfect_connector(f"loc_{provider.name}"),
            perfect_connector(f"loc_rpc_client_{provider.name}"),
            perfect_connector(f"loc_rpc_server_{provider.name}"),
            perfect_connector(f"loc_rpc_net_{provider.name}"),
        )
        assembly.bind(provider.name, "cpu", node.name, connector=f"loc_{provider.name}")
        assembly.bind(
            f"rpc_{provider.name}", "client_cpu", "cpu_orch",
            connector=f"loc_rpc_client_{provider.name}",
        )
        assembly.bind(
            f"rpc_{provider.name}", "server_cpu", node.name,
            connector=f"loc_rpc_server_{provider.name}",
        )
        assembly.bind(
            f"rpc_{provider.name}", "net", "wan",
            connector=f"loc_rpc_net_{provider.name}",
        )
        assembly.bind(
            "booking", tag, provider.name, connector=f"rpc_{provider.name}",
            connector_actuals={
                "ip": Parameter("itinerary"),
                "op": Parameter("itinerary"),
            },
        )

    if shared_gds:
        gds = _leaf_service("gds_backend", p.phi_flights_a, p.search_work)
        assembly.add_service(gds)
        wire_provider(gds, p.phi_flights_a, "gds")
    else:
        flights_a = _leaf_service("flights_a", p.phi_flights_a, p.search_work)
        flights_b = _leaf_service("flights_b", p.phi_flights_b, p.search_work)
        assembly.add_services(flights_a, flights_b)
        wire_provider(flights_a, p.phi_flights_a, "flights_a")
        wire_provider(flights_b, p.phi_flights_b, "flights_b")

    wire_provider(hotel, p.phi_hotel, "hotel")
    wire_provider(payment, p.phi_payment, "payment")
    return assembly
