"""The section 4 example: a search service using a sort service.

The paper's worked example (Figures 1–6): a ``search`` component offers a
search service with formal parameters ``(in: elem, in: list, out: res)``;
with probability ``q`` the list must first be sorted, requiring a ``sort``
service, and the search itself costs ``log(list)`` processing operations
(the sort costs ``list * log(list)``).  Two assemblies are compared:

- **local** (Figure 3): search and ``sort1`` deployed on the same node
  ``cpu1``, connected by an LPC connector;
- **remote** (Figure 4): ``sort2`` deployed on a second node ``cpu2``,
  reached through an RPC connector over network ``net12``.

Numeric attribute values.  The paper publishes only the values swept in
Figure 6 (``phi1`` in {1e-6, 5e-6}, ``phi2 = 1e-7``, ``gamma`` in {1e-1,
5e-2, 2.5e-2, 5e-3}); every other constant (speeds, hardware failure
rates, ``q``, the LPC/RPC cost constants, ``elem``/``res`` sizes) is left
unspecified.  :class:`SearchSortParameters` defaults are calibrated so
that — as in the paper — software failure rates and the network failure
rate dominate, hardware failure rates are second-order, and the Figure 6
qualitative claims are reproduced on ``list`` in ``[1, 1000]``.  The
``log`` in the workloads is taken as ``log2`` (binary search / comparison
sort); the paper leaves the base unspecified and the comparison's shape is
base-independent.  See EXPERIMENTS.md for the full calibration note.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.model import (
    AnalyticInterface,
    Assembly,
    CompositeService,
    CpuResource,
    Direction,
    FlowBuilder,
    FormalParameter,
    IntegerDomain,
    LocalCallConnector,
    NetworkResource,
    RemoteCallConnector,
    ServiceRequest,
    perfect_connector,
)
from repro.reliability import per_operation_internal, reliable_call
from repro.symbolic import Call, Parameter

__all__ = [
    "SearchSortParameters",
    "build_search_component",
    "build_sort_component",
    "local_assembly",
    "remote_assembly",
    "PAPER_PHI1_VALUES",
    "PAPER_GAMMA_VALUES",
    "PAPER_PHI2",
]

#: The sort1 software failure rates swept in Figure 6.
PAPER_PHI1_VALUES = (1e-6, 5e-6)
#: The net12 failure rates swept in Figure 6.
PAPER_GAMMA_VALUES = (1e-1, 5e-2, 2.5e-2, 5e-3)
#: The sort2 software failure rate of Figure 6 ("one order of magnitude
#: smaller than phi1").
PAPER_PHI2 = 1e-7


@dataclass(frozen=True)
class SearchSortParameters:
    """All constants of the section 4 example.

    Attributes published by the paper carry its Figure 6 defaults; the
    remaining attributes carry the calibration documented in EXPERIMENTS.md.
    """

    #: software failure rate of the search component (paper: ``phi``).
    phi_search: float = 1e-6
    #: software failure rate of the local sort1 component (paper: ``phi1``).
    phi_sort1: float = 1e-6
    #: software failure rate of the remote sort2 component (paper: ``phi2``).
    phi_sort2: float = PAPER_PHI2
    #: failure rate of cpu1 (paper: ``lambda1``).
    lambda1: float = 1e-7
    #: failure rate of cpu2 (paper: ``lambda2``).
    lambda2: float = 1e-7
    #: speed of cpu1, operations per time unit (paper: ``s1``).
    s1: float = 1e6
    #: speed of cpu2, operations per time unit (paper: ``s2``).
    s2: float = 1e6
    #: failure rate of net12 (paper: ``gamma``).
    gamma: float = 5e-3
    #: bandwidth of net12, bytes per time unit (paper: ``b``).
    bandwidth: float = 1e3
    #: probability that the list is not already sorted (paper: ``q``).
    q: float = 0.9
    #: LPC control-transfer operation count (paper: ``l``).
    lpc_operations: float = 100.0
    #: RPC (un)marshal operations per transported size unit (paper: ``c``).
    marshal_cost: float = 10.0
    #: RPC bytes on the wire per transported size unit (paper: ``m``).
    transmit_cost: float = 1.0

    def with_figure6_point(self, phi1: float, gamma: float) -> "SearchSortParameters":
        """The parameter set for one Figure 6 curve."""
        return replace(self, phi_sort1=phi1, gamma=gamma)


def _search_interface(phi: float) -> AnalyticInterface:
    return AnalyticInterface(
        formal_parameters=(
            FormalParameter(
                "elem",
                domain=IntegerDomain(low=0),
                direction=Direction.IN,
                description="size of the element to be searched",
            ),
            FormalParameter(
                "list",
                domain=IntegerDomain(low=1),
                direction=Direction.IN,
                description="size of the list",
            ),
            FormalParameter(
                "res",
                domain=IntegerDomain(low=0),
                direction=Direction.OUT,
                description="size of the returned result",
            ),
        ),
        attributes={"software_failure_rate": phi},
        description="search for an item in a (possibly unsorted) list",
    )


def build_search_component(phi: float, q: float) -> CompositeService:
    """The search service with the Figure 1 (left) flow.

    State ``sort`` (reached with probability ``q``) issues
    ``call(sort, list)`` — internal failure zero, a reliable method call;
    state ``search`` issues ``call(cpu, log2(list))`` with the eq. (14)
    internal failure for the component's own code.
    """
    list_ = Parameter("list")
    log_list = Call("log2", (list_,))
    flow = (
        FlowBuilder(formals=("elem", "list", "res"))
        .state(
            "sort",
            requests=[
                ServiceRequest(
                    "sort",
                    actuals={"list": list_},
                    internal_failure=reliable_call(),
                    label="sort the list first",
                )
            ],
        )
        .state(
            "search",
            requests=[
                ServiceRequest(
                    "cpu",
                    actuals={CpuResource.PARAM: log_list},
                    internal_failure=per_operation_internal("software_failure_rate", log_list),
                    label="binary search",
                )
            ],
        )
        .transition("Start", "sort", q)
        .transition("Start", "search", 1.0 - q)
        .transition("sort", "search", 1)
        .transition("search", "End", 1)
        .build()
    )
    return CompositeService("search", _search_interface(phi), flow)


def build_sort_component(name: str, phi: float) -> CompositeService:
    """A sort service (``sort1`` or ``sort2``) with the Figure 1 (right)
    flow: one state issuing ``call(cpu, list * log2(list))``."""
    list_ = Parameter("list")
    work = list_ * Call("log2", (list_,))
    interface = AnalyticInterface(
        formal_parameters=(
            FormalParameter(
                "list",
                domain=IntegerDomain(low=1),
                direction=Direction.INOUT,
                description="the list to sort (size abstraction)",
            ),
        ),
        attributes={"software_failure_rate": phi},
        description=f"comparison sort service {name!r}",
    )
    flow = (
        FlowBuilder(formals=("list",))
        .state(
            "work",
            requests=[
                ServiceRequest(
                    "cpu",
                    actuals={CpuResource.PARAM: work},
                    internal_failure=per_operation_internal("software_failure_rate", work),
                    label="comparison sort",
                )
            ],
        )
        .sequence("work")
        .build()
    )
    return CompositeService(name, interface, flow)


def _connector_actuals() -> dict[str, object]:
    """``ip = elem + list``, ``op = res`` — the transported sizes used for
    the search -> sort binding in both assemblies (section 4's
    ``Pfail(connect, elem + list, res)``)."""
    return {"ip": Parameter("elem") + Parameter("list"), "op": Parameter("res")}


def local_assembly(params: SearchSortParameters | None = None) -> Assembly:
    """The Figure 3 assembly: search and sort1 on cpu1, LPC-connected.

    Recursion levels (section 4): level 0 — ``cpu1`` and the perfect
    ``loc1..loc3`` connectors; level 1 — ``lpc`` and ``sort1``;
    level 2 — ``search``.
    """
    p = params or SearchSortParameters()
    cpu1 = CpuResource("cpu1", speed=p.s1, failure_rate=p.lambda1).service()
    search = build_search_component(p.phi_search, p.q)
    sort1 = build_sort_component("sort1", p.phi_sort1)
    lpc = LocalCallConnector("lpc", operations=p.lpc_operations).service()

    assembly = Assembly("local")
    assembly.add_services(
        cpu1,
        search,
        sort1,
        lpc,
        perfect_connector("loc1"),
        perfect_connector("loc2"),
        perfect_connector("loc3"),
    )
    assembly.bind("search", "cpu", "cpu1", connector="loc1")
    assembly.bind(
        "search", "sort", "sort1", connector="lpc",
        connector_actuals=_connector_actuals(),
    )
    assembly.bind("sort1", "cpu", "cpu1", connector="loc2")
    assembly.bind("lpc", "cpu", "cpu1", connector="loc3")
    return assembly


def remote_assembly(params: SearchSortParameters | None = None) -> Assembly:
    """The Figure 4 assembly: search on cpu1, sort2 on cpu2, RPC-connected
    over net12.

    Recursion levels (section 4): level 0 — ``cpu1``, ``cpu2``, ``net12``
    and the perfect ``loc1..loc5`` connectors; level 1 — ``rpc`` and
    ``sort2``; level 2 — ``search``.
    """
    p = params or SearchSortParameters()
    cpu1 = CpuResource("cpu1", speed=p.s1, failure_rate=p.lambda1).service()
    cpu2 = CpuResource("cpu2", speed=p.s2, failure_rate=p.lambda2).service()
    net12 = NetworkResource("net12", bandwidth=p.bandwidth, failure_rate=p.gamma).service()
    search = build_search_component(p.phi_search, p.q)
    sort2 = build_sort_component("sort2", p.phi_sort2)
    rpc = RemoteCallConnector(
        "rpc", marshal_cost=p.marshal_cost, transmit_cost=p.transmit_cost
    ).service()

    assembly = Assembly("remote")
    assembly.add_services(
        cpu1,
        cpu2,
        net12,
        search,
        sort2,
        rpc,
        perfect_connector("loc1"),
        perfect_connector("loc2"),
        perfect_connector("loc3"),
        perfect_connector("loc4"),
        perfect_connector("loc5"),
    )
    assembly.bind("search", "cpu", "cpu1", connector="loc1")
    assembly.bind(
        "search", "sort", "sort2", connector="rpc",
        connector_actuals=_connector_actuals(),
    )
    assembly.bind("sort2", "cpu", "cpu2", connector="loc2")
    assembly.bind("rpc", "client_cpu", "cpu1", connector="loc3")
    assembly.bind("rpc", "server_cpu", "cpu2", connector="loc4")
    assembly.bind("rpc", "net", "net12", connector="loc5")
    return assembly
