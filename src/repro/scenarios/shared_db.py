"""Sharing-ablation scenario: replicated queries against one database vs
independent replicas.

Section 3.2's headline result is that the **OR** completion model — the one
that models fault tolerance — loses its redundancy benefit when the
"replicas" secretly share a service: eq. (12) vs eq. (7).  This scenario
makes the effect concrete and parameterizable:

- :func:`replicated_assembly(n, shared=True)` — a ``report`` service whose
  single flow state issues ``n`` OR-completed queries **to the same
  database through the same connector** (the paper's sharing model);
- :func:`replicated_assembly(n, shared=False)` — the same architecture with
  ``n`` *independent* database replicas (distinct services, one per
  request), the configuration naive redundancy reasoning assumes.

With AND completion the two configurations are provably identical
(eq. 11 == eq. 6); the ORSHARE benchmark sweeps ``n`` and reports the gap.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.model import (
    OR,
    AnalyticInterface,
    Assembly,
    CompletionModel,
    CompositeService,
    FlowBuilder,
    FormalParameter,
    IntegerDomain,
    ServiceRequest,
    perfect_connector,
)
from repro.model.resource import DeviceResource
from repro.reliability import per_operation_internal
from repro.symbolic import Call, Constant, Parameter

__all__ = ["DatabaseParameters", "replicated_assembly"]

from dataclasses import dataclass


@dataclass(frozen=True)
class DatabaseParameters:
    """Constants of the replicated-query scenario.

    Attributes:
        db_failure_rate: failure rate of a database query per row touched.
        db_speed: rows per time unit a database scans.
        phi_report: software failure rate of the reporting component.
        query_selectivity: rows touched per row of the report size.
    """

    db_failure_rate: float = 1e-4
    db_speed: float = 1e4
    phi_report: float = 1e-7
    query_selectivity: float = 3.0


def _database_service(name: str, params: DatabaseParameters):
    """A database offering a query service: abstract parameter ``rows``,
    exponential failure in the scanned rows (an eq. (1)-shaped model)."""
    rows = Parameter("rows")
    pfail = Constant(1.0) - Call(
        "exp",
        (-(Parameter("failure_rate") * rows / Parameter("speed")),),
    )
    return DeviceResource(
        name,
        formal_parameters=(
            FormalParameter(
                "rows",
                domain=IntegerDomain(low=0),
                description="rows touched by the query",
            ),
        ),
        failure_probability=pfail,
        attributes={
            "failure_rate": params.db_failure_rate,
            "speed": params.db_speed,
        },
    ).service()


def replicated_assembly(
    replicas: int,
    shared: bool,
    params: DatabaseParameters | None = None,
    completion: CompletionModel = OR,
) -> Assembly:
    """The ``report`` service with ``replicas`` redundant queries.

    Args:
        replicas: number of redundant query requests (>= 2).
        shared: ``True`` — all requests hit one database ``db`` through one
            connector (the paper's sharing model); ``False`` — request ``j``
            hits its own independent replica ``db_j``.
        params: scenario constants.
        completion: OR (default; fault tolerance) or AND/k-of-n for the
            ablation benchmarks.

    The report's formal parameter ``size`` drives the per-query workload
    ``rows = selectivity * size`` and the component's internal failure
    (eq. 14), identically in both configurations — the *only* difference is
    the dependency structure.
    """
    if replicas < 2:
        raise ModelError("the sharing comparison needs at least two replicas")
    p = params or DatabaseParameters()
    size = Parameter("size")
    rows = Constant(p.query_selectivity) * size

    requests = []
    for j in range(replicas):
        slot = "db" if shared else f"db_{j}"
        requests.append(
            ServiceRequest(
                slot,
                actuals={"rows": rows},
                internal_failure=per_operation_internal("software_failure_rate", rows),
                label=f"redundant query {j}",
            )
        )
    flow = (
        FlowBuilder(formals=("size",))
        .state("query", requests=requests, completion=completion, shared=shared)
        .sequence("query")
        .build()
    )
    interface = AnalyticInterface(
        formal_parameters=(
            FormalParameter(
                "size",
                domain=IntegerDomain(low=0),
                description="report size driving the query workload",
            ),
        ),
        attributes={"software_failure_rate": p.phi_report},
        description="reporting service with redundant database queries",
    )
    report = CompositeService("report", interface, flow)

    assembly = Assembly("shared-db" if shared else "replicated-db")
    assembly.add_service(report)
    if shared:
        assembly.add_service(_database_service("db", p))
        assembly.add_service(perfect_connector("loc_db"))
        assembly.bind("report", "db", "db", connector="loc_db")
    else:
        for j in range(replicas):
            assembly.add_service(_database_service(f"db_{j}", p))
            assembly.add_service(perfect_connector(f"loc_db_{j}"))
            assembly.bind("report", f"db_{j}", f"db_{j}", connector=f"loc_db_{j}")
    return assembly
