"""Mutually recursive services — the fixed-point test case.

Section 3.3 ends by noting the recursive procedure "does not work in the
case of a service assembly where some services recursively call each
other"; the reliability is then the solution of a fixed-point equation.
This scenario builds the smallest such assembly, chosen so the fixed point
also has a *pencil-and-paper* solution the tests can check against:

- service ``A``: one state calling ``B`` (internal failure ``ia``), then
  End.  So  ``a = 1 - (1 - ia) * (1 - b)``.
- service ``B``: with probability ``r`` one state calling ``A`` (internal
  failure ``ib``), otherwise straight to End.  So
  ``b = r * (1 - (1 - ib) * (1 - a))``.

Substituting gives a linear fixed point with solution::

    a = (ia + (1-ia) * r * (ib + (1-ib) * ia)) / (1 - (1-ia) * (1-ib) * r)
        ... equivalently solved by :func:`closed_form_pfail` below via the
        2x2 linear system.

Operationally the recursion terminates with probability one (each level
recurses with probability ``r < 1``), so the least fixed point is the true
unreliability; the Kleene iteration of
:class:`~repro.core.fixed_point.FixedPointEvaluator` must converge to it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.model import (
    AnalyticInterface,
    Assembly,
    CompositeService,
    FlowBuilder,
    FormalParameter,
    IntegerDomain,
    ServiceRequest,
    perfect_connector,
)
from repro.reliability import constant_internal
from repro.symbolic import Parameter

__all__ = ["RecursiveParameters", "recursive_assembly", "closed_form_pfail"]


@dataclass(frozen=True)
class RecursiveParameters:
    """Constants of the mutual-recursion scenario.

    Attributes:
        internal_a: internal failure probability of A's call to B (``ia``).
        internal_b: internal failure probability of B's call to A (``ib``).
        recursion_probability: probability ``r`` that B recurses into A.
    """

    internal_a: float = 1e-3
    internal_b: float = 2e-3
    recursion_probability: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.recursion_probability < 1.0:
            raise ModelError(
                "recursion probability must be in [0, 1) for the recursion "
                "to terminate with probability one"
            )


def recursive_assembly(params: RecursiveParameters | None = None) -> Assembly:
    """The two-service cyclic assembly ``A -> B -> A``."""
    p = params or RecursiveParameters()
    size = Parameter("size")

    interface = lambda name: AnalyticInterface(  # noqa: E731 - tiny local factory
        formal_parameters=(FormalParameter("size", domain=IntegerDomain(low=0)),),
        description=f"mutually recursive service {name!r}",
    )

    flow_a = (
        FlowBuilder(formals=("size",))
        .state(
            "call_b",
            requests=[
                ServiceRequest(
                    "next",
                    actuals={"size": size},
                    internal_failure=constant_internal(p.internal_a),
                )
            ],
        )
        .sequence("call_b")
        .build()
    )
    service_a = CompositeService("A", interface("A"), flow_a)

    flow_b = (
        FlowBuilder(formals=("size",))
        .state(
            "call_a",
            requests=[
                ServiceRequest(
                    "next",
                    actuals={"size": size},
                    internal_failure=constant_internal(p.internal_b),
                )
            ],
        )
        .transition("Start", "call_a", p.recursion_probability)
        .transition("Start", "End", 1.0 - p.recursion_probability)
        .transition("call_a", "End", 1)
        .build()
    )
    service_b = CompositeService("B", interface("B"), flow_b)

    assembly = Assembly("mutual-recursion")
    assembly.add_services(
        service_a, service_b, perfect_connector("loc_ab"), perfect_connector("loc_ba")
    )
    assembly.bind("A", "next", "B", connector="loc_ab")
    assembly.bind("B", "next", "A", connector="loc_ba")
    return assembly


def closed_form_pfail(params: RecursiveParameters | None = None) -> tuple[float, float]:
    """The exact fixed point ``(Pfail(A), Pfail(B))`` by linear algebra.

    The two equations above are affine in ``(a, b)``::

        a = ia + (1 - ia) * b
        b = r * (ib + (1 - ib) * a)

    Solve the 2x2 system directly.
    """
    p = params or RecursiveParameters()
    ia, ib, r = p.internal_a, p.internal_b, p.recursion_probability
    # a - (1-ia) b = ia ;  -r (1-ib) a + b = r ib
    matrix = np.array([[1.0, -(1.0 - ia)], [-r * (1.0 - ib), 1.0]])
    rhs = np.array([ia, r * ib])
    a, b = np.linalg.solve(matrix, rhs)
    return float(a), float(b)
