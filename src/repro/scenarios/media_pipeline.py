"""Media-processing pipeline: deep composition with AND and k-of-n states.

A video platform's publish pipeline, used by the scalability and k-of-n
benchmarks:

- ``publish`` orchestrates ``ingest -> transcode -> package -> deliver``;
- ``transcode`` runs audio and video encoders as an **AND** state (both
  streams must encode) on a worker node;
- ``deliver`` uploads to three CDN endpoints under **2-of-3 completion**
  (the paper's named "k out of n" extension — the pipeline succeeds when a
  quorum of CDNs holds the content);
- all cross-node hops are RPC connectors, so every stage's reliability is
  parametric in the media size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import (
    AnalyticInterface,
    Assembly,
    CompositeService,
    CpuResource,
    FlowBuilder,
    FormalParameter,
    IntegerDomain,
    KOfNCompletion,
    NetworkResource,
    RemoteCallConnector,
    ServiceRequest,
    perfect_connector,
)
from repro.reliability import per_operation_internal
from repro.symbolic import Constant, Parameter

__all__ = ["PipelineParameters", "pipeline_assembly"]


@dataclass(frozen=True)
class PipelineParameters:
    """Constants of the media-pipeline scenario."""

    # per-operation software failure rates; encode workloads run millions
    # of operations per request, so these sit three orders of magnitude
    # below the search/sort example's rates
    phi_publish: float = 2e-10
    phi_ingest: float = 5e-10
    phi_transcode: float = 1e-9
    phi_package: float = 5e-10
    phi_cdn: float = 1e-9
    cpu_speed: float = 1e7
    cpu_failure_rate: float = 1e-7
    net_bandwidth: float = 1e5
    net_failure_rate: float = 1e-4
    marshal_cost: float = 2.0
    transmit_cost: float = 1.0
    #: operations per megabyte for the encode stages.
    encode_work: float = 5e4
    #: quorum of CDN uploads required (of 3).
    cdn_quorum: int = 2


def _stage(name: str, phi: float, work_per_mb: float,
           cpu_speed: float) -> CompositeService:
    """One pipeline stage: a flow spending ``work * mb`` operations."""
    mb = Parameter("mb")
    operations = Constant(work_per_mb) * mb
    flow = (
        FlowBuilder(formals=("mb",))
        .state(
            "process",
            requests=[
                ServiceRequest(
                    "cpu",
                    actuals={CpuResource.PARAM: operations},
                    internal_failure=per_operation_internal("software_failure_rate", operations),
                )
            ],
        )
        .sequence("process")
        .build()
    )
    interface = AnalyticInterface(
        formal_parameters=(FormalParameter("mb", domain=IntegerDomain(low=0)),),
        attributes={"software_failure_rate": phi},
        description=f"pipeline stage {name!r}",
    )
    return CompositeService(name, interface, flow)


def _transcoder(params: PipelineParameters) -> CompositeService:
    """The transcode stage: audio and video encode as an AND state."""
    mb = Parameter("mb")
    video_ops = Constant(params.encode_work) * mb
    audio_ops = Constant(params.encode_work / 10.0) * mb
    flow = (
        FlowBuilder(formals=("mb",))
        .state(
            "encode",
            requests=[
                ServiceRequest(
                    "cpu",
                    actuals={CpuResource.PARAM: video_ops},
                    internal_failure=per_operation_internal(
                        "software_failure_rate", video_ops
                    ),
                    label="video encode",
                ),
                ServiceRequest(
                    "cpu",
                    actuals={CpuResource.PARAM: audio_ops},
                    internal_failure=per_operation_internal(
                        "software_failure_rate", audio_ops
                    ),
                    label="audio encode",
                ),
            ],
            # both requests hit the same worker cpu through the same
            # connector: the honest model declares the sharing (for AND it
            # is provably neutral — the paper's eq. 11 == eq. 6 identity)
            shared=True,
        )
        .sequence("encode")
        .build()
    )
    interface = AnalyticInterface(
        formal_parameters=(FormalParameter("mb", domain=IntegerDomain(low=0)),),
        attributes={"software_failure_rate": params.phi_transcode},
        description="audio+video transcoding stage",
    )
    return CompositeService("transcode", interface, flow)


def _publisher(params: PipelineParameters) -> CompositeService:
    """The orchestrator: sequential stages, then a 2-of-3 CDN fan-out."""
    mb = Parameter("mb")
    flow = (
        FlowBuilder(formals=("mb",))
        .state("ingest", requests=[ServiceRequest("ingest", actuals={"mb": mb})])
        .state("transcode", requests=[ServiceRequest("transcode", actuals={"mb": mb})])
        .state("package", requests=[ServiceRequest("package", actuals={"mb": mb})])
        .state(
            "deliver",
            requests=[
                ServiceRequest(f"cdn_{i}", actuals={"mb": mb}, label=f"upload to CDN {i}")
                for i in range(3)
            ],
            completion=KOfNCompletion(params.cdn_quorum),
        )
        .sequence("ingest", "transcode", "package", "deliver")
        .build()
    )
    interface = AnalyticInterface(
        formal_parameters=(
            FormalParameter(
                "mb",
                domain=IntegerDomain(low=0),
                description="media size in megabytes",
            ),
        ),
        attributes={"software_failure_rate": params.phi_publish},
        description="video publish orchestration",
    )
    return CompositeService("publish", interface, flow)


def pipeline_assembly(params: PipelineParameters | None = None) -> Assembly:
    """The full media pipeline over per-stage nodes and RPC hops."""
    p = params or PipelineParameters()
    assembly = Assembly("media-pipeline")

    orchestrator_cpu = CpuResource("cpu_orch", p.cpu_speed, p.cpu_failure_rate).service()
    net = NetworkResource("dc_net", p.net_bandwidth, p.net_failure_rate).service()
    assembly.add_services(orchestrator_cpu, net, _publisher(p))

    stages: list[CompositeService] = [
        _stage("ingest", p.phi_ingest, p.encode_work / 20.0, p.cpu_speed),
        _transcoder(p),
        _stage("package", p.phi_package, p.encode_work / 50.0, p.cpu_speed),
        _stage("cdn_0", p.phi_cdn, p.encode_work / 100.0, p.cpu_speed),
        _stage("cdn_1", p.phi_cdn, p.encode_work / 100.0, p.cpu_speed),
        _stage("cdn_2", p.phi_cdn, p.encode_work / 100.0, p.cpu_speed),
    ]
    for stage in stages:
        node = CpuResource(f"cpu_{stage.name}", p.cpu_speed, p.cpu_failure_rate)
        rpc = RemoteCallConnector(f"rpc_{stage.name}", p.marshal_cost, p.transmit_cost)
        assembly.add_services(stage, node.service(), rpc.service())
        assembly.add_services(
            perfect_connector(f"loc_{stage.name}"),
            perfect_connector(f"loc_rpc_c_{stage.name}"),
            perfect_connector(f"loc_rpc_s_{stage.name}"),
            perfect_connector(f"loc_rpc_n_{stage.name}"),
        )
        assembly.bind(stage.name, "cpu", node.name, connector=f"loc_{stage.name}")
        assembly.bind(
            f"rpc_{stage.name}", "client_cpu", "cpu_orch",
            connector=f"loc_rpc_c_{stage.name}",
        )
        assembly.bind(
            f"rpc_{stage.name}", "server_cpu", node.name,
            connector=f"loc_rpc_s_{stage.name}",
        )
        assembly.bind(
            f"rpc_{stage.name}", "net", "dc_net",
            connector=f"loc_rpc_n_{stage.name}",
        )
        assembly.bind(
            "publish", stage.name, stage.name, connector=f"rpc_{stage.name}",
            connector_actuals={"ip": Parameter("mb"), "op": Parameter("mb")},
        )
    return assembly
