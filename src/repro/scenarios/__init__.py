"""Ready-made model instances shared by examples, tests and benchmarks.

- :mod:`repro.scenarios.search_sort` — the paper's section 4 example
  (Figures 1–6), plus hand-transcribed closed forms in
  :mod:`repro.scenarios.search_sort_closed_forms`;
- :mod:`repro.scenarios.travel_booking` — OR fault tolerance and the
  shared-GDS sharing trap;
- :mod:`repro.scenarios.shared_db` — the replicated-query sharing ablation;
- :mod:`repro.scenarios.media_pipeline` — deep composition with AND and
  2-of-3 states;
- :mod:`repro.scenarios.recursive` — the mutually recursive pair for the
  fixed-point evaluator.
"""

from repro.scenarios.media_pipeline import PipelineParameters, pipeline_assembly
from repro.scenarios.recursive import (
    RecursiveParameters,
    closed_form_pfail,
    recursive_assembly,
)
from repro.scenarios.search_sort import (
    PAPER_GAMMA_VALUES,
    PAPER_PHI1_VALUES,
    PAPER_PHI2,
    SearchSortParameters,
    build_search_component,
    build_sort_component,
    local_assembly,
    remote_assembly,
)
from repro.scenarios.shared_db import DatabaseParameters, replicated_assembly
from repro.scenarios.travel_booking import BookingParameters, booking_assembly

__all__ = [
    "BookingParameters",
    "DatabaseParameters",
    "PAPER_GAMMA_VALUES",
    "PAPER_PHI1_VALUES",
    "PAPER_PHI2",
    "PipelineParameters",
    "RecursiveParameters",
    "SearchSortParameters",
    "booking_assembly",
    "build_search_component",
    "build_sort_component",
    "closed_form_pfail",
    "local_assembly",
    "pipeline_assembly",
    "recursive_assembly",
    "remote_assembly",
    "replicated_assembly",
]
