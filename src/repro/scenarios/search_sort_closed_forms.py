"""Hand-transcribed closed forms (15)–(22) of the paper's section 4.

These are the formulas the paper derives *by hand* for the search/sort
example.  They are deliberately written here as direct numpy translations
of the printed equations — independently of the library's evaluators — so
the test suite can assert that

1. the **numeric** evaluator (recursive ``Pfail_Alg`` + absorbing-chain
   solves) and
2. the **symbolic** evaluator (mechanical closed-form derivation)

both reproduce the paper's algebra exactly (``tests/integration/
test_section4_closed_forms.py``), and so the Figure 6 benchmark can
regenerate the curves from the same expressions the paper plotted.

All functions are vectorized over ``list_size``.  ``log`` is ``log2``
(see the calibration note in :mod:`repro.scenarios.search_sort`).
"""

from __future__ import annotations

import numpy as np

from repro.scenarios.search_sort import SearchSortParameters

__all__ = [
    "pfail_cpu",
    "pfail_net",
    "pfail_sort",
    "pfail_lpc",
    "pfail_rpc",
    "pfail_search_local",
    "pfail_search_remote",
    "reliability_search_local",
    "reliability_search_remote",
]


def pfail_cpu(n, speed: float, failure_rate: float):
    """Eq. (15)/(16): ``Pfail(cpu, N) = 1 - exp(-lambda * N / s)``."""
    n = np.asarray(n, dtype=float)
    return 1.0 - np.exp(-failure_rate * n / speed)


def pfail_net(b, bandwidth: float, failure_rate: float):
    """Eq. (17): ``Pfail(net, B) = 1 - exp(-gamma * B / b)``."""
    b = np.asarray(b, dtype=float)
    return 1.0 - np.exp(-failure_rate * b / bandwidth)


def _log(list_size):
    return np.log2(np.asarray(list_size, dtype=float))


def pfail_sort(list_size, phi: float, speed: float, failure_rate: float):
    """Eq. (18): ``Pfail(sort_x, list) = 1 - (1 - phi_x) ** (list * log list)
    * exp(-lambda_x * list * log(list) / s_x)``."""
    work = np.asarray(list_size, dtype=float) * _log(list_size)
    return 1.0 - np.power(1.0 - phi, work) * np.exp(-failure_rate * work / speed)


def pfail_lpc(params: SearchSortParameters):
    """Eq. (19): ``Pfail(lpc, ip, op) = 1 - exp(-lambda1 * l / s1)``
    (independent of ``ip``/``op`` under the shared-memory assumption)."""
    return 1.0 - np.exp(-params.lambda1 * params.lpc_operations / params.s1)


def pfail_rpc(ip, op, params: SearchSortParameters):
    """Eq. (20): the product of the six marshal/transmit/unmarshal survival
    factors, collapsed into three exponentials::

        1 - exp(-l1*c*(ip+op)/s1) * exp(-g*m*(ip+op)/b) * exp(-l2*c*(ip+op)/s2)
    """
    total = np.asarray(ip, dtype=float) + np.asarray(op, dtype=float)
    c, m = params.marshal_cost, params.transmit_cost
    return 1.0 - (
        np.exp(-params.lambda1 * c * total / params.s1)
        * np.exp(-params.gamma * m * total / params.bandwidth)
        * np.exp(-params.lambda2 * c * total / params.s2)
    )


def _search_own_survival(list_size, params: SearchSortParameters):
    """``(1 - phi) ** log(list) * exp(-lambda1 * log(list) / s1)`` — the
    survival factor of search's own ``call(cpu1, log(list))`` request,
    common to both branches of eq. (22)."""
    log_list = _log(list_size)
    return np.power(1.0 - params.phi_search, log_list) * np.exp(
        -params.lambda1 * log_list / params.s1
    )


def _pfail_search(list_size, elem, res, params: SearchSortParameters,
                  pfail_connect, pfail_sort_value):
    """Eq. (22) with ``connect``/``sort_x`` supplied by the assembly kind."""
    a = _search_own_survival(list_size, params)
    q = params.q
    return (1.0 - q) * (1.0 - a) + q * (
        1.0 - a * (1.0 - pfail_connect) * (1.0 - pfail_sort_value)
    )


def pfail_search_local(list_size, params: SearchSortParameters | None = None,
                       elem=1, res=1):
    """Eq. (22) instantiated for the local assembly (connect = lpc, x = 1)."""
    p = params or SearchSortParameters()
    return _pfail_search(
        list_size, elem, res, p,
        pfail_connect=pfail_lpc(p),
        pfail_sort_value=pfail_sort(list_size, p.phi_sort1, p.s1, p.lambda1),
    )


def pfail_search_remote(list_size, params: SearchSortParameters | None = None,
                        elem=1, res=1):
    """Eq. (22) instantiated for the remote assembly (connect = rpc, x = 2)."""
    p = params or SearchSortParameters()
    ip = np.asarray(elem, dtype=float) + np.asarray(list_size, dtype=float)
    return _pfail_search(
        list_size, elem, res, p,
        pfail_connect=pfail_rpc(ip, res, p),
        pfail_sort_value=pfail_sort(list_size, p.phi_sort2, p.s2, p.lambda2),
    )


def reliability_search_local(list_size, params: SearchSortParameters | None = None,
                             elem=1, res=1):
    """``1 - Pfail`` for the local assembly — a Figure 6 solid curve."""
    return 1.0 - pfail_search_local(list_size, params, elem, res)


def reliability_search_remote(list_size, params: SearchSortParameters | None = None,
                              elem=1, res=1):
    """``1 - Pfail`` for the remote assembly — a Figure 6 dashed curve."""
    return 1.0 - pfail_search_remote(list_size, params, elem, res)
