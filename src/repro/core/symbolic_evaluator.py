"""Symbolic (closed-form) reliability evaluation.

Section 4 of the paper notes that, "thanks to the possibility of a symbolic
evaluation, we can directly start from the bottom of the recursion ... going
up to upper levels", deriving Pfail(search, ...) as the closed forms
(15)–(22) instead of repeatedly solving matrices numerically.

:class:`SymbolicEvaluator` mechanizes that derivation for *any* assembly:
it returns ``Pfail(S, fp)`` as a single
:class:`~repro.symbolic.Expression` over the formal parameters of ``S``.
The derivation mirrors the numeric evaluator exactly —

- simple services contribute their published expressions with interface
  attributes substituted (numerically, or as named symbols when
  ``symbolic_attributes=True``, which reproduces the paper's fully symbolic
  formulas with ``lambda1``, ``gamma``, ... left free);
- composite services substitute each callee's closed form with the actual
  parameter expressions (the ``N := list * log(list)`` substitution the
  paper highlights below eq. 18), combine per-state failure expressions
  under the completion/sharing models, and eliminate the flow's Markov
  structure symbolically (back-substitution for acyclic flows, symbolic
  Gaussian elimination for flows with loops).

The result can then be evaluated *vectorized* over numpy arrays — this is
how the Figure 6 sweep computes 8 curves x hundreds of points in a single
expression evaluation — and differentiated for sensitivity analysis.

Equivalence with the numeric evaluator (to ~1e-12) is asserted by
``tests/integration/test_section4_closed_forms.py`` and by property tests
over randomized assemblies.
"""

from __future__ import annotations

from repro.errors import (
    CyclicAssemblyError,
    EvaluationError,
    InvalidFlowError,
    ModelError,
)
from repro.model.assembly import Assembly
from repro.model.completion import (
    AndCompletion,
    CompletionModel,
    OrCompletion,
)
from repro.model.flow import END, START, FlowState, ServiceFlow
from repro.model.service import CompositeService, Service, SimpleService
from repro.model.validation import validate_assembly
from repro.runtime.budget import EvaluationBudget
from repro.symbolic import (
    Constant,
    Environment,
    Expression,
    Parameter,
    simplify,
)

__all__ = ["SymbolicEvaluator", "attribute_environment", "attribute_symbol"]

_ONE = Constant(1.0)
_ZERO = Constant(0.0)


def attribute_symbol(service_name: str, attribute: str) -> str:
    """The parameter name used for an interface attribute left symbolic."""
    return f"{service_name}::{attribute}"


def attribute_environment(assembly: Assembly) -> Environment:
    """An environment binding every ``service::attribute`` symbol of the
    assembly to its published numeric value — pairs with
    ``SymbolicEvaluator(symbolic_attributes=True)`` to evaluate or
    differentiate fully symbolic formulas at the published design point."""
    bindings: dict[str, float] = {}
    for service in assembly.services:
        for attr, value in service.interface.attributes.items():
            bindings[attribute_symbol(service.name, attr)] = value
    return Environment(bindings)


class SymbolicEvaluator:
    """Closed-form implementation of ``Pfail_Alg`` over one assembly.

    Args:
        assembly: the (acyclic) service assembly.
        symbolic_attributes: leave interface attributes as free symbols
            named ``service::attribute`` instead of substituting their
            numeric values.
        validate: run structural validation up front.
        budget: optional :class:`~repro.runtime.EvaluationBudget`; the
            derivation load-sheds on the deadline and recursion-depth
            limits with :class:`~repro.errors.BudgetExceededError`.
    """

    def __init__(
        self,
        assembly: Assembly,
        symbolic_attributes: bool = False,
        validate: bool = True,
        budget: EvaluationBudget | None = None,
    ):
        self.assembly = assembly
        self.symbolic_attributes = symbolic_attributes
        self.budget = budget
        #: Per-service derivations actually performed (memo hits are free);
        #: the engine-layer plan cache asserts warm reuse re-derives nothing.
        self.derivation_count = 0
        if validate:
            validate_assembly(assembly).raise_if_invalid()
        self._cache: dict[str, Expression] = {}
        self._kernels: dict[str, "CompiledKernel"] = {}
        self._stack: list[str] = []

    # -- public API ----------------------------------------------------------

    def pfail_expression(self, service: str | Service) -> Expression:
        """``Pfail(S, fp)`` as an expression over S's formal parameters
        (plus ``service::attribute`` symbols when ``symbolic_attributes``)."""
        svc = service if isinstance(service, Service) else self.assembly.service(service)
        return self._pfail(svc)

    def pfail_kernel(self, service: str | Service) -> "CompiledKernel":
        """The compiled numpy kernel of ``Pfail(S, fp)`` — derived and
        compiled on first request, memoized alongside the closed form (and
        shared process-wide through the default kernel cache)."""
        from repro.symbolic.compiler import compile_expression

        name = service.name if isinstance(service, Service) else str(service)
        kernel = self._kernels.get(name)
        if kernel is None:
            kernel = compile_expression(self.pfail_expression(name))
            self._kernels[name] = kernel
        return kernel

    def reliability_expression(self, service: str | Service) -> Expression:
        """``1 - Pfail(S, fp)`` as an expression."""
        return simplify(_ONE - self.pfail_expression(service))

    # -- recursion ----------------------------------------------------------

    def _pfail(self, service: Service) -> Expression:
        if self.budget is not None:
            self.budget.check_deadline("symbolic derivation")
            self.budget.check_depth(
                len(self._stack) + 1, "symbolic-derivation recursion"
            )
        if service.name in self._cache:
            return self._cache[service.name]
        if service.name in self._stack:
            start = self._stack.index(service.name)
            raise CyclicAssemblyError(tuple(self._stack[start:]) + (service.name,))
        self.derivation_count += 1
        self._stack.append(service.name)
        try:
            if isinstance(service, SimpleService):
                expr = self._attribute_substitute(
                    service, service.failure_probability
                )
            elif isinstance(service, CompositeService):
                expr = self._pfail_composite(service)
            else:
                raise ModelError(f"cannot evaluate service type {type(service)!r}")
        finally:
            self._stack.pop()
        expr = simplify(expr)
        self._cache[service.name] = expr
        return expr

    def _attribute_substitute(self, service: Service, expr: Expression) -> Expression:
        mapping: dict[str, Expression] = {}
        for attr, value in service.interface.attributes.items():
            if self.symbolic_attributes:
                mapping[attr] = Parameter(attribute_symbol(service.name, attr))
            else:
                mapping[attr] = Constant(value)
        return expr.substitute(mapping) if mapping else expr

    def _pfail_composite(self, service: CompositeService) -> Expression:
        failures: dict[str, Expression] = {}
        for state in service.flow.states:
            failures[state.name] = self._state_failure(service, state)
        survival = _solve_success_probability(service.flow, failures, service, self)
        return simplify(_ONE - survival)

    def _state_failure(self, service: CompositeService, state: FlowState) -> Expression:
        internal: list[Expression] = []
        external: list[Expression] = []
        masking: list[Expression] = []
        for request in state.requests:
            resolved = self.assembly.resolve_request(service.name, request)
            p_int = self._attribute_substitute(service, request.internal_failure)

            callee = self._pfail(resolved.provider)
            callee_actuals = {
                name: self._attribute_substitute(service, request.actuals[name])
                for name in resolved.provider.formal_parameters
            }
            p_service = callee.substitute(callee_actuals)

            if resolved.connector is None:
                p_connector: Expression = _ZERO
            else:
                conn = self._pfail(resolved.connector)
                conn_actuals = {
                    name: self._attribute_substitute(
                        service, resolved.connector_actuals[name]
                    )
                    for name in resolved.connector.formal_parameters
                }
                p_connector = conn.substitute(conn_actuals)

            internal.append(simplify(p_int))
            external.append(
                simplify(_ONE - (_ONE - p_service) * (_ONE - p_connector))
            )
            masking.append(
                simplify(self._attribute_substitute(service, request.masking))
            )
        return simplify(
            _symbolic_state_failure(
                state.completion, state.shared, internal, external, masking,
                groups=state.sharing_groups,
            )
        )


def _symbolic_state_failure(
    completion: CompletionModel,
    shared: bool,
    internal: list[Expression],
    external: list[Expression],
    masking: list[Expression] | None = None,
    groups: tuple[tuple[int, ...], ...] | None = None,
) -> Expression:
    """Expression form of eqs. (4)-(13), the k-of-n extension, the
    error-masking extension, and the grouped-sharing extension."""
    n = len(internal)
    if n == 0:
        return _ZERO
    k = completion.required_successes(n)
    if masking is None:
        masking = [_ZERO] * n

    if groups is not None:
        return _symbolic_grouped_state_failure(
            k, groups, internal, external, masking
        )

    if any(not (isinstance(m, Constant) and m.value == 0.0) for m in masking):
        return _symbolic_masked_state_failure(
            k, shared, internal, external, masking
        )

    if isinstance(completion, AndCompletion):
        # eq. (6) == eq. (11): sharing-insensitive
        survive = _ONE
        for pi, pe in zip(internal, external):
            survive = survive * (_ONE - pi) * (_ONE - pe)
        return _ONE - survive

    if isinstance(completion, OrCompletion):
        if not shared:
            # eq. (7)+(8)
            out = _ONE
            for pi, pe in zip(internal, external):
                out = out * (_ONE - (_ONE - pi) * (_ONE - pe))
            return out
        # eq. (12)
        no_ext = _ONE
        all_int = _ONE
        for pi, pe in zip(internal, external):
            no_ext = no_ext * (_ONE - pe)
            all_int = all_int * pi
        return _ONE - no_ext * (_ONE - all_int)

    # general k-of-n via a symbolic Poisson-binomial DP
    def below(successes: list[Expression], required: int) -> Expression:
        dist: list[Expression] = [_ONE] + [_ZERO] * (required - 1)
        for p in successes:
            new: list[Expression] = []
            for j in range(len(dist)):
                stay = dist[j] * (_ONE - p)
                step = dist[j - 1] * p if j > 0 else _ZERO
                new.append(simplify(stay + step))
            dist = new
        total: Expression = _ZERO
        for term in dist:
            total = total + term
        return simplify(total)

    if not shared:
        successes = [
            simplify((_ONE - pi) * (_ONE - pe))
            for pi, pe in zip(internal, external)
        ]
        return below(successes, k)
    no_ext = _ONE
    for pe in external:
        no_ext = no_ext * (_ONE - pe)
    internal_only = below([simplify(_ONE - pi) for pi in internal], k)
    return (_ONE - no_ext) + no_ext * internal_only


def _poisson_binomial_below_expr(successes: list[Expression], required: int) -> Expression:
    """Symbolic ``P(#successes < required)`` via the same DP as the
    numeric engine."""
    if required <= 0:
        return _ZERO
    dist: list[Expression] = [_ONE] + [_ZERO] * (required - 1)
    for p in successes:
        new: list[Expression] = []
        for j in range(len(dist)):
            stay = dist[j] * (_ONE - p)
            step = dist[j - 1] * p if j > 0 else _ZERO
            new.append(simplify(stay + step))
        dist = new
    total: Expression = _ZERO
    for term in dist:
        total = total + term
    return simplify(total)


def _symbolic_grouped_state_failure(
    k: int,
    groups: tuple[tuple[int, ...], ...],
    internal: list[Expression],
    external: list[Expression],
    masking: list[Expression],
) -> Expression:
    """The grouped-sharing extension, symbolically (mirrors the numeric
    :func:`repro.core.state_failure.grouped_state_failure_probability`)."""
    from itertools import product as _cartesian

    n = len(internal)
    multi = [tuple(g) for g in groups if len(g) >= 2]
    base_success: dict[int, Expression] = {}
    for g in groups:
        if len(g) == 1:
            j = g[0]
            base_success[j] = simplify(
                _ONE
                - (_ONE - masking[j])
                * (_ONE - (_ONE - internal[j]) * (_ONE - external[j]))
            )

    total: Expression = _ZERO
    for statuses in _cartesian((False, True), repeat=len(multi)):
        weight: Expression = _ONE
        successes: list[Expression] = [_ZERO] * n
        for j, value in base_success.items():
            successes[j] = value
        for group, group_failed in zip(multi, statuses):
            no_ext: Expression = _ONE
            for j in group:
                no_ext = no_ext * (_ONE - external[j])
            no_ext = simplify(no_ext)
            weight = weight * ((_ONE - no_ext) if group_failed else no_ext)
            for j in group:
                if group_failed:
                    successes[j] = masking[j]
                else:
                    successes[j] = simplify(
                        _ONE - (_ONE - masking[j]) * internal[j]
                    )
        total = total + simplify(weight) * _poisson_binomial_below_expr(
            successes, k
        )
    return simplify(total)


def _symbolic_masked_state_failure(
    k: int,
    shared: bool,
    internal: list[Expression],
    external: list[Expression],
    masking: list[Expression],
) -> Expression:
    """The error-masking extension, symbolically (mirrors the numeric
    :func:`repro.core.state_failure.state_failure_probability`)."""
    if not shared:
        successes = [
            simplify(
                _ONE - (_ONE - m) * (_ONE - (_ONE - pi) * (_ONE - pe))
            )
            for pi, pe, m in zip(internal, external, masking)
        ]
        return _poisson_binomial_below_expr(successes, k)
    no_ext = _ONE
    for pe in external:
        no_ext = no_ext * (_ONE - pe)
    no_ext = simplify(no_ext)
    internal_only = _poisson_binomial_below_expr(
        [simplify(_ONE - (_ONE - m) * pi) for pi, m in zip(internal, masking)], k
    )
    under_ext = _poisson_binomial_below_expr(list(masking), k)
    return simplify((_ONE - no_ext) * under_ext + no_ext * internal_only)


def _solve_success_probability(
    flow: ServiceFlow,
    failures: dict[str, Expression],
    service: CompositeService,
    evaluator: SymbolicEvaluator,
) -> Expression:
    """``p*(Start, End)`` symbolically.

    Unknowns ``x_i`` (probability of eventually reaching End from internal
    state ``i``) satisfy

        ``x_i = (1 - f_i) * ( sum_k p(i, k) x_k + p(i, End) )``

    and ``x_Start = sum_k p(Start, k) x_k + p(Start, End)`` (no failure in
    Start).  Acyclic flows are solved by back-substitution in reverse
    topological order; flows with loops fall back to symbolic Gaussian
    elimination (producing the rational functions one expects from loops).
    """
    internal = [s.name for s in flow.states]
    index = {name: i for i, name in enumerate(internal)}

    def substituted(expr: Expression) -> Expression:
        return evaluator._attribute_substitute(service, expr)

    def check_constant_distribution(source: str) -> None:
        """Reject corrupt constant transition rows at derivation time.

        Parametric rows cannot be checked until actuals arrive, but a row
        whose probabilities are all constants (the common case, and the
        shape model corruption takes) must already form a distribution —
        otherwise the closed form would be a plausible-looking wrong
        number rather than a typed error.
        """
        probs = [substituted(t.probability) for t in flow.outgoing(source)]
        if not probs or not all(isinstance(p, Constant) for p in probs):
            return
        values = [p.value for p in probs]
        total = sum(values)
        if any(v < -1e-9 for v in values) or abs(total - 1.0) > 1e-6:
            raise InvalidFlowError(
                f"transition probabilities out of {source!r} do not form "
                f"a distribution: {values} (sum {total!r})"
            )

    # adjacency among internal states
    edges: dict[str, list[tuple[str, Expression]]] = {name: [] for name in internal}
    to_end: dict[str, Expression] = {name: _ZERO for name in internal}
    for name in [START, *internal]:
        check_constant_distribution(name)
    for name in internal:
        for t in flow.outgoing(name):
            prob = substituted(t.probability)
            if t.target == END:
                to_end[name] = simplify(to_end[name] + prob)
            else:
                edges[name].append((t.target, prob))

    order = _topological(internal, edges)
    if order is not None:
        x: dict[str, Expression] = {}
        for name in reversed(order):
            inner = to_end[name]
            for target, prob in edges[name]:
                inner = inner + prob * x[target]
            x[name] = simplify((_ONE - failures[name]) * inner)
    else:
        x = _gaussian_solve(
            internal, index, edges, to_end, failures, budget=evaluator.budget
        )

    start_value: Expression = _ZERO
    for t in flow.outgoing(START):
        prob = substituted(t.probability)
        if t.target == END:
            start_value = start_value + prob
        else:
            start_value = start_value + prob * x[t.target]
    return simplify(start_value)


def _topological(
    nodes: list[str], edges: dict[str, list[tuple[str, Expression]]]
) -> list[str] | None:
    """Topological order of internal states, or None when cyclic."""
    indegree = {n: 0 for n in nodes}
    for source in nodes:
        for target, _ in edges[source]:
            indegree[target] += 1
    queue = [n for n in nodes if indegree[n] == 0]
    order: list[str] = []
    while queue:
        node = queue.pop()
        order.append(node)
        for target, _ in edges[node]:
            indegree[target] -= 1
            if indegree[target] == 0:
                queue.append(target)
    if len(order) != len(nodes):
        return None
    return order


def _gaussian_solve(
    nodes: list[str],
    index: dict[str, int],
    edges: dict[str, list[tuple[str, Expression]]],
    to_end: dict[str, Expression],
    failures: dict[str, Expression],
    budget: EvaluationBudget | None = None,
) -> dict[str, Expression]:
    """Symbolic Gaussian elimination for cyclic flows.

    Solves ``(I - C) x = b`` where ``C[i][k] = (1 - f_i) p(i, k)`` and
    ``b[i] = (1 - f_i) p(i, End)``.  Pivots are symbolic; a pivot that
    simplifies to the constant zero means the flow wiring makes End
    unreachable from some state, which flow validation already excludes —
    it is reported defensively anyway.
    """
    n = len(nodes)
    matrix: list[list[Expression]] = [
        [_ONE if i == j else _ZERO for j in range(n)] for i in range(n)
    ]
    rhs: list[Expression] = [_ZERO] * n
    for name in nodes:
        i = index[name]
        survive = simplify(_ONE - failures[name])
        rhs[i] = simplify(survive * to_end[name])
        for target, prob in edges[name]:
            j = index[target]
            matrix[i][j] = simplify(matrix[i][j] - survive * prob)

    for col in range(n):
        if budget is not None:
            budget.check_deadline("symbolic Gaussian elimination")
        # pick a pivot row whose diagonal is not literally zero
        pivot_row = None
        for row in range(col, n):
            candidate = simplify(matrix[row][col])
            if not (isinstance(candidate, Constant) and candidate.value == 0.0):
                pivot_row = row
                break
        if pivot_row is None:
            raise EvaluationError(
                "singular symbolic system: End unreachable from some state"
            )
        matrix[col], matrix[pivot_row] = matrix[pivot_row], matrix[col]
        rhs[col], rhs[pivot_row] = rhs[pivot_row], rhs[col]
        pivot = matrix[col][col]
        for row in range(n):
            if row == col:
                continue
            factor = simplify(matrix[row][col] / pivot)
            if isinstance(factor, Constant) and factor.value == 0.0:
                continue
            for k in range(col, n):
                matrix[row][k] = simplify(matrix[row][k] - factor * matrix[col][k])
            rhs[row] = simplify(rhs[row] - factor * rhs[col])

    return {
        name: simplify(rhs[index[name]] / matrix[index[name]][index[name]])
        for name in nodes
    }
