"""Per-state failure probabilities: equations (4)–(13) of the paper.

A flow state ``i`` holds requests ``A_i1 .. A_in``.  Each request ``A_ij``
has an *internal* failure probability ``Pfail_int(A_ij)`` and an *external*
one, combining the called service and its connector (eq. 8 / eq. 13):

    ``Pfail_ext(A_ij) = 1 - (1 - Pfail(S_j, ap_j)) * (1 - Pfail(C_j, [S_j, ap_j]))``

The probability ``p(i, Fail)`` that the state fails then depends on the
**completion model** (AND: eq. 4, OR: eq. 5, k-of-n as the paper's named
extension) and on the **dependency model**:

- *no sharing* — requests are independent; eqs. (6) and (7);
- *sharing* — all requests use the same external service through the same
  connector, so (under fail-stop/no-repair) one external failure kills every
  request in the state; eqs. (9)–(12).

This module provides two independent routes to the same numbers:

1. :func:`state_failure_probability` — the **general engine**: a
   Poisson-binomial computation parameterized by the number of required
   successes, covering AND (``k = n``), OR (``k = 1``) and any ``k``-of-n,
   under both dependency models;
2. the paper's **closed forms** (:func:`and_no_sharing`,
   :func:`or_no_sharing`, :func:`and_sharing`, :func:`or_sharing`) —
   kept verbatim so tests can verify the engine reproduces each equation
   exactly, including the paper's headline identity *AND+sharing ==
   AND+no-sharing* and inequality *OR+sharing >= OR+no-sharing*.

All functions accept scalars or numpy arrays (broadcasting elementwise),
which lets closed-form sweeps run vectorized.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ModelError, ProbabilityRangeError
from repro.model.completion import CompletionModel

__all__ = [
    "request_failure_probability",
    "external_failure_probability",
    "poisson_binomial_below",
    "state_failure_probability",
    "grouped_state_failure_probability",
    "and_no_sharing",
    "or_no_sharing",
    "and_sharing",
    "or_sharing",
]

_TOL = 1e-9


def _check_probability(what: str, value) -> np.ndarray | float:
    """Validate a scalar-or-array probability, returning it clipped of
    round-off but rejecting genuine range violations."""
    arr = np.asarray(value, dtype=float)
    if np.any(arr < -_TOL) or np.any(arr > 1.0 + _TOL):
        bad = float(arr.min() if np.any(arr < -_TOL) else arr.max())
        raise ProbabilityRangeError(what, bad)
    clipped = np.clip(arr, 0.0, 1.0)
    return float(clipped) if clipped.shape == () else clipped


def external_failure_probability(p_service, p_connector):
    """Equation (13): ``Pfail_ext = 1 - (1 - Pfail(S)) * (1 - Pfail(C))``.

    The request suffers an external failure unless *both* the requested
    service and the transporting connector succeed.
    """
    ps = _check_probability("service failure probability", p_service)
    pc = _check_probability("connector failure probability", p_connector)
    return 1.0 - (1.0 - ps) * (1.0 - pc)


def request_failure_probability(p_internal, p_external):
    """Equation (8): ``Pr{fail(A_ij)} = 1 - (1 - Pfail_int) * (1 - Pfail_ext)``.

    A request succeeds only if neither an internal nor an external failure
    occurs.
    """
    pi = _check_probability("internal failure probability", p_internal)
    pe = _check_probability("external failure probability", p_external)
    return 1.0 - (1.0 - pi) * (1.0 - pe)


def poisson_binomial_below(success_probabilities: Sequence, k: int):
    """``P(#successes < k)`` for independent Bernoulli trials.

    Dynamic program over the distribution of the success count; ``O(n*k)``
    and numerically stable (all quantities are convex combinations of
    probabilities).  Accepts array-valued per-trial probabilities, which
    broadcast elementwise.
    """
    n = len(success_probabilities)
    if k < 0 or k > n + 1:
        raise ModelError(f"required successes k={k} out of range for n={n}")
    if k == 0:
        return 0.0
    if n == 0:
        return 1.0  # k >= 1 successes required but no trials exist
    probs = [_check_probability("success probability", p) for p in success_probabilities]
    # dist[j] = P(exactly j successes so far); only j < k matters, plus an
    # implicit absorbing ">= k" bucket we never need to track.
    shape = np.broadcast(*[np.asarray(p) for p in probs]).shape if probs else ()
    dist = [np.ones(shape) if shape else 1.0] + [
        (np.zeros(shape) if shape else 0.0) for _ in range(min(k, n + 1) - 1)
    ]
    for p in probs:
        new = []
        for j in range(len(dist)):
            stay = dist[j] * (1.0 - p)
            step = dist[j - 1] * p if j > 0 else 0.0
            new.append(stay + step)
        dist = new
    total = sum(dist)
    return _check_probability("Poisson-binomial tail", total)


def state_failure_probability(
    completion: CompletionModel,
    shared: bool,
    internal: Sequence,
    external: Sequence,
    masking: Sequence | None = None,
    groups: Sequence[Sequence[int]] | None = None,
):
    """``p(i, Fail)`` for one flow state — the general engine.

    Args:
        completion: the state's completion model (AND / OR / k-of-n).
        shared: the state's dependency model (True = sharing).
        internal: per-request internal failure probabilities
            ``Pfail_int(A_ij)``.
        external: per-request external failure probabilities
            ``Pfail_ext(A_ij)`` (already combined with the connector via
            eq. 13).
        masking: optional per-request error-masking probabilities ``m_j``
            (the error-propagation extension; ``None`` or all-zero is the
            paper's fail-stop semantics).  A failed request still counts
            as fulfilled with probability ``m_j``.
        groups: optional explicit dependency partition (the extended
            sharing model); when given it overrides ``shared`` and the
            computation delegates to
            :func:`grouped_state_failure_probability`.

    With **no sharing**, request ``j`` succeeds independently with
    probability ``1 - (1 - m_j) * Pr{fail(A_ij)}`` (complement of eq. 8,
    attenuated by masking) and the state fails iff fewer than ``k``
    requests succeed — which reduces to eq. (6) for AND and eq. (7) for
    OR at ``m = 0``.

    With **sharing**, the paper conditions on the external-failure event
    (eqs. 9/10): if *any* request suffers an external failure the shared
    service is lost and every request fails — unless masked, i.e. request
    ``j`` is still fulfilled with probability ``m_j``; conditional on no
    external failure anywhere, requests fail independently through their
    internal failures only (again attenuated by masking).  This reduces to
    eq. (11) for AND and eq. (12) for OR at ``m = 0``.
    """
    if groups is not None:
        return grouped_state_failure_probability(
            completion, groups, internal, external, masking
        )
    if len(internal) != len(external):
        raise ModelError(
            f"internal ({len(internal)}) and external ({len(external)}) "
            f"probability lists differ in length"
        )
    n = len(internal)
    if n == 0:
        return 0.0  # a state with no requests cannot fail
    if masking is None:
        masking = [0.0] * n
    if len(masking) != n:
        raise ModelError(
            f"masking list ({len(masking)}) does not match request count ({n})"
        )
    k = completion.required_successes(n)
    ints = [_check_probability("internal failure probability", p) for p in internal]
    exts = [_check_probability("external failure probability", p) for p in external]
    masks = [_check_probability("masking probability", m) for m in masking]

    if not shared:
        successes = [
            1.0 - (1.0 - m) * (1.0 - (1.0 - pi) * (1.0 - pe))
            for pi, pe, m in zip(ints, exts, masks)
        ]
        return poisson_binomial_below(successes, k)

    # sharing: P(no external failure at all) = prod_j (1 - Pfail_ext_j)
    no_ext = 1.0
    for pe in exts:
        no_ext = no_ext * (1.0 - pe)
    internal_only = poisson_binomial_below(
        [1.0 - (1.0 - m) * pi for pi, m in zip(ints, masks)], k
    )
    # under an external failure of the shared service, request j is
    # fulfilled only if masked
    under_ext = poisson_binomial_below(list(masks), k)
    return _check_probability(
        "state failure probability",
        (1.0 - no_ext) * under_ext + no_ext * internal_only,
    )


def grouped_state_failure_probability(
    completion: CompletionModel,
    groups: Sequence[Sequence[int]],
    internal: Sequence,
    external: Sequence,
    masking: Sequence | None = None,
):
    """``p(i, Fail)`` under the **extended dependency model**: a partition
    of the requests into independent shared-service groups.

    The paper's section 6 asks for the dependency model "to deal with more
    complex dependencies"; this is the natural generalization of
    eqs. (9)–(12): requests inside one multi-request group share an
    external service (one external failure in the group, under no-repair,
    defeats the whole group — masking aside), while *distinct groups fail
    independently*.  Singleton groups reduce to the no-sharing model; a
    single all-request group reduces to the paper's sharing model — both
    identities are property-tested.

    Computation: condition on the ext-failure status of each multi-request
    group (independent events, so the joint weight is a product), then the
    requests are conditionally independent Bernoulli trials and the
    completion model is one Poisson-binomial tail per status combination
    (``2^G`` combinations for ``G`` multi-request groups; ``G`` is small in
    any sane architecture).
    """
    from itertools import product as _cartesian

    n = len(internal)
    if len(external) != n:
        raise ModelError(
            f"internal ({n}) and external ({len(external)}) probability "
            f"lists differ in length"
        )
    if n == 0:
        return 0.0
    if masking is None:
        masking = [0.0] * n
    if len(masking) != n:
        raise ModelError(
            f"masking list ({len(masking)}) does not match request count ({n})"
        )
    normalized = [tuple(int(i) for i in g) for g in groups]
    flattened = sorted(i for g in normalized for i in g)
    if flattened != list(range(n)):
        raise ModelError(
            f"groups {normalized} must partition the request indices 0..{n - 1}"
        )
    k = completion.required_successes(n)
    ints = [_check_probability("internal failure probability", p) for p in internal]
    exts = [_check_probability("external failure probability", p) for p in external]
    masks = [_check_probability("masking probability", m) for m in masking]

    multi = [g for g in normalized if len(g) >= 2]
    # independent (singleton) requests: full eq. (8) failure, masked
    base_success: dict[int, object] = {}
    for g in normalized:
        if len(g) == 1:
            j = g[0]
            base_success[j] = 1.0 - (1.0 - masks[j]) * (
                1.0 - (1.0 - ints[j]) * (1.0 - exts[j])
            )

    total = 0.0
    for statuses in _cartesian((False, True), repeat=len(multi)):
        weight = 1.0
        successes: list = [None] * n
        for j, value in base_success.items():
            successes[j] = value
        for group, group_failed in zip(multi, statuses):
            no_ext = 1.0
            for j in group:
                no_ext = no_ext * (1.0 - exts[j])
            weight = weight * ((1.0 - no_ext) if group_failed else no_ext)
            for j in group:
                if group_failed:
                    # the shared service is gone: fulfilled only if masked
                    successes[j] = masks[j]
                else:
                    # conditionally, only internal failures remain
                    successes[j] = 1.0 - (1.0 - masks[j]) * ints[j]
        total = total + weight * poisson_binomial_below(successes, k)
    return _check_probability("state failure probability", total)


# ---------------------------------------------------------------------------
# The paper's closed forms, kept verbatim for verification
# ---------------------------------------------------------------------------


def and_no_sharing(internal: Sequence, external: Sequence):
    """Equations (6)+(8): ``1 - prod_j (1 - Pr{fail(A_ij)})``."""
    out = 1.0
    for pi, pe in zip(internal, external):
        out = out * (1.0 - request_failure_probability(pi, pe))
    return 1.0 - out


def or_no_sharing(internal: Sequence, external: Sequence):
    """Equations (7)+(8): ``prod_j Pr{fail(A_ij)}``."""
    out = 1.0
    for pi, pe in zip(internal, external):
        out = out * request_failure_probability(pi, pe)
    return out


def and_sharing(internal: Sequence, external: Sequence):
    """Equation (11): ``1 - prod_j (1-Pint_j) * prod_j (1-Pext_j)``.

    Algebraically identical to :func:`and_no_sharing` — the paper's
    observation that AND completion is insensitive to sharing under
    fail-stop/no-repair.
    """
    no_int = 1.0
    no_ext = 1.0
    for pi, pe in zip(internal, external):
        no_int = no_int * (1.0 - _check_probability("internal", pi))
        no_ext = no_ext * (1.0 - _check_probability("external", pe))
    return 1.0 - no_int * no_ext


def or_sharing(internal: Sequence, external: Sequence):
    """Equation (12): ``1 - prod_j (1-Pext_j) * (1 - prod_j Pint_j)``.

    Differs from :func:`or_no_sharing`: with a shared service, the OR
    redundancy only protects against *internal* failures — one external
    failure defeats all replicas at once.
    """
    no_ext = 1.0
    all_int = 1.0
    for pi, pe in zip(internal, external):
        no_ext = no_ext * (1.0 - _check_probability("external", pe))
        all_int = all_int * _check_probability("internal", pi)
    return 1.0 - no_ext * (1.0 - all_int)
