"""The paper's primary contribution: compositional reliability prediction.

- :mod:`repro.core.state_failure` — per-state failure probabilities under
  the completion x dependency models (eqs. 4–13);
- :mod:`repro.core.failure_structure` — Fail-state augmentation (Figure 5);
- :mod:`repro.core.evaluator` — the recursive ``Pfail_Alg`` (section 3.3);
- :mod:`repro.core.symbolic_evaluator` — closed-form derivation (section 4);
- :mod:`repro.core.fixed_point` — fixed-point evaluation of recursive
  assemblies (the paper's stated future work);
- :mod:`repro.core.sensitivity` — derivative-based what-if analysis.
"""

from repro.core.evaluator import EvaluationReport, ReliabilityEvaluator, StateBreakdown
from repro.core.failure_structure import augment_with_failures
from repro.core.fixed_point import FixedPointEvaluator
from repro.core.performance import PerformanceEvaluator
from repro.core.sensitivity import (
    SensitivityResult,
    attribute_sensitivities,
    finite_difference_attribute_sensitivity,
    finite_difference_sensitivity,
    parameter_sensitivities,
)
from repro.core.state_failure import (
    and_no_sharing,
    and_sharing,
    external_failure_probability,
    grouped_state_failure_probability,
    or_no_sharing,
    or_sharing,
    poisson_binomial_below,
    request_failure_probability,
    state_failure_probability,
)
from repro.core.symbolic_evaluator import (
    SymbolicEvaluator,
    attribute_environment,
    attribute_symbol,
)

__all__ = [
    "EvaluationReport",
    "FixedPointEvaluator",
    "PerformanceEvaluator",
    "ReliabilityEvaluator",
    "SensitivityResult",
    "StateBreakdown",
    "SymbolicEvaluator",
    "and_no_sharing",
    "and_sharing",
    "attribute_environment",
    "attribute_sensitivities",
    "attribute_symbol",
    "augment_with_failures",
    "external_failure_probability",
    "grouped_state_failure_probability",
    "finite_difference_attribute_sensitivity",
    "finite_difference_sensitivity",
    "or_no_sharing",
    "or_sharing",
    "parameter_sensitivities",
    "poisson_binomial_below",
    "request_failure_probability",
    "state_failure_probability",
]
