"""Sensitivity analysis of predicted reliability.

The paper motivates prediction as the input to *selection*: a broker
assembling services needs to know not only the predicted reliability but
which published attribute to improve (or which service to re-select) for
the largest gain.  This module differentiates the symbolic closed form of
``Pfail(S, fp)`` with respect to

- the service's **formal parameters** (how unreliability scales with
  workload — e.g. d Pfail(search) / d list, the slope of Figure 6), and
- every **interface attribute** in the assembly (failure rates, speeds,
  bandwidths), via the ``symbolic_attributes`` mode of the symbolic
  evaluator,

and evaluates the derivatives at a concrete design point.  A
finite-difference cross-check is provided for validation.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.evaluator import ReliabilityEvaluator
from repro.core.symbolic_evaluator import (
    SymbolicEvaluator,
    attribute_environment,
)
from repro.model.assembly import Assembly
from repro.symbolic import Environment
from repro.symbolic.compiler import compile_expression, gradient_kernels

__all__ = [
    "SensitivityResult",
    "parameter_sensitivities",
    "attribute_sensitivities",
    "finite_difference_sensitivity",
]


@dataclass(frozen=True)
class SensitivityResult:
    """Sensitivity of ``Pfail`` to one quantity at a design point.

    Attributes:
        name: the parameter or ``service::attribute`` symbol.
        value: the quantity's value at the design point.
        derivative: ``d Pfail / d name`` at the point.
        elasticity: ``(name / Pfail) * derivative`` — the relative change of
            unreliability per relative change of the quantity; the
            scale-free number to *rank* by (zero when ``Pfail`` or the
            value is zero).
    """

    name: str
    value: float
    derivative: float
    elasticity: float


def _elasticity(value: float, pfail: float, derivative: float) -> float:
    if pfail == 0.0 or value == 0.0:
        return 0.0
    return (value / pfail) * derivative


def parameter_sensitivities(
    assembly: Assembly,
    service: str,
    actuals: Mapping[str, float],
    compile: bool = True,
) -> list[SensitivityResult]:
    """Sensitivity of ``Pfail(service)`` to each formal parameter, ranked by
    absolute elasticity (descending).

    With ``compile`` (the default) the closed form and each gradient are
    differentiated and compiled to numpy kernels once per parameter, ever
    — repeated probes of the same design re-walk nothing.
    """
    evaluator = SymbolicEvaluator(assembly)
    pfail_expr = evaluator.pfail_expression(service)
    env = Environment(dict(actuals))
    formals = assembly.service(service).formal_parameters
    if compile:
        pfail = float(compile_expression(pfail_expr).evaluate(env))
        gradients = gradient_kernels(pfail_expr, formals)
    else:
        pfail = float(pfail_expr.evaluate(env))
        gradients = {n: pfail_expr.differentiate(n) for n in formals}
    results = []
    for name in formals:
        derivative = float(gradients[name].evaluate(env))
        value = float(actuals[name])
        results.append(
            SensitivityResult(name, value, derivative, _elasticity(value, pfail, derivative))
        )
    results.sort(key=lambda r: abs(r.elasticity), reverse=True)
    return results


def attribute_sensitivities(
    assembly: Assembly,
    service: str,
    actuals: Mapping[str, float],
    top: int | None = None,
    compile: bool = True,
) -> list[SensitivityResult]:
    """Sensitivity of ``Pfail(service)`` to every interface attribute in the
    assembly (``service::attribute`` symbols), ranked by absolute
    elasticity.

    This answers the broker's question directly: e.g. in the remote
    assembly of section 4, the network failure rate ``net12::failure_rate``
    dominates for large ``gamma`` — matching the Figure 6 story.
    """
    evaluator = SymbolicEvaluator(assembly, symbolic_attributes=True)
    pfail_expr = evaluator.pfail_expression(service)
    attr_env = attribute_environment(assembly)
    env = Environment({**dict(attr_env), **dict(actuals)})
    symbols = [
        s for s in sorted(pfail_expr.free_parameters()) if "::" in s
    ]  # formal parameters are handled by parameter_sensitivities
    if compile:
        pfail = float(compile_expression(pfail_expr).evaluate(env))
        gradients = gradient_kernels(pfail_expr, symbols)
    else:
        pfail = float(pfail_expr.evaluate(env))
        gradients = {s: pfail_expr.differentiate(s) for s in symbols}
    results = []
    for symbol in symbols:
        derivative = float(gradients[symbol].evaluate(env))
        value = float(env[symbol])
        results.append(
            SensitivityResult(symbol, value, derivative, _elasticity(value, pfail, derivative))
        )
    results.sort(key=lambda r: abs(r.elasticity), reverse=True)
    if top is not None:
        results = results[:top]
    return results


def finite_difference_sensitivity(
    assembly: Assembly,
    service: str,
    actuals: Mapping[str, float],
    parameter: str,
    step: float = 1e-4,
) -> float:
    """Central finite-difference ``d Pfail / d parameter`` — a
    model-independent cross-check of the symbolic derivatives.

    Domain checks are disabled for the probe points (the half-steps around
    an integer-domain point are intentionally non-integral).
    """
    evaluator = ReliabilityEvaluator(assembly, check_domains=False)
    value = float(actuals[parameter])
    h = step * max(abs(value), 1.0)
    up = dict(actuals)
    down = dict(actuals)
    up[parameter] = value + h
    down[parameter] = value - h
    return (evaluator.pfail(service, **up) - evaluator.pfail(service, **down)) / (2 * h)
