"""Sensitivity analysis of predicted reliability.

The paper motivates prediction as the input to *selection*: a broker
assembling services needs to know not only the predicted reliability but
which published attribute to improve (or which service to re-select) for
the largest gain.  This module differentiates the symbolic closed form of
``Pfail(S, fp)`` with respect to

- the service's **formal parameters** (how unreliability scales with
  workload — e.g. d Pfail(search) / d list, the slope of Figure 6), and
- every **interface attribute** in the assembly (failure rates, speeds,
  bandwidths), via the ``symbolic_attributes`` mode of the symbolic
  evaluator,

and evaluates the derivatives at a concrete design point.  A
finite-difference cross-check is provided for validation.

The finite-difference probes evaluate *structurally identical* models at
nearby points — exactly the shape the low-rank update path
(:mod:`repro.markov.updates`) accelerates — so both cross-checks default
to ``incremental=True``: the ``±h`` probe solves are served by
Sherman-Morrison-Woodbury updates of one cached base factorization
instead of fresh factorizations per probe.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.evaluator import ReliabilityEvaluator
from repro.core.symbolic_evaluator import (
    SymbolicEvaluator,
    attribute_environment,
)
from repro.errors import EvaluationError
from repro.model.assembly import Assembly
from repro.symbolic import Environment
from repro.symbolic.compiler import compile_expression, gradient_kernels

__all__ = [
    "SensitivityResult",
    "parameter_sensitivities",
    "attribute_sensitivities",
    "finite_difference_sensitivity",
    "finite_difference_attribute_sensitivity",
]


@dataclass(frozen=True)
class SensitivityResult:
    """Sensitivity of ``Pfail`` to one quantity at a design point.

    Attributes:
        name: the parameter or ``service::attribute`` symbol.
        value: the quantity's value at the design point.
        derivative: ``d Pfail / d name`` at the point.
        elasticity: ``(name / Pfail) * derivative`` — the relative change of
            unreliability per relative change of the quantity; the
            scale-free number to *rank* by (zero when ``Pfail`` or the
            value is zero).
    """

    name: str
    value: float
    derivative: float
    elasticity: float


def _elasticity(value: float, pfail: float, derivative: float) -> float:
    if pfail == 0.0 or value == 0.0:
        return 0.0
    return (value / pfail) * derivative


def parameter_sensitivities(
    assembly: Assembly,
    service: str,
    actuals: Mapping[str, float],
    compile: bool = True,
) -> list[SensitivityResult]:
    """Sensitivity of ``Pfail(service)`` to each formal parameter, ranked by
    absolute elasticity (descending).

    With ``compile`` (the default) the closed form and each gradient are
    differentiated and compiled to numpy kernels once per parameter, ever
    — repeated probes of the same design re-walk nothing.
    """
    evaluator = SymbolicEvaluator(assembly)
    pfail_expr = evaluator.pfail_expression(service)
    env = Environment(dict(actuals))
    formals = assembly.service(service).formal_parameters
    if compile:
        pfail = float(compile_expression(pfail_expr).evaluate(env))
        gradients = gradient_kernels(pfail_expr, formals)
    else:
        pfail = float(pfail_expr.evaluate(env))
        gradients = {n: pfail_expr.differentiate(n) for n in formals}
    results = []
    for name in formals:
        derivative = float(gradients[name].evaluate(env))
        value = float(actuals[name])
        results.append(
            SensitivityResult(name, value, derivative, _elasticity(value, pfail, derivative))
        )
    results.sort(key=lambda r: abs(r.elasticity), reverse=True)
    return results


def attribute_sensitivities(
    assembly: Assembly,
    service: str,
    actuals: Mapping[str, float],
    top: int | None = None,
    compile: bool = True,
) -> list[SensitivityResult]:
    """Sensitivity of ``Pfail(service)`` to every interface attribute in the
    assembly (``service::attribute`` symbols), ranked by absolute
    elasticity.

    This answers the broker's question directly: e.g. in the remote
    assembly of section 4, the network failure rate ``net12::failure_rate``
    dominates for large ``gamma`` — matching the Figure 6 story.
    """
    evaluator = SymbolicEvaluator(assembly, symbolic_attributes=True)
    pfail_expr = evaluator.pfail_expression(service)
    attr_env = attribute_environment(assembly)
    env = Environment({**dict(attr_env), **dict(actuals)})
    symbols = [
        s for s in sorted(pfail_expr.free_parameters()) if "::" in s
    ]  # formal parameters are handled by parameter_sensitivities
    if compile:
        pfail = float(compile_expression(pfail_expr).evaluate(env))
        gradients = gradient_kernels(pfail_expr, symbols)
    else:
        pfail = float(pfail_expr.evaluate(env))
        gradients = {s: pfail_expr.differentiate(s) for s in symbols}
    results = []
    for symbol in symbols:
        derivative = float(gradients[symbol].evaluate(env))
        value = float(env[symbol])
        results.append(
            SensitivityResult(symbol, value, derivative, _elasticity(value, pfail, derivative))
        )
    results.sort(key=lambda r: abs(r.elasticity), reverse=True)
    if top is not None:
        results = results[:top]
    return results


def finite_difference_sensitivity(
    assembly: Assembly,
    service: str,
    actuals: Mapping[str, float],
    parameter: str,
    step: float = 1e-4,
    solver: str = "auto",
    incremental: bool = True,
) -> float:
    """Central finite-difference ``d Pfail / d parameter`` — a
    model-independent cross-check of the symbolic derivatives.

    Domain checks are disabled for the probe points (the half-steps around
    an integer-domain point are intentionally non-integral).  The two
    probe evaluations share chain structure, so with ``incremental`` (the
    default) the second one is served by a low-rank update of the first
    one's factorization (:mod:`repro.markov.updates`).
    """
    evaluator = ReliabilityEvaluator(
        assembly, check_domains=False, solver=solver, incremental=incremental
    )
    value = float(actuals[parameter])
    h = step * max(abs(value), 1.0)
    up = dict(actuals)
    down = dict(actuals)
    up[parameter] = value + h
    down[parameter] = value - h
    return (evaluator.pfail(service, **up) - evaluator.pfail(service, **down)) / (2 * h)


def finite_difference_attribute_sensitivity(
    assembly: Assembly,
    service: str,
    actuals: Mapping[str, float],
    attribute: str,
    step: float = 1e-4,
    solver: str = "auto",
    incremental: bool = True,
) -> float:
    """Central finite-difference ``d Pfail / d (service::attribute)`` by
    re-evaluating *perturbed copies* of the assembly — the numeric
    cross-check of :func:`attribute_sensitivities`.

    Each probe rebuilds the assembly with the published attribute nudged
    by ``±h`` and re-runs the full recursive evaluation.  The perturbed
    copies are structurally identical to each other (same flows, same
    chain sparsity), so with ``incremental`` (the default) the probe
    solves after the first are served by rank-``k`` updates of the cached
    base factorization instead of fresh ones — this is the
    attribute-perturbation fast path the low-rank update layer exists for.
    """
    from repro.dsl import load_assembly
    from repro.dsl.serializer import assembly_to_dict

    service_name, separator, attr = attribute.partition("::")
    if not separator:
        raise EvaluationError(
            f"expected an attribute symbol '<service>::<attribute>', got "
            f"{attribute!r}"
        )
    document = assembly_to_dict(assembly)
    target = next(
        (s for s in document["services"] if s["name"] == service_name), None
    )
    if target is None or attr not in target["interface"]["attributes"]:
        raise EvaluationError(
            f"{attribute!r} is not a published attribute of any service in "
            f"{assembly.name!r}"
        )
    value = float(target["interface"]["attributes"][attr])
    h = step * max(abs(value), 1.0)
    probes = []
    for sign in (1.0, -1.0):
        target["interface"]["attributes"][attr] = value + sign * h
        perturbed = load_assembly(json.dumps(document))
        evaluator = ReliabilityEvaluator(
            perturbed, check_domains=False, solver=solver,
            incremental=incremental,
        )
        probes.append(evaluator.pfail(service, **dict(actuals)))
    return (probes[0] - probes[1]) / (2 * h)
