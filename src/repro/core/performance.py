"""Performance prediction over the same architectural model.

The paper closes with: *"even if our focus is on reliability issues, the
presented ideas can also be extended, with appropriate modifications, to
other QoS aspects (e.g. performance)"* (section 6).  This module is that
extension: the **expected execution time** of a composite service, computed
compositionally from the same analytic interfaces, flows, bindings and
connectors as the reliability prediction — so the reliability/performance
trade-off of an architectural decision (local vs remote in section 4!) can
be read off one model.

Semantics ("appropriate modifications"):

- a **simple service** publishes a deterministic duration expression over
  its formals (``N / speed`` for cpu, ``B / bandwidth`` for net — the
  durations already implicit in eqs. 1/2's exponents); perfect modeling
  connectors cost 0; a simple service with no published duration makes the
  assembly's performance question unanswerable
  (:class:`~repro.errors.EvaluationError`);
- a **request** costs its connector's duration plus its provider's
  (transport and execution serialize);
- a **state** dispatches its requests in parallel; under the abstract
  deterministic-duration model, AND completes at the **max** request
  duration, OR at the **min**, and k-of-n at the k-th smallest —
  completion models reinterpreted on the time axis;
- a **flow** costs the visit-weighted sum of its state durations, with
  expected visits from the *pure usage-profile* chain (performance is
  reported for the functional behavior; failure-truncated executions are
  the reliability evaluator's department — the standard separation in the
  architecture-based QoS literature).
"""

from __future__ import annotations

from repro.errors import CyclicAssemblyError, EvaluationError, ModelError
from repro.markov import AbsorbingChainAnalysis, ChainBuilder
from repro.model.assembly import Assembly
from repro.model.flow import END, START, FlowState, ServiceFlow
from repro.model.service import CompositeService, Service, SimpleService
from repro.model.validation import validate_assembly
from repro.symbolic import Environment

__all__ = ["PerformanceEvaluator"]


class PerformanceEvaluator:
    """Expected-duration evaluation over one (acyclic) assembly.

    Mirrors :class:`~repro.core.evaluator.ReliabilityEvaluator`: same
    recursion over bindings, same memoization, same cycle refusal —
    different metric.

    Args:
        assembly: the service assembly to analyze.
        validate: run structural validation up front.
    """

    def __init__(self, assembly: Assembly, validate: bool = True):
        self.assembly = assembly
        if validate:
            validate_assembly(assembly).raise_if_invalid()
        self._cache: dict[tuple, float] = {}
        self._stack: list[str] = []

    # -- public API ----------------------------------------------------------

    def expected_duration(self, service: str | Service, **actuals: float) -> float:
        """Expected execution time of one invocation of ``service``."""
        svc = service if isinstance(service, Service) else self.assembly.service(service)
        normalized = tuple(
            (name, float(actuals[name])) for name in svc.formal_parameters
            if name in actuals
        )
        missing = [f for f in svc.formal_parameters if f not in actuals]
        if missing:
            raise EvaluationError(
                f"service {svc.name!r}: missing actual parameters {missing}"
            )
        return self._duration(svc, normalized)

    def state_durations(
        self, service: str | Service, **actuals: float
    ) -> dict[str, tuple[float, float]]:
        """Per-state ``(duration, expected visits)`` diagnostics for a
        composite service — where the time goes."""
        svc = service if isinstance(service, Service) else self.assembly.service(service)
        if not isinstance(svc, CompositeService):
            raise EvaluationError(
                f"state_durations() requires a composite service; "
                f"{svc.name!r} is simple"
            )
        env = svc.evaluation_environment(actuals, check=False)
        analysis = _usage_chain_analysis(svc.flow, env)
        out: dict[str, tuple[float, float]] = {}
        self._stack.append(svc.name)
        try:
            for state in svc.flow.states:
                duration = self._state_duration(svc, state, env)
                visits = analysis.expected_visits(START, state.name)
                out[state.name] = (duration, visits)
        finally:
            self._stack.pop()
        return out

    # -- recursion ----------------------------------------------------------

    def _duration(self, service: Service, actuals: tuple) -> float:
        key = (service.name, actuals)
        if key in self._cache:
            return self._cache[key]
        if service.name in self._stack:
            start = self._stack.index(service.name)
            raise CyclicAssemblyError(
                tuple(self._stack[start:]) + (service.name,)
            )
        self._stack.append(service.name)
        try:
            value = self._compute(service, dict(actuals))
        finally:
            self._stack.pop()
        if value < 0.0:
            raise EvaluationError(
                f"negative duration {value} for {service.name!r}"
            )
        self._cache[key] = value
        return value

    def _compute(self, service: Service, actuals: dict) -> float:
        if isinstance(service, SimpleService):
            if service.duration is None:
                raise EvaluationError(
                    f"simple service {service.name!r} publishes no duration; "
                    f"performance analysis needs one (pass duration=... when "
                    f"building the service)"
                )
            env = service.evaluation_environment(actuals, check=False)
            return float(service.duration.evaluate(env))
        if not isinstance(service, CompositeService):
            raise ModelError(f"cannot evaluate service type {type(service)!r}")

        env = service.evaluation_environment(actuals, check=False)
        analysis = _usage_chain_analysis(service.flow, env)
        total = 0.0
        for state in service.flow.states:
            visits = analysis.expected_visits(START, state.name)
            if visits <= 0.0:
                continue
            total += visits * self._state_duration(service, state, env)
        return total

    def _state_duration(
        self, service: CompositeService, state: FlowState, env: Environment
    ) -> float:
        if not state.requests:
            return 0.0
        durations = []
        for request in state.requests:
            resolved = self.assembly.resolve_request(service.name, request)
            callee_actuals = tuple(
                (name, float(request.actuals[name].evaluate(env)))
                for name in resolved.provider.formal_parameters
            )
            duration = self._duration(resolved.provider, callee_actuals)
            if resolved.connector is not None:
                connector_actuals = tuple(
                    (name, float(resolved.connector_actuals[name].evaluate(env)))
                    for name in resolved.connector.formal_parameters
                )
                duration += self._duration(resolved.connector, connector_actuals)
            durations.append(duration)
        # parallel dispatch: the state completes at the k-th fastest request
        k = state.completion.required_successes(len(durations))
        return sorted(durations)[k - 1] if k >= 1 else 0.0


def _usage_chain_analysis(
    flow: ServiceFlow, env: Environment
) -> AbsorbingChainAnalysis:
    """Expected-visit analysis of the *pure* usage profile (no failure
    structure): the functional behavior whose cost is being predicted."""
    flow.check_probabilities(env)
    builder = ChainBuilder()
    builder.add_state(START)
    for state in flow.states:
        builder.add_state(state.name)
    builder.add_state(END)
    for source in [START, *(s.name for s in flow.states)]:
        for transition in flow.outgoing(source):
            probability = float(transition.probability.evaluate(env))
            if probability > 0.0:
                builder.add_edge(source, transition.target, probability)
    return AbsorbingChainAnalysis(builder.build())
