"""The recursive reliability-evaluation procedure of section 3.3.

:class:`ReliabilityEvaluator` implements ``Pfail_Alg(S, fp)``: for a service
``S`` of an assembly with concrete actual parameters,

1. **simple services** (the recursion base) evaluate their published
   closed-form unreliability;
2. **composite services** evaluate, for each flow state, the internal and
   external failure probability of every request — recursively obtaining
   ``Pfail(S_j, ap_j)`` for the bound provider and ``Pfail(C_j, [S_j,
   ap_j])`` for the connector, with actual parameters computed from the
   caller's formals (the parametric composition of section 2) — combines
   them per the state's completion/sharing models (eqs. 4–13), augments the
   flow with the failure structure (Figure 5) and returns
   ``1 - p*(Start, End)`` (eq. 3).

Results are memoized on ``(service, actual parameters)``: a service invoked
many times with the same actuals (e.g. ``cpu1`` throughout the section 4
example) is analyzed once, keeping the procedure polynomial on DAG
assemblies.

Cyclic assemblies are detected (re-entry on a service already on the
evaluation stack) and rejected with :class:`CyclicAssemblyError`, making the
infinite loop the paper warns about impossible; see
:class:`repro.core.fixed_point.FixedPointEvaluator` for the fixed-point
treatment the paper proposes instead.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro import observability as obs
from repro.errors import (
    CyclicAssemblyError,
    EvaluationError,
    ModelError,
    ProbabilityRangeError,
)
from repro.core.failure_structure import augment_with_failures
from repro.core.state_failure import (
    external_failure_probability,
    state_failure_probability,
)
from repro.markov import AbsorbingChainAnalysis
from repro.model.assembly import Assembly
from repro.model.flow import END, START, FlowState
from repro.model.service import CompositeService, Service, SimpleService
from repro.model.validation import validate_assembly
from repro.runtime.budget import EvaluationBudget
from repro.symbolic import Environment

__all__ = ["ReliabilityEvaluator", "StateBreakdown", "EvaluationReport"]

_TOL = 1e-9


class StateBreakdown:
    """Per-state diagnostic record produced by :meth:`ReliabilityEvaluator.report`."""

    def __init__(
        self,
        state: str,
        failure_probability: float,
        request_internal: tuple[float, ...],
        request_external: tuple[float, ...],
        expected_visits: float,
    ):
        self.state = state
        self.failure_probability = failure_probability
        self.request_internal = request_internal
        self.request_external = request_external
        self.expected_visits = expected_visits

    def __repr__(self) -> str:
        return (
            f"StateBreakdown({self.state!r}, p_fail={self.failure_probability:.3e}, "
            f"visits={self.expected_visits:.3f})"
        )


class EvaluationReport:
    """Full diagnostic output for one composite-service evaluation.

    Attributes:
        service: evaluated service name.
        actuals: the actual parameters used.
        pfail: the overall unreliability ``Pfail(S, fp)``.
        states: per-state breakdowns (failure probability, per-request
            internal/external probabilities, expected visit counts from the
            augmented chain — the states that dominate unreliability are the
            architectural hot spots).
    """

    def __init__(
        self,
        service: str,
        actuals: Mapping[str, float],
        pfail: float,
        states: tuple[StateBreakdown, ...],
    ):
        self.service = service
        self.actuals = dict(actuals)
        self.pfail = pfail
        self.states = states

    @property
    def reliability(self) -> float:
        """``1 - Pfail``."""
        return 1.0 - self.pfail

    def dominant_state(self) -> StateBreakdown | None:
        """The state contributing the largest ``visits * p_fail`` mass."""
        if not self.states:
            return None
        return max(
            self.states, key=lambda s: s.expected_visits * s.failure_probability
        )

    def __str__(self) -> str:
        lines = [
            f"service {self.service!r} with {self.actuals}: "
            f"Pfail = {self.pfail:.6e} (R = {self.reliability:.6f})"
        ]
        for s in self.states:
            lines.append(
                f"  state {s.state:20s} p_fail={s.failure_probability:.6e} "
                f"E[visits]={s.expected_visits:.4f}"
            )
        return "\n".join(lines)


class ReliabilityEvaluator:
    """Numeric implementation of ``Pfail_Alg`` over one assembly.

    Args:
        assembly: the service assembly to analyze.
        validate: run structural validation up front (recommended; the
            errors raised later by an invalid assembly are less direct).
        check_domains: verify actual parameters against the declared
            abstract domains on every call (disable for speed inside tight
            sweeps over real-valued interpolations of integer domains).
        budget: optional :class:`~repro.runtime.EvaluationBudget`; the
            evaluator load-sheds with
            :class:`~repro.errors.BudgetExceededError` when the deadline,
            recursion-depth or DTMC-state limits trip.
        solver: linear-solver backend for the absorbing solves —
            ``"auto"`` (default; structure-aware), ``"dense"`` or
            ``"sparse"``; see :mod:`repro.markov.solvers`.
        incremental: serve absorbing solves of structurally repeated
            chains through low-rank (Sherman-Morrison-Woodbury) updates of
            the cached base factorization instead of re-factoring
            (:mod:`repro.markov.updates`) — the what-if fast path for
            sensitivity probes, crossover bisection and architecture
            comparison; results stay within solver tolerance of the full
            solve (automatic fallback otherwise).
    """

    def __init__(
        self,
        assembly: Assembly,
        validate: bool = True,
        check_domains: bool = True,
        budget: EvaluationBudget | None = None,
        solver: str = "auto",
        incremental: bool = False,
    ):
        from repro.markov.solvers import validate_solver

        self.assembly = assembly
        self.check_domains = check_domains
        self.budget = budget
        self.solver = validate_solver(solver)
        self.incremental = bool(incremental)
        #: Absorbing-chain solves performed (cache hits never solve); the
        #: engine-layer cache tests assert re-evaluation costs zero solves.
        self.solve_count = 0
        if validate:
            report = validate_assembly(assembly)
            report.raise_if_invalid()
        self._cache: dict[tuple, float] = {}
        self._stack: list[str] = []

    # -- public API ----------------------------------------------------------

    def pfail(self, service: str | Service, **actuals: float) -> float:
        """``Pfail(S, fp)`` for concrete actual parameters."""
        svc = self._coerce(service)
        with obs.span("evaluator.pfail", service=svc.name):
            return self._pfail_service(svc, self._normalize(svc, actuals))

    def reliability(self, service: str | Service, **actuals: float) -> float:
        """``1 - Pfail(S, fp)``."""
        return 1.0 - self.pfail(service, **actuals)

    def report(self, service: str | Service, **actuals: float) -> EvaluationReport:
        """Evaluate a composite service and return per-state diagnostics."""
        svc = self._coerce(service)
        if not isinstance(svc, CompositeService):
            raise EvaluationError(
                f"report() requires a composite service; {svc.name!r} is simple"
            )
        normalized = self._normalize(svc, actuals)
        self._budget_check()
        env = svc.evaluation_environment(dict(normalized), check=self.check_domains)
        failures: dict[str, float] = {}
        breakdowns: list[StateBreakdown] = []
        self._stack.append(svc.name)
        try:
            for state in svc.flow.states:
                internal, external, masking = self._state_probabilities(
                    svc, state, env
                )
                failures[state.name] = state_failure_probability(
                    state.completion, state.shared, internal, external,
                    masking, groups=state.sharing_groups,
                )
                breakdowns.append(
                    StateBreakdown(
                        state.name,
                        failures[state.name],
                        tuple(internal),
                        tuple(external),
                        expected_visits=float("nan"),  # filled after absorption
                    )
                )
        finally:
            self._stack.pop()
        chain = augment_with_failures(svc.flow, env, failures)
        analysis = self._solve_chain(svc.name, chain)
        for breakdown in breakdowns:
            breakdown.expected_visits = analysis.expected_visits(
                START, breakdown.state
            )
        pfail = 1.0 - analysis.absorption_probability(START, END)
        return EvaluationReport(svc.name, dict(normalized), pfail, tuple(breakdowns))

    def state_probabilities(
        self, service: str | Service, **actuals: float
    ) -> dict[str, tuple[tuple[float, ...], tuple[float, ...]]]:
        """Per-state ``(internal, external)`` request failure probabilities
        of a composite service under concrete actuals.

        This exposes the raw inputs of eqs. (4)-(13) — used by the
        related-work adapters in :mod:`repro.baselines` and by diagnostic
        tooling.
        """
        svc = self._coerce(service)
        if not isinstance(svc, CompositeService):
            raise EvaluationError(
                f"state_probabilities() requires a composite service; "
                f"{svc.name!r} is simple"
            )
        normalized = self._normalize(svc, actuals)
        env = svc.evaluation_environment(dict(normalized), check=self.check_domains)
        out: dict[str, tuple[tuple[float, ...], tuple[float, ...]]] = {}
        self._stack.append(svc.name)
        try:
            for state in svc.flow.states:
                internal, external, _ = self._state_probabilities(svc, state, env)
                out[state.name] = (tuple(internal), tuple(external))
        finally:
            self._stack.pop()
        return out

    def clear_cache(self) -> None:
        """Drop all memoized results (e.g. after mutating the assembly)."""
        self._cache.clear()

    # -- internals ---------------------------------------------------------

    def _coerce(self, service: str | Service) -> Service:
        if isinstance(service, Service):
            return service
        return self.assembly.service(service)

    def _normalize(
        self, service: Service, actuals: Mapping[str, float]
    ) -> tuple[tuple[str, float], ...]:
        """Validate and canonicalize actuals into a hashable memo key part."""
        formals = service.formal_parameters
        missing = [f for f in formals if f not in actuals]
        if missing:
            raise EvaluationError(
                f"service {service.name!r}: missing actual parameters {missing}"
            )
        extra = [a for a in actuals if a not in formals]
        if extra:
            raise EvaluationError(
                f"service {service.name!r}: unknown actual parameters {extra}"
            )
        values = []
        for name in formals:
            value = actuals[name]
            if isinstance(value, np.ndarray):
                raise EvaluationError(
                    "the numeric evaluator takes scalar actuals; use "
                    "repro.analysis.sweep or the symbolic evaluator for "
                    "vectorized sweeps"
                )
            values.append((name, float(value)))
        return tuple(values)

    def _budget_check(self) -> None:
        """Deadline + recursion-depth load shedding (no-op without budget)."""
        if self.budget is not None:
            self.budget.check_deadline("reliability evaluation")
            self.budget.check_depth(
                len(self._stack) + 1, "service-composition recursion"
            )

    def _solve_chain(self, service_name: str, chain) -> AbsorbingChainAnalysis:
        """The guarded absorbing-chain solve, gated on the state budget."""
        if self.budget is not None:
            self.budget.check_states(
                chain.matrix.shape[0], f"absorbing solve for {service_name!r}"
            )
        self.solve_count += 1
        return AbsorbingChainAnalysis(
            chain, solver=self.solver, incremental=self.incremental
        )

    def _pfail_service(self, service: Service, actuals: tuple[tuple[str, float], ...]) -> float:
        self._budget_check()
        key = (service.name, actuals)
        if key in self._cache:
            return self._cache[key]
        if service.name in self._stack:
            start = self._stack.index(service.name)
            return self._handle_cycle(
                key, tuple(self._stack[start:]) + (service.name,)
            )
        self._stack.append(service.name)
        try:
            value = self._compute(service, dict(actuals))
        finally:
            self._stack.pop()
        if not -_TOL <= value <= 1.0 + _TOL:
            raise ProbabilityRangeError(f"Pfail({service.name})", value)
        value = min(max(value, 0.0), 1.0)
        self._cache[key] = value
        return value

    def _handle_cycle(self, key: tuple, cycle: tuple[str, ...]) -> float:
        """Hook invoked on re-entrant evaluation of a service.

        The base evaluator treats a cycle as fatal, exactly where the
        paper's procedure would loop forever.
        :class:`~repro.core.fixed_point.FixedPointEvaluator` overrides this
        to return the current fixed-point estimate instead.
        """
        raise CyclicAssemblyError(cycle)

    def _compute(self, service: Service, actuals: dict[str, float]) -> float:
        # Abstract domains constrain what callers may request of the
        # assembly, so they are enforced on the top-level actuals only;
        # derived actuals (e.g. list * log2(list)) may fall between the
        # representative elements of an integer domain.
        check = self.check_domains and len(self._stack) == 1
        if isinstance(service, SimpleService):
            env = service.evaluation_environment(actuals, check=check)
            return float(service.failure_probability.evaluate(env))
        if not isinstance(service, CompositeService):
            raise ModelError(f"cannot evaluate service of type {type(service)!r}")
        env = service.evaluation_environment(actuals, check=check)
        failures: dict[str, float] = {}
        for state in service.flow.states:
            internal, external, masking = self._state_probabilities(
                service, state, env
            )
            failures[state.name] = state_failure_probability(
                state.completion, state.shared, internal, external,
                masking, groups=state.sharing_groups,
            )
        chain = augment_with_failures(service.flow, env, failures)
        analysis = self._solve_chain(service.name, chain)
        return 1.0 - analysis.absorption_probability(START, END)

    def _state_probabilities(
        self, service: CompositeService, state: FlowState, env: Environment
    ) -> tuple[list[float], list[float], list[float]]:
        """Internal failure, external failure and error-masking
        probabilities for every request of one state, under the caller's
        environment."""
        internal: list[float] = []
        external: list[float] = []
        masking: list[float] = []
        for request in state.requests:
            resolved = self.assembly.resolve_request(service.name, request)
            p_int = float(request.internal_failure.evaluate(env))

            callee_actuals = tuple(
                (name, float(request.actuals[name].evaluate(env)))
                for name in resolved.provider.formal_parameters
            )
            p_service = self._pfail_service(resolved.provider, callee_actuals)

            if resolved.connector is None:
                p_connector = 0.0
            else:
                connector_actuals = tuple(
                    (name, float(resolved.connector_actuals[name].evaluate(env)))
                    for name in resolved.connector.formal_parameters
                )
                p_connector = self._pfail_service(resolved.connector, connector_actuals)

            internal.append(p_int)
            external.append(external_failure_probability(p_service, p_connector))
            masking.append(float(request.masking.evaluate(env)))
        return internal, external, masking
