"""Fixed-point evaluation of recursive (cyclic) service assemblies.

Section 3.3 closes with: *"this recursive evaluation procedure does not work
in the case of a service assembly where some services recursively call each
other ... the assembly reliability should be expressed by a fixed point
equation, for which appropriate evaluation methods should be devised.  In
this work we do not investigate this point."*  This module devises that
method — the paper's stated future work.

Formulation.  Let ``x = (x_1, ..., x_m)`` collect ``Pfail`` for every
(service, actuals) pair touched by the evaluation.  The recursive procedure
defines ``x = F(x)`` where ``F`` re-evaluates each entry using the current
estimates wherever the recursion re-enters a service already on the stack.
Every component of ``F`` is built from the state-failure formulas (products
and convex combinations of probabilities) and absorbing-chain solves, all of
which are **monotone non-decreasing** in the assumed failure probabilities
(a less reliable callee never makes the caller more reliable), and ``F``
maps ``[0, 1]^m`` into itself.  Kleene iteration from ``x = 0`` therefore
produces a non-decreasing, bounded sequence converging to the **least fixed
point** — the standard semantics for recursive reliability equations (mass
that cycles forever is counted as neither success nor failure mass until the
limit resolves it).

:class:`FixedPointEvaluator` implements exactly this: it overrides the
cycle hook of :class:`~repro.core.evaluator.ReliabilityEvaluator` to return
the current estimate, then sweeps until the estimates stabilize.
"""

from __future__ import annotations

from repro.errors import FixedPointDivergenceError
from repro.core.evaluator import ReliabilityEvaluator
from repro.model.assembly import Assembly
from repro.model.service import Service
from repro.runtime.budget import EvaluationBudget

__all__ = ["FixedPointEvaluator"]


class FixedPointEvaluator(ReliabilityEvaluator):
    """Reliability evaluation for assemblies with recursive service calls.

    Behaves exactly like :class:`ReliabilityEvaluator` on acyclic
    assemblies (the first sweep encounters no cycle and converges
    immediately); on cyclic ones it runs Kleene iteration from all-zero
    failure estimates.

    Args:
        assembly: the service assembly (may be cyclic).
        tolerance: convergence threshold on the max absolute change of any
            estimate between sweeps.
        max_iterations: iteration cap; exceeding it raises
            :class:`FixedPointDivergenceError`.
        validate: forwarded to the base evaluator (cyclic assemblies
            validate fine — the cycle is reported only as a warning).
    """

    def __init__(
        self,
        assembly: Assembly,
        tolerance: float = 1e-12,
        max_iterations: int = 10_000,
        validate: bool = True,
        check_domains: bool = True,
        budget: EvaluationBudget | None = None,
        solver: str = "auto",
        incremental: bool = False,
    ):
        super().__init__(
            assembly, validate=validate, check_domains=check_domains,
            budget=budget, solver=solver, incremental=incremental,
        )
        if tolerance <= 0:
            raise FixedPointDivergenceError("tolerance must be positive")
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self._estimates: dict[tuple, float] = {}
        self._assumed: set[tuple] = set()
        self.iterations_used = 0

    # -- hook override ---------------------------------------------------

    def _handle_cycle(self, key: tuple, cycle: tuple[str, ...]) -> float:
        """Return the current fixed-point estimate for a re-entered service
        (0.0 on the first sweep — the Kleene iteration start point)."""
        self._assumed.add(key)
        return self._estimates.get(key, 0.0)

    # -- public API --------------------------------------------------------

    def pfail(self, service: str | Service, **actuals: float) -> float:
        """``Pfail(S, fp)``, solving the fixed-point equation if needed."""
        svc = self._coerce(service)
        normalized = self._normalize(svc, actuals)
        top_key = (svc.name, normalized)

        self._estimates = {}
        previous_top = None
        for iteration in range(1, self.max_iterations + 1):
            if self.budget is not None:
                self.budget.check_deadline("fixed-point iteration")
                self.budget.check_sweeps(iteration, "fixed-point iteration")
            self.iterations_used = iteration
            self._cache.clear()
            self._assumed.clear()
            top_value = self._pfail_service(svc, normalized)
            if not self._assumed:
                # acyclic evaluation: nothing to iterate
                return top_value
            # Next-iteration estimates: everything computed this sweep.
            new_estimates = dict(self._cache)
            new_estimates[top_key] = top_value
            delta = max(
                abs(new_estimates.get(k, 0.0) - self._estimates.get(k, 0.0))
                for k in self._assumed | set(new_estimates)
            )
            if previous_top is not None:
                delta = max(delta, abs(top_value - previous_top))
            self._estimates = new_estimates
            previous_top = top_value
            if delta < self.tolerance:
                return top_value
        raise FixedPointDivergenceError(
            f"fixed-point iteration did not converge within "
            f"{self.max_iterations} sweeps (last Pfail({svc.name}) = "
            f"{previous_top})"
        )
