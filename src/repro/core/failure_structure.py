"""Failure-structure augmentation of a flow (section 3.2, Figure 5).

Under the fail-stop / no-repair assumptions, adding failure behavior to a
usage-profile flow means:

1. add a new ``Fail`` absorbing state;
2. for every internal state ``i`` with failure probability
   ``f = p(i, Fail)``: add a transition ``i -> Fail`` with probability ``f``
   and re-weight every existing outgoing transition by ``(1 - f)``;
3. leave ``Start`` untouched — "we assume that it does not represent any
   real behavior, and hence no failure can occur in it";
4. ``End`` and ``Fail`` are absorbing.

The result is a concrete :class:`~repro.markov.DiscreteTimeMarkovChain` on
which eq. (3) is one absorption query.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import InvalidFlowError, ProbabilityRangeError
from repro.markov import ChainBuilder, DiscreteTimeMarkovChain
from repro.model.flow import END, FAIL, START, ServiceFlow
from repro.symbolic import Environment

__all__ = ["augment_with_failures", "FAIL"]


def augment_with_failures(
    flow: ServiceFlow,
    environment: Environment | Mapping[str, float],
    state_failure_probabilities: Mapping[str, float],
) -> DiscreteTimeMarkovChain:
    """Build the failure-augmented concrete DTMC of a flow.

    Args:
        flow: the parametric usage profile.
        environment: bindings for the flow's formal parameters (and the
            owning service's attributes), used to evaluate transition
            probabilities.
        state_failure_probabilities: ``p(i, Fail)`` per internal state name,
            as computed by :mod:`repro.core.state_failure`.

    Returns:
        A DTMC over ``Start``, the internal states, ``End`` and ``Fail``.

    Raises:
        InvalidFlowError: if probabilities fail to normalize under
            ``environment`` or a failure probability is supplied for an
            unknown state.
        ProbabilityRangeError: if a supplied failure probability is outside
            ``[0, 1]``.
    """
    known = {state.name for state in flow.states}
    unknown = set(state_failure_probabilities) - known
    if unknown:
        raise InvalidFlowError(
            f"failure probabilities supplied for unknown states {sorted(unknown)}"
        )
    missing = known - set(state_failure_probabilities)
    if missing:
        raise InvalidFlowError(
            f"failure probabilities missing for states {sorted(missing)}"
        )

    flow.check_probabilities(environment)

    builder = ChainBuilder()
    # pin a deterministic state order: Start, internal states, End, Fail
    builder.add_state(START)
    for state in flow.states:
        builder.add_state(state.name)
    builder.add_state(END)
    builder.add_state(FAIL)

    for transition in flow.outgoing(START):
        probability = float(transition.probability.evaluate(environment))
        if probability > 0.0:
            builder.add_edge(START, transition.target, probability)

    for state in flow.states:
        fail_probability = float(state_failure_probabilities[state.name])
        if not 0.0 <= fail_probability <= 1.0 + 1e-12:
            raise ProbabilityRangeError(
                f"failure probability of state {state.name!r}", fail_probability
            )
        fail_probability = min(fail_probability, 1.0)
        survive = 1.0 - fail_probability
        for transition in flow.outgoing(state.name):
            probability = float(transition.probability.evaluate(environment))
            if probability > 0.0:
                builder.add_edge(state.name, transition.target, survive * probability)
        if fail_probability > 0.0:
            builder.add_edge(state.name, FAIL, fail_probability)

    # End/Fail get their absorbing self-loops from ChainBuilder's
    # no-outgoing-edges convention.
    return builder.build()
