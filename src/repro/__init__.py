"""repro — architecture-based reliability prediction for service-oriented
computing.

A complete implementation of Vincenzo Grassi, *"Architecture-Based
Reliability Prediction for Service-Oriented Computing"* (Architecting
Dependable Systems III, LNCS 3549, 2005): the unified service/connector
model, parametric analytic interfaces, the per-state failure math under
completion x sharing models, the recursive evaluation procedure
``Pfail_Alg`` with numeric and symbolic back-ends, a fixed-point extension
for recursive assemblies, Monte Carlo cross-validation, related-work
baselines, and analysis tooling (sweeps, crossovers, service selection,
sensitivity).  The :mod:`repro.engine` layer scales all of it: compiled
evaluation plans, a fingerprint-keyed plan cache, and parallel batch /
sweep / simulation / fuzz execution (``--jobs N`` on the CLI).

Quickstart::

    from repro import ReliabilityEvaluator
    from repro.scenarios import local_assembly

    evaluator = ReliabilityEvaluator(local_assembly())
    print(evaluator.reliability("search", elem=1, list=100, res=1))

See README.md for the architecture overview, DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.core import (
    FixedPointEvaluator,
    PerformanceEvaluator,
    ReliabilityEvaluator,
    SymbolicEvaluator,
)
from repro.errors import (
    BudgetExceededError,
    CyclicAssemblyError,
    EvaluationError,
    MarkovError,
    ModelError,
    NumericalInstabilityError,
    ReproError,
    SymbolicError,
)
from repro.engine import (
    BatchEngine,
    BatchRequest,
    EvaluationPlan,
    PlanCache,
    compile_plan,
)
from repro.runtime import EvaluationBudget, EvaluationResult, RobustEvaluator
from repro.model import (
    AND,
    OR,
    AnalyticInterface,
    Assembly,
    CompositeService,
    CpuResource,
    FlowBuilder,
    FormalParameter,
    KOfNCompletion,
    LocalCallConnector,
    NetworkResource,
    RemoteCallConnector,
    ServiceRegistry,
    ServiceRequest,
    SimpleService,
    SoftwareComponent,
    perfect_connector,
    validate_assembly,
)
from repro.symbolic import Environment, Expression, Parameter, parse_expression

__version__ = "1.0.0"

__all__ = [
    "AND",
    "OR",
    "AnalyticInterface",
    "Assembly",
    "BatchEngine",
    "BatchRequest",
    "BudgetExceededError",
    "CompositeService",
    "CpuResource",
    "CyclicAssemblyError",
    "Environment",
    "EvaluationBudget",
    "EvaluationError",
    "EvaluationPlan",
    "EvaluationResult",
    "Expression",
    "FixedPointEvaluator",
    "FlowBuilder",
    "FormalParameter",
    "KOfNCompletion",
    "MarkovError",
    "ModelError",
    "NetworkResource",
    "NumericalInstabilityError",
    "Parameter",
    "PerformanceEvaluator",
    "PlanCache",
    "ReliabilityEvaluator",
    "RemoteCallConnector",
    "ReproError",
    "RobustEvaluator",
    "ServiceRegistry",
    "ServiceRequest",
    "SimpleService",
    "SoftwareComponent",
    "SymbolicError",
    "SymbolicEvaluator",
    "compile_plan",
    "parse_expression",
    "perfect_connector",
    "validate_assembly",
    "__version__",
]
