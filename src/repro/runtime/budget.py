"""Evaluation budgets: bounded work for every evaluation path.

The paper's methodology is meant to run *unattended* — inside discovery,
selection and redeployment loops (section 5) — which means a pathological
model must never hang or exhaust the host.  :class:`EvaluationBudget`
expresses the resource envelope of one prediction request:

- ``deadline``       — wall-clock seconds from the start of the request;
- ``max_states``     — largest absorbing DTMC the engine may solve;
- ``max_depth``      — deepest service-composition recursion allowed;
- ``max_sweeps``     — Kleene-iteration cap for fixed-point evaluation;
- ``max_trials``     — Monte Carlo trial cap for simulation estimates.

Every evaluator accepts an optional budget and *load-sheds* by raising
:class:`~repro.errors.BudgetExceededError` the moment a limit trips —
a typed, catchable signal rather than an unbounded stall.  A budget is
shared state: handing the same instance to the tiers of a
:class:`~repro.runtime.robust.RobustEvaluator` makes the deadline and the
consumption counters span the whole degradation chain.

The clock starts lazily on first use (or explicitly via :meth:`start`), so
a budget built up front does not burn its deadline while the model loads.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro import observability as obs
from repro.errors import BudgetExceededError

__all__ = ["EvaluationBudget"]


@dataclass
class EvaluationBudget:
    """A resource envelope for one evaluation request.

    All limits are optional; ``None`` means unlimited.  Instances are
    mutable consumption trackers — share one instance across evaluators to
    enforce a joint envelope, or call :meth:`reset` to reuse it for a new
    request.

    Args:
        deadline: wall-clock seconds allowed from :meth:`start` (lazy on
            first check).  ``0`` means "already expired" — useful to probe
            load-shedding paths.
        max_states: largest transient-state count the absorbing-chain
            solver may factor.
        max_depth: maximum recursive composition depth (service stack).
        max_sweeps: maximum fixed-point sweeps.
        max_trials: maximum Monte Carlo trials.
    """

    deadline: float | None = None
    max_states: int | None = None
    max_depth: int | None = None
    max_sweeps: int | None = None
    max_trials: int | None = None

    _started: float | None = field(default=None, repr=False, compare=False)
    _trials_used: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        for name in ("deadline", "max_states", "max_depth", "max_sweeps",
                     "max_trials"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, got {value!r}")

    #: The limit names a request document may set (see :meth:`from_dict`).
    LIMIT_NAMES = ("deadline", "max_states", "max_depth", "max_sweeps",
                   "max_trials")

    @classmethod
    def from_dict(cls, data: "Mapping[str, float] | None") -> "EvaluationBudget | None":
        """A budget from a plain mapping (the server's JSON ``budget`` field).

        ``None`` or an empty mapping mean "no limits requested" and return
        ``None`` — the caller's unlimited default.  Unknown keys raise
        :class:`ValueError` (callers at trust boundaries should validate
        the shape first and surface a typed request error instead).
        """
        if not data:
            return None
        unknown = sorted(set(data) - set(cls.LIMIT_NAMES))
        if unknown:
            raise ValueError(
                f"unknown budget limit(s) {unknown!r}; "
                f"expected a subset of {list(cls.LIMIT_NAMES)!r}"
            )
        limits = {name: data[name] for name in cls.LIMIT_NAMES if name in data}
        for name in ("max_states", "max_depth", "max_sweeps", "max_trials"):
            if name in limits:
                limits[name] = int(limits[name])
        if "deadline" in limits:
            limits["deadline"] = float(limits["deadline"])
        return cls(**limits)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "EvaluationBudget":
        """Start the deadline clock if not already running (idempotent)."""
        if self._started is None:
            self._started = time.monotonic()
        return self

    def reset(self) -> "EvaluationBudget":
        """Clear the clock and all consumption counters for reuse."""
        self._started = None
        self._trials_used = 0
        return self

    # -- introspection -----------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since the clock started (0.0 if it has not)."""
        if self._started is None:
            return 0.0
        return time.monotonic() - self._started

    def remaining_time(self) -> float:
        """Seconds left before the deadline (``inf`` when unlimited)."""
        if self.deadline is None:
            return float("inf")
        self.start()
        return self.deadline - self.elapsed()

    def expired(self) -> bool:
        """True when the deadline has passed."""
        return self.remaining_time() <= 0.0

    def sub_deadline(self, cap: float | None = None) -> float | None:
        """The deadline for one sub-task, given an optional per-task cap.

        The campaign layer (:mod:`repro.workunits`) hands every work unit
        its own wall-clock timeout; a unit must also never outlive the
        campaign's overall budget.  Returns the smaller of ``cap`` and the
        remaining budget time (floored at 0.0), or ``None`` when both are
        unlimited.
        """
        remaining = self.remaining_time()
        if remaining == float("inf"):
            return cap
        remaining = max(remaining, 0.0)
        return remaining if cap is None else min(cap, remaining)

    @property
    def trials_used(self) -> int:
        """Monte Carlo trials charged so far."""
        return self._trials_used

    # -- enforcement -------------------------------------------------------

    def check_deadline(self, what: str = "") -> None:
        """Raise :class:`BudgetExceededError` when past the deadline."""
        if self.deadline is None:
            return
        self.start()
        elapsed = self.elapsed()
        obs.gauge("budget.deadline_consumed", elapsed / self.deadline
                  if self.deadline else 1.0)
        if elapsed >= self.deadline:
            obs.count("budget.exhausted.deadline")
            raise BudgetExceededError("deadline", self.deadline, elapsed, what)

    def check_states(self, count: int, what: str = "") -> None:
        """Gate an absorbing-chain solve on ``count`` transient states."""
        if self.max_states is not None and count > self.max_states:
            obs.count("budget.exhausted.states")
            raise BudgetExceededError("states", self.max_states, count, what)

    def check_depth(self, depth: int, what: str = "") -> None:
        """Gate recursive descent at composition depth ``depth``."""
        if self.max_depth is not None and depth > self.max_depth:
            obs.count("budget.exhausted.depth")
            raise BudgetExceededError("depth", self.max_depth, depth, what)

    def check_sweeps(self, sweep: int, what: str = "") -> None:
        """Gate fixed-point sweep number ``sweep`` (1-based)."""
        if self.max_sweeps is not None and sweep > self.max_sweeps:
            obs.count("budget.exhausted.sweeps")
            raise BudgetExceededError("sweeps", self.max_sweeps, sweep, what)

    def charge_trials(self, count: int, what: str = "") -> None:
        """Charge ``count`` Monte Carlo trials against the cumulative cap."""
        if self.max_trials is not None and (
            self._trials_used + count > self.max_trials
        ):
            obs.count("budget.exhausted.trials")
            raise BudgetExceededError(
                "trials", self.max_trials, self._trials_used + count, what
            )
        self._trials_used += count
        obs.gauge("budget.trials_used", self._trials_used)

    def effective_sweeps(self, default: int) -> int:
        """The sweep cap to use given an evaluator default."""
        if self.max_sweeps is None:
            return default
        return min(default, self.max_sweeps)

    def effective_trials(self, requested: int) -> int:
        """The trial count to run given a caller request (no raise; the
        caller decides whether shedding trials is acceptable)."""
        if self.max_trials is None:
            return requested
        return min(requested, max(self.max_trials - self._trials_used, 0))
