"""Numerical guards: detect garbage before it becomes a prediction.

The analytic engine is a pipeline of floating-point computations — attribute
expressions, state-failure combinators, an absorbing-chain linear solve.  A
corrupted model (NaN attribute, unnormalized transition row) or an
ill-conditioned ``(I - Q)`` system does not necessarily raise; unguarded, it
yields a *plausible-looking wrong number*, the worst failure mode a
prediction service can have.  These helpers turn silent contamination into
typed :class:`~repro.errors.NumericalInstabilityError` /
:class:`~repro.errors.ProbabilityRangeError` signals.

Tolerances follow the rest of the library: drift up to ``CLAMP_TOL`` beyond
``[0, 1]`` is attributed to round-off and clamped; anything larger is
evidence of a broken model or an untrustworthy solve and raises.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import NumericalInstabilityError, ProbabilityRangeError

__all__ = [
    "CLAMP_TOL",
    "MAX_CONDITION",
    "RESIDUAL_TOL",
    "check_finite",
    "check_finite_array",
    "check_probability",
    "check_unit_interval_array",
    "solve_guarded",
]

#: Drift beyond [0, 1] attributed to round-off and silently clamped.
CLAMP_TOL = 1e-9

#: 1-norm condition estimate beyond which a solve is deemed untrustworthy.
MAX_CONDITION = 1e12

#: Relative residual (infinity norm) beyond which a solution is rejected.
RESIDUAL_TOL = 1e-8


def check_finite(what: str, value: float) -> float:
    """Return ``value`` if finite, else raise ``NumericalInstabilityError``."""
    value = float(value)
    if not math.isfinite(value):
        raise NumericalInstabilityError(f"{what} is not finite: {value!r}")
    return value


def check_finite_array(what: str, array: np.ndarray) -> np.ndarray:
    """Raise ``NumericalInstabilityError`` when ``array`` holds NaN/Inf."""
    if not np.all(np.isfinite(array)):
        bad = int(np.size(array) - np.count_nonzero(np.isfinite(array)))
        raise NumericalInstabilityError(
            f"{what} contains {bad} non-finite entries"
        )
    return array


def check_probability(what: str, value: float, tol: float = CLAMP_TOL) -> float:
    """Validate a scalar probability: finite, within ``[0, 1]`` up to
    ``tol`` drift (clamped), typed errors otherwise."""
    value = check_finite(what, value)
    if value < -tol or value > 1.0 + tol:
        raise ProbabilityRangeError(what, value)
    return min(max(value, 0.0), 1.0)


def check_unit_interval_array(
    what: str, array: np.ndarray, tol: float = CLAMP_TOL
) -> np.ndarray:
    """Vector form of :func:`check_probability`; returns the clamped array."""
    check_finite_array(what, array)
    low = float(np.min(array, initial=0.0))
    high = float(np.max(array, initial=1.0))
    if low < -tol or high > 1.0 + tol:
        worst = low if -low > high - 1.0 else high
        raise ProbabilityRangeError(what, worst)
    return np.clip(array, 0.0, 1.0)


def solve_guarded(
    system: np.ndarray,
    rhs: np.ndarray,
    what: str = "linear system",
    max_condition: float = MAX_CONDITION,
    residual_tol: float = RESIDUAL_TOL,
) -> np.ndarray:
    """``numpy.linalg.solve`` with instability detection.

    Checks, in order: finite inputs; non-singular factorization; a 1-norm
    condition estimate below ``max_condition``; a relative residual
    ``||A x - b|| / max(||b||, 1)`` below ``residual_tol``.  Any violation
    raises :class:`NumericalInstabilityError` instead of returning a
    solution that merely *looks* like probabilities.
    """
    check_finite_array(f"{what}: matrix", system)
    check_finite_array(f"{what}: right-hand side", rhs)
    try:
        solution = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError as exc:
        raise NumericalInstabilityError(f"{what} is singular: {exc}") from exc
    if not np.all(np.isfinite(solution)):
        raise NumericalInstabilityError(f"{what}: solution is not finite")
    # Cheap conditioning estimate: ||A||_1 * ||A^-1||_1 via one extra solve
    # of the identity would be O(n^3) again, so bound it with the residual
    # plus an explicit 1-norm condition number only for small systems.
    if system.shape[0] <= 512:
        try:
            condition = float(np.linalg.cond(system, 1))
        except np.linalg.LinAlgError:  # pragma: no cover - defensive
            condition = float("inf")
        if not math.isfinite(condition) or condition > max_condition:
            raise NumericalInstabilityError(
                f"{what} is ill-conditioned", condition=condition
            )
    residual = float(np.max(np.abs(system @ solution - rhs), initial=0.0))
    scale = max(float(np.max(np.abs(rhs), initial=0.0)), 1.0)
    if residual / scale > residual_tol:
        raise NumericalInstabilityError(
            f"{what}: residual check failed",
            residual=residual, scale=scale,
        )
    return solution
