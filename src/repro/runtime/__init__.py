"""Hardened evaluation runtime: budgets, numerical guards, degradation.

The serving-stack layer the ROADMAP's production north star requires:

- :mod:`repro.runtime.budget` — :class:`EvaluationBudget`, the resource
  envelope (deadline, states, depth, sweeps, trials) every evaluator
  honors by raising :class:`~repro.errors.BudgetExceededError`;
- :mod:`repro.runtime.guards` — numerical guards that turn silent
  floating-point garbage into typed
  :class:`~repro.errors.NumericalInstabilityError`;
- :mod:`repro.runtime.robust` — :class:`RobustEvaluator`, the graceful
  degradation chain (symbolic → numeric → fixed-point → Monte Carlo) with
  provenance-carrying :class:`EvaluationResult`.
"""

from repro.runtime.budget import EvaluationBudget
from repro.runtime.guards import (
    check_finite,
    check_finite_array,
    check_probability,
    check_unit_interval_array,
    solve_guarded,
)
from repro.runtime.robust import (
    DEFAULT_TIERS,
    EvaluationResult,
    RobustEvaluator,
    TierDiagnostic,
)

__all__ = [
    "DEFAULT_TIERS",
    "EvaluationBudget",
    "EvaluationResult",
    "RobustEvaluator",
    "TierDiagnostic",
    "check_finite",
    "check_finite_array",
    "check_probability",
    "check_unit_interval_array",
    "solve_guarded",
]
