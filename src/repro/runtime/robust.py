"""Graceful degradation: the hardened front door of the prediction engine.

A production prediction service must return *an* answer whenever one is
honestly computable, and a typed refusal otherwise — never a hang, never a
traceback, never a silently wrong number.  :class:`RobustEvaluator` wraps
the four evaluation back-ends of the library into a fallback chain, ordered
from most exact/cheapest-to-reuse to most tolerant:

1. ``symbolic``     — closed-form derivation, evaluated at the actuals;
2. ``numeric``      — the recursive procedure with direct linear solves;
3. ``fixed-point``  — Kleene iteration (handles recursive assemblies and
   retries with relaxed tolerance on non-convergence);
4. ``monte-carlo``  — simulation estimate with a Wilson confidence
   interval, retried under fresh seeds on failure.

Each tier runs under the shared :class:`~repro.runtime.EvaluationBudget`;
a tier that fails contributes a :class:`TierDiagnostic` (typed error +
elapsed time) and the chain falls through.  The returned
:class:`EvaluationResult` always names the tier that produced the number
and carries the diagnostics of every tier that did not — the
degraded-but-honest contract.  When every tier fails, the chain raises
:class:`~repro.errors.AllTiersFailedError`, itself a
:class:`~repro.errors.ReproError`.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro import observability as obs
from repro.errors import (
    AllTiersFailedError,
    BudgetExceededError,
    EvaluationError,
    FixedPointDivergenceError,
    ModelError,
    ReproError,
)
from repro.runtime.budget import EvaluationBudget
from repro.runtime.guards import check_probability
from repro.model.assembly import Assembly
from repro.model.service import Service
from repro.model.validation import validate_assembly
from repro.symbolic import Environment

__all__ = ["EvaluationResult", "RobustEvaluator", "TierDiagnostic"]

#: The default degradation order.
DEFAULT_TIERS = ("symbolic", "numeric", "fixed-point", "monte-carlo")


class TierDiagnostic:
    """Record of one failed tier: which, why (typed), and how long it ran."""

    def __init__(self, tier: str, error: ReproError, elapsed: float, attempts: int = 1):
        self.tier = tier
        self.error = error
        self.elapsed = elapsed
        self.attempts = attempts

    def __repr__(self) -> str:
        return (
            f"TierDiagnostic({self.tier!r}, {type(self.error).__name__}: "
            f"{self.error}, {self.elapsed:.3f}s, attempts={self.attempts})"
        )


class EvaluationResult:
    """The answer of a degradation chain, with provenance.

    Attributes:
        service: evaluated service name.
        actuals: the actual parameters used.
        pfail: the predicted unreliability.
        tier: which tier produced it (``"symbolic"``, ``"numeric"``,
            ``"fixed-point"`` or ``"monte-carlo"``).
        exact: True for analytic tiers, False for the Monte Carlo estimate.
        confidence_interval: 95% Wilson interval for Monte Carlo results,
            the degenerate ``(pfail, pfail)`` for exact tiers.
        standard_error: binomial standard error (0.0 for exact tiers).
        trials: Monte Carlo trials actually run (None for exact tiers).
        diagnostics: one :class:`TierDiagnostic` per tier that failed
            before this one succeeded.
    """

    def __init__(
        self,
        service: str,
        actuals: dict[str, float],
        pfail: float,
        tier: str,
        diagnostics: tuple[TierDiagnostic, ...],
        confidence_interval: tuple[float, float] | None = None,
        standard_error: float = 0.0,
        trials: int | None = None,
        elapsed: float = 0.0,
    ):
        self.service = service
        self.actuals = dict(actuals)
        self.pfail = pfail
        self.tier = tier
        self.exact = trials is None
        self.confidence_interval = (
            confidence_interval if confidence_interval is not None
            else (pfail, pfail)
        )
        self.standard_error = standard_error
        self.trials = trials
        self.diagnostics = diagnostics
        self.elapsed = elapsed

    @property
    def reliability(self) -> float:
        """``1 - pfail``."""
        return 1.0 - self.pfail

    @property
    def degraded(self) -> bool:
        """True when at least one earlier tier failed."""
        return bool(self.diagnostics)

    def __repr__(self) -> str:
        return (
            f"EvaluationResult({self.service!r}, pfail={self.pfail:.6e}, "
            f"tier={self.tier!r}, degraded={self.degraded})"
        )

    def __str__(self) -> str:
        lines = [
            f"Pfail({self.service}) = {self.pfail:.6e} via {self.tier} tier"
        ]
        if not self.exact:
            low, high = self.confidence_interval
            lines.append(
                f"  95% interval [{low:.6e}, {high:.6e}] "
                f"over {self.trials} trials"
            )
        for diag in self.diagnostics:
            lines.append(
                f"  degraded past {diag.tier}: "
                f"{type(diag.error).__name__}: {diag.error}"
            )
        return "\n".join(lines)


class RobustEvaluator:
    """Hardened evaluation with graceful degradation.

    Args:
        assembly: the service assembly to analyze (validated once, up
            front, with typed errors).
        budget: shared resource envelope for the whole chain; ``None``
            means unlimited.
        tiers: degradation order — a subsequence of
            ``("symbolic", "numeric", "fixed-point", "monte-carlo")``.
        trials: Monte Carlo trials for the estimation tier (shed down to
            the budget's remaining trial allowance).
        seed: base seed for the Monte Carlo tier; retries reseed from it.
        retries: extra attempts for the retrying tiers (fixed-point
            tolerance relaxation, Monte Carlo reseeding).
        validate: validate the assembly up front (recommended).
        solver: linear-solver backend for the numeric/fixed-point tiers
            (``"auto"``, ``"dense"`` or ``"sparse"``; see
            :mod:`repro.markov.solvers`).
        incremental: serve repeated-structure absorbing solves in the
            numeric/fixed-point tiers through low-rank factorization
            updates (:mod:`repro.markov.updates`).
    """

    def __init__(
        self,
        assembly: Assembly,
        budget: EvaluationBudget | None = None,
        tiers: Sequence[str] = DEFAULT_TIERS,
        trials: int = 20_000,
        seed: int = 0,
        retries: int = 2,
        validate: bool = True,
        solver: str = "auto",
        incremental: bool = False,
    ):
        from repro.markov.solvers import validate_solver

        unknown = [t for t in tiers if t not in DEFAULT_TIERS]
        if unknown:
            raise EvaluationError(f"unknown evaluation tiers {unknown}")
        self.assembly = assembly
        self.budget = budget if budget is not None else EvaluationBudget()
        self.tiers = tuple(tiers)
        self.trials = int(trials)
        self.seed = int(seed)
        self.retries = int(retries)
        self.solver = validate_solver(solver)
        self.incremental = bool(incremental)
        if validate:
            try:
                validate_assembly(assembly).raise_if_invalid()
            except ReproError:
                raise
            except Exception as exc:  # defensive: validation must be typed
                raise ModelError(
                    f"assembly validation crashed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
        self._symbolic_evaluator = None
        self._numeric_evaluator = None

    # -- public API --------------------------------------------------------

    def evaluate(self, service: str | Service, **actuals: float) -> EvaluationResult:
        """Run the degradation chain; always an :class:`EvaluationResult`
        or a :class:`~repro.errors.ReproError`."""
        name = service.name if isinstance(service, Service) else str(service)
        started = time.monotonic()
        self.budget.start()
        diagnostics: list[TierDiagnostic] = []
        runners = {
            "symbolic": self._tier_symbolic,
            "numeric": self._tier_numeric,
            "fixed-point": self._tier_fixed_point,
            "monte-carlo": self._tier_monte_carlo,
        }
        obs.count("robust.evaluations")
        with obs.span("robust.evaluate", service=name) as chain_span:
            for tier in self.tiers:
                self.budget.check_deadline(f"{tier} tier")
                tier_started = time.monotonic()
                with obs.span("robust.tier", tier=tier) as tier_span:
                    try:
                        result = runners[tier](name, actuals)
                    except BudgetExceededError as exc:
                        tier_span.set_tag(outcome=type(exc).__name__)
                        obs.count(f"robust.tier.{tier}.failed")
                        if exc.resource == "deadline":
                            raise  # no lower tier can beat an expired clock
                        diagnostics.append(
                            TierDiagnostic(
                                tier, exc, time.monotonic() - tier_started
                            )
                        )
                        continue
                    except ReproError as exc:
                        tier_span.set_tag(outcome=type(exc).__name__)
                        obs.count(f"robust.tier.{tier}.failed")
                        diagnostics.append(
                            TierDiagnostic(
                                tier, exc, time.monotonic() - tier_started
                            )
                        )
                        continue
                    except Exception as exc:
                        # The contract: the chain never leaks an untyped
                        # exception.
                        tier_span.set_tag(outcome=type(exc).__name__)
                        obs.count(f"robust.tier.{tier}.failed")
                        wrapped = EvaluationError(
                            f"{tier} tier crashed: {type(exc).__name__}: {exc}"
                        )
                        wrapped.__cause__ = exc
                        diagnostics.append(
                            TierDiagnostic(
                                tier, wrapped, time.monotonic() - tier_started
                            )
                        )
                        continue
                    tier_span.set_tag(outcome="served")
                pfail, interval, stderr, trials = result
                obs.count(f"robust.tier.{tier}.served")
                if diagnostics:
                    obs.count("robust.degraded")
                chain_span.set_tag(tier=tier, degraded=bool(diagnostics))
                return EvaluationResult(
                    name, dict(actuals), pfail, tier, tuple(diagnostics),
                    confidence_interval=interval, standard_error=stderr,
                    trials=trials, elapsed=time.monotonic() - started,
                )
            obs.count("robust.all_tiers_failed")
            chain_span.set_tag(outcome="all-tiers-failed")
            raise AllTiersFailedError(name, diagnostics)

    def pfail(self, service: str | Service, **actuals: float) -> float:
        """``Pfail`` through the degradation chain."""
        return self.evaluate(service, **actuals).pfail

    def reliability(self, service: str | Service, **actuals: float) -> float:
        """``1 - Pfail`` through the degradation chain."""
        return 1.0 - self.pfail(service, **actuals)

    # -- tiers -------------------------------------------------------------

    def _tier_symbolic(self, service: str, actuals: dict[str, float]):
        from repro.core.symbolic_evaluator import SymbolicEvaluator

        if self._symbolic_evaluator is None:
            self._symbolic_evaluator = SymbolicEvaluator(
                self.assembly, validate=False, budget=self.budget
            )
        else:
            # pooled plans swap budgets between calls; the cached tier
            # must charge the current one, not the budget it was born with
            self._symbolic_evaluator.budget = self.budget
        expression = self._symbolic_evaluator.pfail_expression(service)
        value = float(
            expression.evaluate(Environment({k: float(v) for k, v in actuals.items()}))
        )
        return check_probability(f"Pfail({service})", value), None, 0.0, None

    def _tier_numeric(self, service: str, actuals: dict[str, float]):
        from repro.core.evaluator import ReliabilityEvaluator

        if self._numeric_evaluator is None:
            self._numeric_evaluator = ReliabilityEvaluator(
                self.assembly, validate=False, budget=self.budget,
                solver=self.solver, incremental=self.incremental,
            )
        else:
            self._numeric_evaluator.budget = self.budget
        value = self._numeric_evaluator.pfail(service, **actuals)
        return check_probability(f"Pfail({service})", value), None, 0.0, None

    def _tier_fixed_point(self, service: str, actuals: dict[str, float]):
        from repro.core.fixed_point import FixedPointEvaluator

        tolerance = 1e-12
        last: ReproError | None = None
        for _ in range(self.retries + 1):
            evaluator = FixedPointEvaluator(
                self.assembly, tolerance=tolerance, validate=False,
                budget=self.budget, solver=self.solver,
                incremental=self.incremental,
            )
            try:
                value = evaluator.pfail(service, **actuals)
            except FixedPointDivergenceError as exc:
                # retry-and-relax backoff on non-convergence
                last = exc
                tolerance *= 1e3
                continue
            return check_probability(f"Pfail({service})", value), None, 0.0, None
        raise last if last is not None else EvaluationError(
            "fixed-point tier exhausted retries"
        )

    def _tier_monte_carlo(self, service: str, actuals: dict[str, float]):
        from repro.simulation.engine import MonteCarloSimulator

        trials = self.budget.effective_trials(self.trials)
        if trials <= 0:
            raise BudgetExceededError(
                "trials", self.budget.max_trials or 0,
                self.budget.trials_used, "monte-carlo tier",
            )
        last: ReproError | None = None
        for attempt in range(self.retries + 1):
            simulator = MonteCarloSimulator(
                self.assembly, seed=self.seed + attempt, validate=False,
                budget=self.budget,
            )
            try:
                result = simulator.estimate_pfail(service, trials, **actuals)
            except BudgetExceededError:
                raise
            except ReproError as exc:
                last = exc  # reseed and retry: distinct sample path
                continue
            low, high = result.confidence_interval()
            return (
                check_probability(f"Pfail({service})", result.pfail),
                (low, high), result.standard_error, result.trials,
            )
        raise last if last is not None else EvaluationError(
            "monte-carlo tier exhausted retries"
        )
