"""Machine-processable analytic-interface descriptions (JSON schema
``repro/1``) — the section 5 embedding of the paper's interface elements
into a service-description language."""

from repro.dsl.loader import assembly_from_dict, load_assembly, service_from_dict
from repro.dsl.serializer import (
    SCHEMA_VERSION,
    assembly_to_dict,
    dump_assembly,
    service_to_dict,
)

__all__ = [
    "SCHEMA_VERSION",
    "assembly_from_dict",
    "assembly_to_dict",
    "dump_assembly",
    "load_assembly",
    "service_from_dict",
    "service_to_dict",
]
