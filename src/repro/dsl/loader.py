"""Deserialization of models from the ``repro/1`` JSON schema.

Inverse of :mod:`repro.dsl.serializer`.  Expression fields accept either
the AST-dictionary form or a plain string (parsed with
:func:`repro.symbolic.parse_expression`), so hand-written model files stay
readable::

    {"target": "cpu", "actuals": {"N": "list * log2(list)"}, ...}
"""

from __future__ import annotations

import json

from repro.errors import ModelError, ReproError
from repro.model.assembly import Assembly
from repro.model.completion import AND, OR, CompletionModel, KOfNCompletion
from repro.model.connector import CompositeConnector, SimpleConnector
from repro.model.flow import FlowState, FlowTransition, ServiceFlow
from repro.model.parameters import (
    FiniteDomain,
    FormalParameter,
    IntegerDomain,
    ParameterDomain,
    RealDomain,
)
from repro.model.requests import ServiceRequest
from repro.model.service import (
    AnalyticInterface,
    CompositeService,
    Service,
    SimpleService,
)
from repro.symbolic import Expression, parse_expression

__all__ = ["service_from_dict", "assembly_from_dict", "load_assembly"]


def _expression(data) -> Expression:
    if isinstance(data, str):
        return parse_expression(data)
    if isinstance(data, (int, float)) and not isinstance(data, bool):
        from repro.symbolic import Constant

        return Constant(float(data))
    if isinstance(data, dict):
        return Expression.from_dict(data)
    raise ModelError(f"cannot interpret {data!r} as an expression")


def _bound(value, default: float) -> float:
    return default if value is None else float(value)


def _domain_from_dict(data: dict) -> ParameterDomain:
    kind = data.get("kind")
    if kind == "integer":
        return IntegerDomain(
            low=int(_bound(data.get("low"), 0)),
            high=_bound(data.get("high"), float("inf")),
        )
    if kind == "real":
        return RealDomain(
            low=_bound(data.get("low"), float("-inf")),
            high=_bound(data.get("high"), float("inf")),
        )
    if kind == "finite":
        return FiniteDomain(tuple(data["values"]))
    raise ModelError(f"unknown domain kind {kind!r}")


def _completion_from_dict(data: dict) -> CompletionModel:
    kind = data.get("kind")
    if kind == "and":
        return AND
    if kind == "or":
        return OR
    if kind == "k_of_n":
        return KOfNCompletion(int(data["k"]))
    raise ModelError(f"unknown completion kind {kind!r}")


def _interface_from_dict(data: dict) -> AnalyticInterface:
    parameters = tuple(
        FormalParameter(
            p["name"],
            domain=_domain_from_dict(p.get("domain", {"kind": "integer", "low": 0})),
            direction=p.get("direction", "in"),
            description=p.get("description", ""),
        )
        for p in data.get("parameters", ())
    )
    return AnalyticInterface(
        formal_parameters=parameters,
        attributes=data.get("attributes", {}),
        description=data.get("description", ""),
    )


def _flow_from_dict(data: dict) -> ServiceFlow:
    states = []
    for s in data.get("states", ()):
        requests = []
        for r in s.get("requests", ()):
            connector_actuals = r.get("connector_actuals")
            requests.append(
                ServiceRequest(
                    r["target"],
                    actuals={k: _expression(v) for k, v in r.get("actuals", {}).items()},
                    internal_failure=_expression(r.get("internal_failure", 0)),
                    masking=_expression(r.get("masking", 0)),
                    connector_actuals=(
                        None
                        if connector_actuals is None
                        else {k: _expression(v) for k, v in connector_actuals.items()}
                    ),
                    label=r.get("label", ""),
                )
            )
        raw_groups = s.get("sharing_groups")
        states.append(
            FlowState(
                s["name"],
                tuple(requests),
                completion=_completion_from_dict(s.get("completion", {"kind": "and"})),
                shared=bool(s.get("shared", False)),
                sharing_groups=(
                    None
                    if raw_groups is None
                    else tuple(tuple(int(i) for i in g) for g in raw_groups)
                ),
            )
        )
    transitions = [
        FlowTransition(t["source"], t["target"], _expression(t["probability"]))
        for t in data.get("transitions", ())
    ]
    return ServiceFlow(tuple(data.get("formals", ())), states, transitions)


def service_from_dict(data: dict) -> Service:
    """Rebuild one service from its serialized form."""
    if not isinstance(data, dict):
        raise ModelError(f"service entry must be an object, got {type(data).__name__}")
    kind = data.get("kind")
    if "name" not in data:
        raise ModelError("service entry is missing the 'name' field")
    name = data["name"]
    interface = _interface_from_dict(data.get("interface", {}))
    is_connector = bool(data.get("connector", False))
    if kind == "simple":
        cls = SimpleConnector if is_connector else SimpleService
        raw_duration = data.get("duration")
        return cls(
            name, interface, _expression(data.get("failure_probability", 0)),
            duration=None if raw_duration is None else _expression(raw_duration),
        )
    if kind == "composite":
        cls = CompositeConnector if is_connector else CompositeService
        return cls(name, interface, _flow_from_dict(data["flow"]))
    raise ModelError(f"unknown service kind {kind!r}")


def assembly_from_dict(data: dict) -> Assembly:
    """Rebuild a whole assembly from its serialized form.

    Structural problems in the input — wrong types, missing required
    fields — surface as :class:`~repro.errors.ModelError`, never as raw
    ``KeyError``/``TypeError`` tracebacks: the loader is an API boundary
    fed by untrusted files.
    """
    if not isinstance(data, dict):
        raise ModelError(
            f"assembly document must be a JSON object, "
            f"got {type(data).__name__}"
        )
    try:
        assembly = Assembly(data.get("name", "assembly"))
        for service_data in data.get("services", ()):
            assembly.add_service(service_from_dict(service_data))
        for binding in data.get("bindings", ()):
            if not isinstance(binding, dict):
                raise ModelError(
                    f"binding entry must be an object, "
                    f"got {type(binding).__name__}"
                )
            missing = [k for k in ("consumer", "slot", "provider")
                       if k not in binding]
            if missing:
                raise ModelError(f"binding entry is missing fields {missing}")
            assembly.bind(
                binding["consumer"],
                binding["slot"],
                binding["provider"],
                connector=binding.get("connector"),
                connector_actuals={
                    k: _expression(v)
                    for k, v in (binding.get("connector_actuals") or {}).items()
                },
            )
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ModelError(
            f"malformed assembly document: {type(exc).__name__}: {exc}"
        ) from exc
    return assembly


def load_assembly(text: str) -> Assembly:
    """Parse a JSON string produced by
    :func:`repro.dsl.serializer.dump_assembly`.

    Raises :class:`~repro.errors.ModelError` on malformed or truncated
    JSON (wrapping :class:`json.JSONDecodeError`) and on structurally
    invalid documents.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ModelError(f"not valid JSON: {exc}") from exc
    return assembly_from_dict(data)
