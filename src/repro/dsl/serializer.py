"""Serialization of models to plain JSON-compatible dictionaries.

Section 5 of the paper argues that integrating reliability prediction with
automated discovery/composition requires "the embedding of the analytic
interface ... into the machine-processable languages used to support the
service description and composition" (OWL-S, BPEL4WS, WSDL), listing the
required elements: the probabilistic flow graph, the internal failure
model, and service-request models whose actual parameters are functions of
the calling service's formal parameters.

This module is that machine-processable form, as a neutral JSON schema
(version tag ``repro/1``): every element the paper lists round-trips
through :mod:`repro.dsl.loader`.  Expressions serialize as AST dictionaries
(see :meth:`repro.symbolic.Expression.to_dict`); the loader additionally
accepts plain strings parsed by :func:`repro.symbolic.parse_expression`,
which keeps hand-written files readable.
"""

from __future__ import annotations

import json
import math

from repro.errors import ModelError
from repro.model.assembly import Assembly, Binding
from repro.model.completion import (
    AndCompletion,
    CompletionModel,
    KOfNCompletion,
    OrCompletion,
)
from repro.model.flow import ServiceFlow
from repro.model.parameters import (
    FiniteDomain,
    IntegerDomain,
    ParameterDomain,
    RealDomain,
)
from repro.model.service import (
    AnalyticInterface,
    CompositeService,
    Service,
    SimpleService,
)

__all__ = [
    "SCHEMA_VERSION",
    "service_to_dict",
    "assembly_to_dict",
    "dump_assembly",
]

#: Schema tag written into every serialized document.
SCHEMA_VERSION = "repro/1"


def _finite_or_none(value: float) -> float | None:
    """JSON has no infinity; open bounds serialize as null."""
    return None if math.isinf(value) else value


def _domain_to_dict(domain: ParameterDomain) -> dict:
    if isinstance(domain, IntegerDomain):
        return {
            "kind": "integer",
            "low": _finite_or_none(domain.low),
            "high": _finite_or_none(domain.high),
        }
    if isinstance(domain, RealDomain):
        return {
            "kind": "real",
            "low": _finite_or_none(domain.low),
            "high": _finite_or_none(domain.high),
        }
    if isinstance(domain, FiniteDomain):
        return {"kind": "finite", "values": list(domain.values)}
    raise ModelError(f"cannot serialize domain {domain!r}")


def _completion_to_dict(completion: CompletionModel) -> dict:
    if isinstance(completion, AndCompletion):
        return {"kind": "and"}
    if isinstance(completion, OrCompletion):
        return {"kind": "or"}
    if isinstance(completion, KOfNCompletion):
        return {"kind": "k_of_n", "k": completion.k}
    raise ModelError(f"cannot serialize completion model {completion!r}")


def _interface_to_dict(interface: AnalyticInterface) -> dict:
    return {
        "parameters": [
            {
                "name": p.name,
                "domain": _domain_to_dict(p.domain),
                "direction": p.direction,
                "description": p.description,
            }
            for p in interface.formal_parameters
        ],
        "attributes": dict(interface.attributes),
        "description": interface.description,
    }


def _flow_to_dict(flow: ServiceFlow) -> dict:
    states = []
    for state in flow.states:
        requests = []
        for request in state.requests:
            requests.append(
                {
                    "target": request.target,
                    "actuals": {k: v.to_dict() for k, v in request.actuals.items()},
                    "internal_failure": request.internal_failure.to_dict(),
                    "masking": request.masking.to_dict(),
                    "connector_actuals": (
                        None
                        if request.connector_actuals is None
                        else {
                            k: v.to_dict()
                            for k, v in request.connector_actuals.items()
                        }
                    ),
                    "label": request.label,
                }
            )
        states.append(
            {
                "name": state.name,
                "completion": _completion_to_dict(state.completion),
                "shared": state.shared,
                "sharing_groups": (
                    None
                    if state.sharing_groups is None
                    else [list(group) for group in state.sharing_groups]
                ),
                "requests": requests,
            }
        )
    return {
        "formals": list(flow.formal_parameters),
        "states": states,
        "transitions": [
            {
                "source": t.source,
                "target": t.target,
                "probability": t.probability.to_dict(),
            }
            for t in flow.transitions
        ],
    }


def service_to_dict(service: Service) -> dict:
    """Serialize one service (simple or composite, connector or not)."""
    base = {
        "schema": SCHEMA_VERSION,
        "name": service.name,
        "connector": service.is_connector,
        "interface": _interface_to_dict(service.interface),
    }
    if isinstance(service, SimpleService):
        base["kind"] = "simple"
        base["failure_probability"] = service.failure_probability.to_dict()
        base["duration"] = (
            None if service.duration is None else service.duration.to_dict()
        )
        return base
    if isinstance(service, CompositeService):
        base["kind"] = "composite"
        base["flow"] = _flow_to_dict(service.flow)
        return base
    raise ModelError(f"cannot serialize service type {type(service)!r}")


def _binding_to_dict(binding: Binding) -> dict:
    return {
        "consumer": binding.consumer,
        "slot": binding.slot,
        "provider": binding.provider,
        "connector": binding.connector,
        "connector_actuals": {
            k: v.to_dict() for k, v in binding.connector_actuals.items()
        },
    }


def assembly_to_dict(assembly: Assembly) -> dict:
    """Serialize a whole assembly (services + bindings)."""
    return {
        "schema": SCHEMA_VERSION,
        "name": assembly.name,
        "services": [service_to_dict(s) for s in assembly.services],
        "bindings": [_binding_to_dict(b) for b in assembly.bindings],
    }


def dump_assembly(assembly: Assembly, indent: int = 2) -> str:
    """Serialize an assembly to a JSON string."""
    return json.dumps(assembly_to_dict(assembly), indent=indent, sort_keys=True)
