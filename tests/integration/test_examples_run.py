"""Integration: every shipped example runs cleanly and prints its headline.

The examples are documentation; broken documentation is worse than none.
Each script is executed as a subprocess (the user's entry path) and its
output checked for the load-bearing lines.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", ["R(thumbnails", "closed form", "sensitivity ranking"]),
    ("search_sort.py", ["Figure 1", "Equations (15)-(22)", "ranking flips"]),
    ("travel_booking.py", ["sharing penalty", "consistent = True"]),
    ("service_selection.py", ["selected: remote", "selected: local",
                              "matches: True"]),
    ("usage_profile_estimation.py", ["fitted P(browse -> checkout)",
                                     "under the estimated profile"]),
    ("fault_tolerance_design.py", ["failure domains", "quorum",
                                   "masking"]),
]


@pytest.mark.parametrize("script,expected", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    for needle in expected:
        assert needle in result.stdout, (
            f"{script}: expected {needle!r} in output; got:\n"
            f"{result.stdout[:2000]}"
        )


def test_all_examples_are_covered():
    """Adding an example without a smoke test should fail loudly."""
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {script for script, _ in CASES}
    assert shipped == covered, f"uncovered examples: {shipped - covered}"
