"""Integration: the two evaluation back-ends agree on every scenario.

The numeric evaluator solves concrete absorbing chains per point; the
symbolic evaluator eliminates the Markov structure once and evaluates the
closed form.  They share no code path beyond the model itself, so their
agreement across all scenarios is a strong internal-consistency check of
eqs. (3)-(13).
"""

import pytest

from repro.core import ReliabilityEvaluator, SymbolicEvaluator
from repro.scenarios import (
    booking_assembly,
    local_assembly,
    pipeline_assembly,
    remote_assembly,
    replicated_assembly,
)

CASES = [
    (local_assembly, "search", [
        {"elem": 1, "list": 10, "res": 1},
        {"elem": 5, "list": 500, "res": 2},
    ]),
    (remote_assembly, "search", [
        {"elem": 1, "list": 10, "res": 1},
        {"elem": 5, "list": 900, "res": 2},
    ]),
    (booking_assembly, "booking", [
        {"itinerary": 1}, {"itinerary": 12},
    ]),
    (lambda: booking_assembly(shared_gds=True), "booking", [
        {"itinerary": 3},
    ]),
    (pipeline_assembly, "publish", [
        {"mb": 10}, {"mb": 750},
    ]),
    (lambda: replicated_assembly(4, shared=True), "report", [
        {"size": 100}, {"size": 2000},
    ]),
    (lambda: replicated_assembly(4, shared=False), "report", [
        {"size": 100},
    ]),
]


@pytest.mark.parametrize(
    "build,service,points", CASES,
    ids=[
        "local", "remote", "booking", "booking-shared", "pipeline",
        "shared-db", "replicated-db",
    ],
)
def test_backends_agree(build, service, points):
    assembly = build()
    numeric = ReliabilityEvaluator(assembly)
    expression = SymbolicEvaluator(assembly).pfail_expression(service)
    for actuals in points:
        env = {k: float(v) for k, v in actuals.items()}
        assert expression.evaluate(env) == pytest.approx(
            numeric.pfail(service, **actuals), rel=1e-9, abs=1e-14
        )


@pytest.mark.parametrize(
    "build,service,points", CASES,
    ids=[
        "local", "remote", "booking", "booking-shared", "pipeline",
        "shared-db", "replicated-db",
    ],
)
def test_every_intermediate_service_agrees(build, service, points):
    """Not only the top service: every composite in the assembly."""
    assembly = build()
    numeric = ReliabilityEvaluator(assembly, check_domains=False)
    symbolic = SymbolicEvaluator(assembly)
    for svc in assembly.services:
        if svc.is_simple:
            continue
        expression = symbolic.pfail_expression(svc.name)
        actuals = {name: 7.0 for name in svc.formal_parameters}
        assert expression.evaluate(actuals) == pytest.approx(
            numeric.pfail(svc.name, **actuals), rel=1e-9, abs=1e-14
        )
