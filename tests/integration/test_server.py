"""Integration tests: the daemon end to end, over real sockets.

A live ``ThreadingHTTPServer`` on an ephemeral port serves every test;
requests go through ``urllib`` exactly as an external client's would.
Includes the coalescing proof (N identical in-flight requests, one
solve), the error-taxonomy round trips, and validation of ``/metrics``
with the same checker CI uses (``tools/validate_metrics.py``).
"""

import json
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import observability as obs
from repro.dsl import dump_assembly
from repro.engine.cache import PlanCache
from repro.scenarios import local_assembly
from repro.server import EvaluationService, ReproServer

ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "tools"))

import gen_api_reference  # noqa: E402
import validate_metrics  # noqa: E402

MODEL = json.loads(dump_assembly(local_assembly()))
POINT = {"elem": 1, "list": 500, "res": 1}


def post(url: str, document: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as reply:
        return json.loads(reply.read())


def get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as reply:
        return json.loads(reply.read())


def post_error(url: str, body: bytes) -> urllib.error.HTTPError:
    request = urllib.request.Request(url, data=body)
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    return excinfo.value


@pytest.fixture(scope="module")
def server():
    obs.reset()
    obs.enable()
    server = ReproServer(port=0).start()
    yield server
    server.stop()
    obs.reset()


def test_evaluate_round_trip(server):
    reply = post(server.url + "/v1/evaluate",
                 {"model": MODEL, "service": "search", "actuals": POINT})
    assert reply["schema"] == "repro/server/1"
    assert reply["pfail"] == pytest.approx(0.004035, abs=5e-6)
    assert reply["reliability"] == pytest.approx(1 - reply["pfail"])
    assert reply["backend"] == "symbolic"
    assert reply["elapsed_seconds"] >= 0


def test_repeat_request_hits_every_warm_layer(server):
    payload = {"model": MODEL, "service": "search", "actuals": POINT}
    post(server.url + "/v1/evaluate", payload)
    before = get(server.url + "/v1/cache-stats")
    post(server.url + "/v1/evaluate", payload)
    after = get(server.url + "/v1/cache-stats")
    assert after["plan"]["hits"] > before["plan"]["hits"]
    assert after["model"]["hits"] > before["model"]["hits"]
    assert after["server"]["requests"] > before["server"]["requests"]


def test_batch_round_trip_with_per_entry_error_isolation(server):
    reply = post(server.url + "/v1/batch", {"requests": [
        {"model": MODEL, "service": "search", "actuals": POINT,
         "label": "good"},
        {"model": MODEL, "service": "no-such-service", "actuals": POINT,
         "label": "bad"},
    ]})
    assert reply["ok"] is False  # one entry failed ...
    good, bad = reply["entries"]
    assert good["ok"] is True  # ... but the other still completed
    assert good["pfail"] == pytest.approx(0.004035, abs=5e-6)
    assert good["error"] is None
    assert bad["ok"] is False
    assert bad["pfail"] is None
    assert bad["error"]["type"]
    assert "no-such-service" in bad["error"]["message"]
    assert reply["stats"]["entries"] == 2


def test_sweep_round_trip(server):
    reply = post(server.url + "/v1/sweep", {
        "model": MODEL, "service": "search", "parameter": "list",
        "start": 1, "stop": 1000, "points": 5,
        "fixed": {"elem": 1, "res": 1},
    })
    assert reply["values"] == pytest.approx([1.0, 250.75, 500.5, 750.25, 1000.0])
    assert reply["pfail"][1:] == pytest.approx(
        [0.001805, 0.004039, 0.006436, 0.008935], abs=5e-6)
    assert reply["method"] == "symbolic"


def test_coalescing_n_identical_inflight_requests_solve_once():
    """The tentpole concurrency proof: hold the leader's computation at a
    gate, pile N-1 identical requests behind it, release, and check that
    exactly one solve happened while every caller got the answer."""

    class GatedPlanCache(PlanCache):
        def __init__(self):
            super().__init__(64)
            self.gate = threading.Event()
            self.compute_calls = 0

        def get_or_compile(self, *args, **kwargs):
            self.compute_calls += 1
            assert self.gate.wait(timeout=30)
            return super().get_or_compile(*args, **kwargs)

    cache = GatedPlanCache()
    service = EvaluationService(plan_cache=cache)
    server = ReproServer(port=0, service=service).start()
    try:
        n = 6
        replies = []
        errors = []

        def request():
            try:
                replies.append(post(
                    server.url + "/v1/evaluate",
                    {"model": MODEL, "service": "search", "actuals": POINT},
                ))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=request) for _ in range(n)]
        for thread in threads:
            thread.start()
        # wait until the leader is inside the gated computation and the
        # other n-1 requests are registered as followers, then release
        deadline = time.monotonic() + 30
        while service.coalescer.followers < n - 1:
            assert time.monotonic() < deadline, (
                f"only {service.coalescer.followers} followers queued")
            time.sleep(0.01)
        cache.gate.set()
        for thread in threads:
            thread.join(timeout=30)

        assert errors == []
        assert cache.compute_calls == 1          # one solve for n requests
        assert service.evaluations == 1
        pfails = {reply["pfail"] for reply in replies}
        assert len(pfails) == 1                  # everyone got the answer
        coalesced = sorted(reply["coalesced"] for reply in replies)
        assert coalesced == [False] + [True] * (n - 1)
    finally:
        cache.gate.set()
        server.stop()


def test_malformed_json_answers_400(server):
    error = post_error(server.url + "/v1/evaluate", b"this is not json")
    assert error.code == 400
    document = json.loads(error.read())
    assert document["type"] == "RequestValidationError"
    assert document["exit_code"] == 10


def test_schema_violation_answers_400_with_problem_paths(server):
    error = post_error(
        server.url + "/v1/evaluate",
        json.dumps({"model": MODEL, "service": "search",
                    "solver": "quantum"}).encode(),
    )
    assert error.code == 400
    assert "$.solver" in json.loads(error.read())["error"]


def test_model_error_answers_400(server):
    error = post_error(
        server.url + "/v1/evaluate",
        json.dumps({"model": {"schema": "bogus/9"},
                    "service": "search"}).encode(),
    )
    assert error.code == 400
    document = json.loads(error.read())
    assert document["exit_code"] == 3


def test_budget_exhaustion_answers_503_with_retry_after(server):
    error = post_error(
        server.url + "/v1/evaluate",
        json.dumps({"model": MODEL, "service": "search", "actuals": POINT,
                    "budget": {"deadline": 0}}).encode(),
    )
    assert error.code == 503
    assert error.headers["Retry-After"] == "1"
    document = json.loads(error.read())
    assert document["type"] == "BudgetExceededError"
    assert document["exit_code"] == 8


def test_overload_sheds_with_429():
    service = EvaluationService(max_inflight=0)
    server = ReproServer(port=0, service=service).start()
    try:
        error = post_error(
            server.url + "/v1/evaluate",
            json.dumps({"model": MODEL, "service": "search"}).encode(),
        )
        assert error.code == 429
        assert error.headers["Retry-After"] == "1"
        assert json.loads(error.read())["type"] == "ServerOverloadedError"
        assert service.shed == 1
    finally:
        server.stop()


def test_oversized_body_is_rejected_before_reading():
    server = ReproServer(port=0, max_body_bytes=64).start()
    try:
        error = post_error(server.url + "/v1/evaluate", b"x" * 200)
        assert error.code == 400
        assert "exceeds" in json.loads(error.read())["error"]
    finally:
        server.stop()


def test_unknown_paths_answer_404(server):
    assert post_error(server.url + "/v1/nope", b"{}").code == 404
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(server.url + "/nope", timeout=30)
    assert excinfo.value.code == 404


def test_healthz_shape(server):
    health = get(server.url + "/healthz")
    assert health["status"] == "ok"
    assert health["pid"] > 0
    assert health["requests"]["total"] >= 0
    assert health["requests"]["inflight"] == 0


def test_metrics_endpoint_is_schema_valid(server):
    post(server.url + "/v1/evaluate",
         {"model": MODEL, "service": "search", "actuals": POINT})
    snapshot = get(server.url + "/metrics")
    problems = validate_metrics.validate_document(
        snapshot, expect_counters=["server.requests", "server.responses."],
    )
    assert problems == []
    assert snapshot["counters"]["server.evaluations"] >= 1
    assert "server.request.seconds" in snapshot["histograms"]


def test_responses_stay_on_one_connectionless_line(server):
    # every response must carry an accurate Content-Length (HTTP/1.1
    # keep-alive): a wrong length would hang this second request
    for _ in range(2):
        reply = post(server.url + "/v1/evaluate",
                     {"model": MODEL, "service": "search", "actuals": POINT})
        assert reply["schema"] == "repro/server/1"


def test_stop_is_idempotent_and_releases_the_port():
    server = ReproServer(port=0).start()
    port = server.port
    server.stop()
    server.stop()  # second stop is a no-op
    # the port is free again: a new server can bind it immediately
    rebound = ReproServer(port=port)
    rebound.start()
    rebound.stop()


def test_api_reference_is_up_to_date():
    committed = (ROOT / "docs" / "api_reference.md").read_text()
    assert committed == gen_api_reference.render(), (
        "docs/api_reference.md is stale; regenerate with "
        "PYTHONPATH=src python tools/gen_api_reference.py"
    )
