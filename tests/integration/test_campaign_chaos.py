"""Chaos tests: campaigns survive crashed, hung and killed processes.

These are the acceptance tests of the fault-tolerance contract:

- a worker SIGKILLed mid-campaign (chaos ``crash``) never sinks the run —
  the pool is rebuilt and the unit retried;
- a hung worker is killed by the per-unit timeout and retried;
- a poison unit (crashes every attempt) ends in quarantine, not an
  infinite crash loop, and the rest of the campaign completes;
- a campaign whose *supervisor process* is SIGKILLed mid-run resumes
  from its journal with byte-identical stdout.

Everything here uses real process pools and real signals; chaos
schedules keep the runs deterministic.
"""

import math
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.robustness import ChaosPolicy
from repro.scenarios import local_assembly
from repro.workunits import (
    assemble_sweep,
    load_state,
    run_campaign,
    sweep_campaign,
)

GRID = [float(v) for v in range(1, 13)]
FIXED = {"elem": 1.0, "res": 1.0}


def sweep12(units=4):
    return sweep_campaign(
        local_assembly(), "search", "list", GRID, FIXED, units=units
    )


def reference_pfail(campaign):
    report = run_campaign(campaign, None, mode="inline")
    assert report.ok
    return list(assemble_sweep(campaign, report).pfail)


class TestWorkerChaos:
    def test_sigkilled_worker_recovers_bit_identically(self, tmp_path):
        campaign = sweep12()
        report = run_campaign(
            campaign, tmp_path / "s.jsonl",
            chaos=ChaosPolicy.parse("crash@1"),
            retries=2, backoff_base=0.0,
        )
        assert report.complete and not report.quarantined
        assert report.pool_restarts >= 1
        state = load_state(tmp_path / "s.jsonl")
        crashed = campaign.units[1].unit_id
        assert state.attempts[crashed] >= 2  # crashed once, then succeeded
        assert list(assemble_sweep(campaign, report).pfail) == \
            reference_pfail(campaign)

    def test_hung_worker_is_timed_out_and_retried(self, tmp_path):
        campaign = sweep12()
        started = time.monotonic()
        report = run_campaign(
            campaign, tmp_path / "s.jsonl",
            chaos=ChaosPolicy(((2, "hang", 1),), hang_seconds=120.0),
            unit_timeout=3.0, retries=2, backoff_base=0.0,
        )
        elapsed = time.monotonic() - started
        assert report.complete and not report.quarantined
        assert report.pool_restarts >= 1
        assert elapsed < 60.0  # nowhere near the 120 s hang
        # journal carries the timeout attempt for the hung unit
        raw = (tmp_path / "s.jsonl").read_text()
        assert '"status":"timeout"' in raw
        assert list(assemble_sweep(campaign, report).pfail) == \
            reference_pfail(campaign)

    def test_poison_unit_is_quarantined_not_fatal(self, tmp_path):
        campaign = sweep12()
        report = run_campaign(
            campaign, tmp_path / "s.jsonl",
            chaos=ChaosPolicy.parse("crash@3x*"),
            retries=1, backoff_base=0.0,
        )
        # the campaign finishes despite a unit that kills every host
        assert report.complete
        poisoned = campaign.units[3].unit_id
        assert poisoned in report.quarantined
        assert len(report.results) == len(campaign) - 1
        sweep = assemble_sweep(campaign, report)
        healthy = reference_pfail(campaign)
        for index, value in enumerate(sweep.pfail):
            if 9 <= index < 12:  # the poisoned slice (unit 3 of 4)
                assert math.isnan(value)
            else:
                assert value == healthy[index]


@pytest.mark.slow
class TestSupervisorKilled:
    """Kill the whole campaign process, then resume from the journal."""

    def _run_cli(self, args, timeout=120):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, timeout=timeout, env=env,
        )

    def test_killed_campaign_resumes_bit_identically(self, tmp_path):
        model = tmp_path / "local.json"
        export = self._run_cli(["export-scenario", "local", "-o", str(model)])
        assert export.returncode == 0, export.stderr
        sweep_args = [
            "sweep", str(model), "search", "list",
            "--from", "1", "--to", "12", "--points", "12",
            "--set", "elem=1", "res=1", "--units", "6",
        ]
        store = tmp_path / "campaign.jsonl"

        # start a campaign whose unit 4 hangs forever, in its own process
        # group so the SIGKILL also reaps the hung pool worker
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", *sweep_args,
             "--store", str(store), "--chaos", "hang@4x*",
             "--unit-timeout", "600"],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            start_new_session=True, env=env,
        )
        try:
            # wait until the journal proves real progress (>= 2 done units)
            deadline = time.monotonic() + 90.0
            while time.monotonic() < deadline:
                if store.exists() and len(load_state(store).results) >= 2:
                    break
                if victim.poll() is not None:
                    pytest.fail("campaign exited before it could be killed")
                time.sleep(0.1)
            else:
                pytest.fail("campaign made no journaled progress in time")
            os.killpg(os.getpgid(victim.pid), signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:  # pragma: no cover - cleanup path
                os.killpg(os.getpgid(victim.pid), signal.SIGKILL)

        interrupted = load_state(store)
        done_before = len(interrupted.results)
        assert 2 <= done_before < 6  # killed mid-campaign, journal intact

        # resume (no chaos): finishes only the missing units ...
        resumed = self._run_cli(
            [*sweep_args, "--resume", str(store)], timeout=180
        )
        assert resumed.returncode == 0, resumed.stderr
        assert f"{done_before} resumed" in resumed.stderr

        # ... and stdout is byte-identical to a never-interrupted campaign
        fresh_store = tmp_path / "fresh.jsonl"
        fresh = self._run_cli(
            [*sweep_args, "--store", str(fresh_store)], timeout=180
        )
        assert fresh.returncode == 0, fresh.stderr
        assert resumed.stdout == fresh.stdout
