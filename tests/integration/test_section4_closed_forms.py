"""Integration: equations (15)–(22) of the paper vs both evaluators.

The strongest correctness statement the reproduction can make: the paper
derives Pfail(search, ...) for both assemblies *by hand* (eqs. 15–22); our
hand transcriptions of those printed formulas live in
``repro.scenarios.search_sort_closed_forms``; both the numeric Markov
engine and the mechanically derived symbolic closed forms must agree with
them to near machine precision, across the full Figure 6 parameter grid.
"""

import numpy as np
import pytest

from repro.core import ReliabilityEvaluator, SymbolicEvaluator
from repro.scenarios import (
    PAPER_GAMMA_VALUES,
    PAPER_PHI1_VALUES,
    SearchSortParameters,
    local_assembly,
    remote_assembly,
)
from repro.scenarios.search_sort_closed_forms import (
    pfail_cpu,
    pfail_lpc,
    pfail_net,
    pfail_rpc,
    pfail_search_local,
    pfail_search_remote,
    pfail_sort,
)

LIST_SIZES = (1, 2, 5, 17, 50, 123, 400, 1000)


class TestLevel0ClosedForms:
    """Equations (15)-(17): the simple services."""

    def test_eq15_cpu1(self):
        p = SearchSortParameters()
        evaluator = ReliabilityEvaluator(local_assembly(p))
        for n in (0, 1, 100, 1e6):
            assert evaluator.pfail("cpu1", N=n) == pytest.approx(
                float(pfail_cpu(n, p.s1, p.lambda1)), abs=1e-15
            )

    def test_eq17_net12(self):
        p = SearchSortParameters()
        evaluator = ReliabilityEvaluator(remote_assembly(p))
        for b in (0, 10, 500, 1e5):
            assert evaluator.pfail("net12", B=b) == pytest.approx(
                float(pfail_net(b, p.bandwidth, p.gamma)), abs=1e-15
            )

    def test_perfect_connectors_level_0(self):
        evaluator = ReliabilityEvaluator(local_assembly())
        for name in ("loc1", "loc2", "loc3"):
            assert evaluator.pfail(name) == 0.0


class TestLevel1ClosedForms:
    """Equations (18)-(20): sort, lpc, rpc."""

    def test_eq18_sort1(self):
        p = SearchSortParameters()
        evaluator = ReliabilityEvaluator(local_assembly(p), check_domains=False)
        for n in LIST_SIZES:
            assert evaluator.pfail("sort1", list=n) == pytest.approx(
                float(pfail_sort(n, p.phi_sort1, p.s1, p.lambda1)), rel=1e-12
            )

    def test_eq18_sort2(self):
        p = SearchSortParameters()
        evaluator = ReliabilityEvaluator(remote_assembly(p), check_domains=False)
        for n in LIST_SIZES:
            assert evaluator.pfail("sort2", list=n) == pytest.approx(
                float(pfail_sort(n, p.phi_sort2, p.s2, p.lambda2)), rel=1e-12
            )

    def test_eq19_lpc_independent_of_sizes(self):
        p = SearchSortParameters()
        evaluator = ReliabilityEvaluator(local_assembly(p))
        values = {
            evaluator.pfail("lpc", ip=ip, op=op)
            for ip, op in ((0, 0), (10, 5), (1000, 1000))
        }
        assert len(values) == 1  # shared-memory assumption
        assert values.pop() == pytest.approx(float(pfail_lpc(p)), rel=1e-12)

    def test_eq20_rpc(self):
        p = SearchSortParameters()
        evaluator = ReliabilityEvaluator(remote_assembly(p))
        for ip, op in ((1, 1), (101, 1), (500, 250)):
            assert evaluator.pfail("rpc", ip=ip, op=op) == pytest.approx(
                float(pfail_rpc(ip, op, p)), rel=1e-12
            )

    def test_eq20_symmetry_in_ip_op(self):
        """Eq. (20) depends on ip + op only."""
        evaluator = ReliabilityEvaluator(remote_assembly())
        assert evaluator.pfail("rpc", ip=300, op=100) == pytest.approx(
            evaluator.pfail("rpc", ip=100, op=300), rel=1e-14
        )


class TestLevel2ClosedForm:
    """Equation (22): the search service, both assemblies, full grid."""

    @pytest.mark.parametrize("phi1", PAPER_PHI1_VALUES)
    @pytest.mark.parametrize("gamma", PAPER_GAMMA_VALUES)
    def test_eq22_local_numeric(self, phi1, gamma):
        p = SearchSortParameters().with_figure6_point(phi1, gamma)
        evaluator = ReliabilityEvaluator(local_assembly(p))
        for n in LIST_SIZES:
            # the absorbing-chain solve computes p ~ 1 and returns 1 - p,
            # losing ~5 digits to cancellation at Pfail ~ 1e-5: rel 1e-9
            assert evaluator.pfail("search", elem=1, list=n, res=1) == pytest.approx(
                float(pfail_search_local(n, p)), rel=1e-9, abs=1e-14
            )

    @pytest.mark.parametrize("phi1", PAPER_PHI1_VALUES)
    @pytest.mark.parametrize("gamma", PAPER_GAMMA_VALUES)
    def test_eq22_remote_numeric(self, phi1, gamma):
        p = SearchSortParameters().with_figure6_point(phi1, gamma)
        evaluator = ReliabilityEvaluator(remote_assembly(p))
        for n in LIST_SIZES:
            assert evaluator.pfail("search", elem=1, list=n, res=1) == pytest.approx(
                float(pfail_search_remote(n, p)), rel=1e-9, abs=1e-14
            )

    def test_eq22_symbolic_vectorized(self):
        p = SearchSortParameters()
        grid = np.asarray(LIST_SIZES, dtype=float)
        env = {"elem": 1.0, "list": grid, "res": 1.0}
        local_expr = SymbolicEvaluator(local_assembly(p)).pfail_expression("search")
        np.testing.assert_allclose(
            local_expr.evaluate(env), pfail_search_local(grid, p), rtol=1e-9, atol=1e-15
        )
        remote_expr = SymbolicEvaluator(remote_assembly(p)).pfail_expression("search")
        np.testing.assert_allclose(
            remote_expr.evaluate(env), pfail_search_remote(grid, p), rtol=1e-9, atol=1e-15
        )

    def test_recursion_levels_are_the_papers(self):
        """Section 4 enumerates levels 0/1/2 — structural cross-check."""
        levels = remote_assembly().recursion_levels()
        level_sets = {}
        for name, level in levels.items():
            level_sets.setdefault(level, set()).add(name)
        assert level_sets[0] == {
            "cpu1", "cpu2", "net12", "loc1", "loc2", "loc3", "loc4", "loc5"
        }
        assert level_sets[1] == {"rpc", "sort2"}
        assert level_sets[2] == {"search"}
