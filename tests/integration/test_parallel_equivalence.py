"""Parallel execution is an implementation detail: results match serial.

Every ``--jobs N`` code path (symbolic sweeps, numeric sweeps, attribute
sweeps, Monte Carlo trial blocks, fuzz campaigns) must produce output
equal to the ``jobs=1`` path — to 1e-12 for deterministic evaluation,
and bit-for-bit for seeded stochastic runs at a fixed block layout.
"""

import numpy as np
import pytest

from repro.analysis.sweep import sweep_attribute, sweep_parameter
from repro.engine import PlanCache
from repro.robustness.harness import FuzzHarness
from repro.scenarios import local_assembly, remote_assembly
from repro.simulation import MonteCarloSimulator

GRID = np.linspace(1.0, 1000.0, 37)
FIXED = {"elem": 1.0, "res": 1.0}


class TestSweepEquivalence:
    def test_symbolic_sweep_parallel_matches_serial(self):
        serial = sweep_parameter(
            local_assembly(), "search", "list", GRID, fixed=FIXED, jobs=1
        )
        parallel = sweep_parameter(
            local_assembly(), "search", "list", GRID, fixed=FIXED, jobs=3
        )
        np.testing.assert_allclose(parallel.pfail, serial.pfail, rtol=0, atol=1e-12)

    def test_numeric_sweep_parallel_matches_serial(self):
        serial = sweep_parameter(
            local_assembly(), "search", "list", GRID[:12], fixed=FIXED,
            method="numeric", jobs=1,
        )
        parallel = sweep_parameter(
            local_assembly(), "search", "list", GRID[:12], fixed=FIXED,
            method="numeric", jobs=2,
        )
        np.testing.assert_allclose(parallel.pfail, serial.pfail, rtol=0, atol=1e-12)

    def test_attribute_sweep_parallel_matches_serial(self):
        values = np.geomspace(1e-7, 1e-4, 25)
        actuals = {"elem": 1.0, "list": 500.0, "res": 1.0}
        attribute = "sort1::software_failure_rate"
        serial = sweep_attribute(
            local_assembly(), "search", attribute, values, actuals=actuals, jobs=1
        )
        parallel = sweep_attribute(
            local_assembly(), "search", attribute, values, actuals=actuals, jobs=2
        )
        np.testing.assert_allclose(parallel.pfail, serial.pfail, rtol=0, atol=1e-12)

    def test_parallel_sweep_reuses_cached_plan(self):
        cache = PlanCache()
        sweep_parameter(
            local_assembly(), "search", "list", GRID, fixed=FIXED, jobs=2,
            cache=cache,
        )
        sweep_parameter(
            local_assembly(), "search", "list", GRID[:10], fixed=FIXED, jobs=2,
            cache=cache,
        )
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_remote_assembly_too(self):
        serial = sweep_parameter(
            remote_assembly(), "search", "list", GRID, fixed=FIXED, jobs=1
        )
        parallel = sweep_parameter(
            remote_assembly(), "search", "list", GRID, fixed=FIXED, jobs=4
        )
        np.testing.assert_allclose(parallel.pfail, serial.pfail, rtol=0, atol=1e-12)


class TestMonteCarloEquivalence:
    def test_parallel_estimate_is_deterministic_per_seed_and_jobs(self):
        kwargs = dict(elem=1.0, list=500.0, res=1.0)
        a = MonteCarloSimulator(local_assembly(), seed=42).estimate_pfail(
            "search", 4000, jobs=2, **kwargs
        )
        b = MonteCarloSimulator(local_assembly(), seed=42).estimate_pfail(
            "search", 4000, jobs=2, **kwargs
        )
        assert a.trials == b.trials == 4000
        assert a.failures == b.failures

    def test_parallel_estimate_consistent_with_analytic(self):
        from repro.core.evaluator import ReliabilityEvaluator

        exact = ReliabilityEvaluator(local_assembly()).pfail(
            "search", elem=1.0, list=500.0, res=1.0
        )
        result = MonteCarloSimulator(local_assembly(), seed=7).estimate_pfail(
            "search", 20_000, jobs=2, elem=1.0, list=500.0, res=1.0
        )
        # 3-sigma binomial envelope around the analytic value
        sigma = (exact * (1 - exact) / result.trials) ** 0.5
        assert abs(result.pfail - exact) <= 3 * sigma + 1e-9

    def test_trials_merge_exactly(self):
        result = MonteCarloSimulator(local_assembly(), seed=3).estimate_pfail(
            "search", 4001, jobs=3, elem=1.0, list=500.0, res=1.0
        )
        assert result.trials == 4001


class TestFuzzEquivalence:
    def test_parallel_campaign_matches_serial_classification(self):
        def signature(report):
            return [
                (case.index, case.operator, case.status)
                for case in report.cases
            ]

        serial = FuzzHarness(local_assembly(), seed=11).run(count=12, jobs=1)
        parallel = FuzzHarness(local_assembly(), seed=11).run(count=12, jobs=2)
        assert signature(parallel) == signature(serial)
        assert parallel.ok == serial.ok
