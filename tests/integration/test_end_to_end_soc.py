"""Integration: the full SOC loop — publish, discover, predict, select.

Section 1 of the paper: prediction exists to drive automated selection.
This test wires the whole pipeline together: providers publish sort
services (with analytic interfaces) into a registry; a broker discovers
candidates, builds the corresponding assemblies (local vs remote — the
Figure 6 alternatives), predicts reliability, and selects — and the
selection must flip with the network failure rate exactly as Figure 6
says.  The winning assembly is serialized through the DSL and re-evaluated
to close the automation loop.
"""

import pytest

from repro.analysis import select_assembly
from repro.core import ReliabilityEvaluator
from repro.dsl import dump_assembly, load_assembly
from repro.model import AttributeConstraint, ServiceRegistry
from repro.scenarios import (
    SearchSortParameters,
    local_assembly,
    remote_assembly,
)

USAGE_POINT = {"elem": 1, "list": 1000, "res": 1}


def make_registry(params: SearchSortParameters) -> ServiceRegistry:
    registry = ServiceRegistry()
    local = local_assembly(params)
    remote = remote_assembly(params)
    registry.publish(local.service("sort1"), "sort", provider="local-vendor",
                     metadata={"deployment": "local"})
    registry.publish(remote.service("sort2"), "sort", provider="remote-vendor",
                     metadata={"deployment": "remote"})
    return registry


def broker_select(params: SearchSortParameters):
    """Discover sort candidates and pick the best full assembly."""
    registry = make_registry(params)
    candidates = registry.discover("sort")
    assert len(candidates) == 2

    def build(entry):
        if entry.metadata["deployment"] == "local":
            return local_assembly(params)
        return remote_assembly(params)

    return select_assembly(
        candidates, build, "search", USAGE_POINT,
        label=lambda e: e.metadata["deployment"],
    )


class TestSelectionFollowsFigure6:
    def test_reliable_network_selects_remote(self):
        params = SearchSortParameters().with_figure6_point(1e-6, 5e-3)
        ranked = broker_select(params)
        assert ranked[0].candidate == "remote"

    def test_unreliable_network_selects_local(self):
        params = SearchSortParameters().with_figure6_point(1e-6, 1e-1)
        ranked = broker_select(params)
        assert ranked[0].candidate == "local"

    def test_published_reliability_alone_would_mislead(self):
        """The remote sort's own phi2 is 10x better than phi1 — ranking by
        the published attribute picks remote even when the assembled
        prediction says local (the paper's core argument)."""
        params = SearchSortParameters().with_figure6_point(1e-6, 1e-1)
        registry = make_registry(params)
        by_attribute = registry.discover(
            "sort",
            key=lambda e: e.service.interface.attributes["software_failure_rate"],
        )
        naive_winner = by_attribute[0].metadata["deployment"]
        assert naive_winner == "remote"
        informed_winner = broker_select(params)[0].candidate
        assert informed_winner == "local"

    def test_constraint_filtering_composes_with_selection(self):
        params = SearchSortParameters().with_figure6_point(1e-6, 5e-3)
        registry = make_registry(params)
        only_good_phi = registry.discover(
            "sort",
            constraints=(AttributeConstraint("software_failure_rate", maximum=5e-7),),
        )
        assert [e.metadata["deployment"] for e in only_good_phi] == ["remote"]


class TestSelectionThenSerialization:
    def test_winner_round_trips_through_dsl(self):
        params = SearchSortParameters().with_figure6_point(1e-6, 5e-3)
        ranked = broker_select(params)
        winner = ranked[0]
        text = dump_assembly(winner.assembly)
        rebuilt = load_assembly(text)
        replayed = ReliabilityEvaluator(rebuilt).pfail("search", **USAGE_POINT)
        assert replayed == pytest.approx(winner.pfail, rel=1e-12)
