"""Integration: the qualitative claims of Figure 6.

The paper's reading of Figure 6 (end of section 4):

1. "the remote assembly is actually more reliable only when the net12
   failure rate is gamma = 5e-3" — for phi1 = 1e-6, of the four swept
   gamma values, only the smallest lets the remote assembly win (at large
   list sizes);
2. "For the higher values of gamma considered in this example, the local
   assembly is always more reliable when the sort1 failure rate is
   phi1 = 1e-6";
3. "Only if we assume a still higher sort1 unreliability (phi1 = 5e-6)
   the remote assembly is more reliable for gamma values greater than
   5e-3 and less than 5e-2" — i.e. gamma = 2.5e-2 also flips to remote.

Absolute curve positions depend on the constants the paper does not
publish (see EXPERIMENTS.md); these tests pin the *shape*: who wins where,
and that the crossover structure matches the paper's narrative.
"""

import numpy as np
import pytest

from repro.analysis import compare_assemblies
from repro.scenarios import (
    PAPER_GAMMA_VALUES,
    SearchSortParameters,
    local_assembly,
    remote_assembly,
)

GRID = np.linspace(1, 1000, 120)
FIXED = {"elem": 1, "res": 1}
LARGE_LIST = 1000.0


def winner_at_large_list(phi1: float, gamma: float) -> str:
    p = SearchSortParameters().with_figure6_point(phi1, gamma)
    comparison = compare_assemblies(
        local_assembly(p), remote_assembly(p), "search", "list", GRID, FIXED,
        refine_crossovers=False,
    )
    return comparison.winner_at(LARGE_LIST)


class TestClaim1And2_Phi1Low:
    """phi1 = 1e-6: remote wins only at gamma = 5e-3."""

    def test_remote_wins_only_at_smallest_gamma(self):
        winners = {
            gamma: winner_at_large_list(1e-6, gamma) for gamma in PAPER_GAMMA_VALUES
        }
        assert winners[5e-3] == "remote"
        assert winners[2.5e-2] == "local"
        assert winners[5e-2] == "local"
        assert winners[1e-1] == "local"

    @pytest.mark.parametrize("gamma", [1e-1, 5e-2, 2.5e-2])
    def test_local_dominates_entire_range_at_high_gamma(self, gamma):
        p = SearchSortParameters().with_figure6_point(1e-6, gamma)
        comparison = compare_assemblies(
            local_assembly(p), remote_assembly(p), "search", "list", GRID, FIXED,
            refine_crossovers=False,
        )
        assert comparison.dominant() == "local"


class TestClaim3_Phi1High:
    """phi1 = 5e-6: remote additionally wins at gamma = 2.5e-2, but still
    not at gamma >= 5e-2."""

    def test_remote_wins_at_gamma_between_bounds(self):
        winners = {
            gamma: winner_at_large_list(5e-6, gamma) for gamma in PAPER_GAMMA_VALUES
        }
        assert winners[5e-3] == "remote"
        assert winners[2.5e-2] == "remote"
        assert winners[5e-2] == "local"
        assert winners[1e-1] == "local"


class TestCrossoverStructure:
    def test_low_gamma_has_single_crossover(self):
        """Local wins small lists (RPC overhead), remote wins large lists
        (better sort software): exactly one flip."""
        p = SearchSortParameters().with_figure6_point(1e-6, 5e-3)
        comparison = compare_assemblies(
            local_assembly(p), remote_assembly(p), "search", "list", GRID, FIXED
        )
        assert len(comparison.crossovers) == 1
        assert comparison.winner_at(1.0) == "local"
        assert comparison.winner_at(LARGE_LIST) == "remote"

    def test_crossover_moves_right_as_gamma_grows(self):
        """A less reliable network postpones the remote advantage."""
        def crossover_at(gamma):
            p = SearchSortParameters().with_figure6_point(5e-6, gamma)
            comparison = compare_assemblies(
                local_assembly(p), remote_assembly(p), "search", "list", GRID, FIXED
            )
            assert comparison.crossovers, f"no crossover at gamma={gamma}"
            return comparison.crossovers[0].location

        assert crossover_at(5e-3) < crossover_at(2.5e-2)

    def test_reliability_curves_decrease_with_list(self):
        """Both Figure 6 curve families decay monotonically in the list
        size."""
        from repro.analysis import sweep_parameter

        for build in (local_assembly, remote_assembly):
            sweep = sweep_parameter(build(), "search", "list", GRID, FIXED)
            assert np.all(np.diff(sweep.reliability) < 0)

    def test_higher_phi1_lowers_local_curve_only(self):
        from repro.analysis import sweep_parameter

        low = SearchSortParameters().with_figure6_point(1e-6, 5e-3)
        high = SearchSortParameters().with_figure6_point(5e-6, 5e-3)
        local_low = sweep_parameter(local_assembly(low), "search", "list", GRID, FIXED)
        local_high = sweep_parameter(local_assembly(high), "search", "list", GRID, FIXED)
        assert np.all(local_high.pfail[1:] > local_low.pfail[1:])
        remote_low = sweep_parameter(remote_assembly(low), "search", "list", GRID, FIXED)
        remote_high = sweep_parameter(remote_assembly(high), "search", "list", GRID, FIXED)
        np.testing.assert_allclose(remote_low.pfail, remote_high.pfail)

    def test_higher_gamma_lowers_remote_curve_only(self):
        from repro.analysis import sweep_parameter

        low = SearchSortParameters().with_figure6_point(1e-6, 5e-3)
        high = SearchSortParameters().with_figure6_point(1e-6, 1e-1)
        remote_low = sweep_parameter(remote_assembly(low), "search", "list", GRID, FIXED)
        remote_high = sweep_parameter(remote_assembly(high), "search", "list", GRID, FIXED)
        assert np.all(remote_high.pfail > remote_low.pfail)
        local_low = sweep_parameter(local_assembly(low), "search", "list", GRID, FIXED)
        local_high = sweep_parameter(local_assembly(high), "search", "list", GRID, FIXED)
        np.testing.assert_allclose(local_low.pfail, local_high.pfail)
