"""Integration: Monte Carlo cross-validation of the analytic engine.

Every scenario in the repository is simulated operationally (fault
injection under the paper's assumptions) and the estimated unreliability
must be statistically consistent with the analytic prediction.  Failure
rates are inflated relative to the paper's design points so that failures
are observable within test-budget trial counts.
"""

from dataclasses import replace

import pytest

from repro.core import ReliabilityEvaluator
from repro.scenarios import (
    BookingParameters,
    DatabaseParameters,
    PipelineParameters,
    SearchSortParameters,
    booking_assembly,
    local_assembly,
    pipeline_assembly,
    remote_assembly,
    replicated_assembly,
)
from repro.simulation import MonteCarloSimulator

TRIALS = 40_000


def check(assembly, service, seed=1234, trials=TRIALS, **actuals):
    analytic = ReliabilityEvaluator(assembly).pfail(service, **actuals)
    result = MonteCarloSimulator(assembly, seed=seed).estimate_pfail(
        service, trials, **actuals
    )
    assert result.consistent_with(analytic), (
        f"analytic {analytic} vs simulated {result}"
    )
    return analytic, result


class TestSearchSort:
    def test_local_assembly(self):
        params = replace(
            SearchSortParameters(), phi_search=1e-4, phi_sort1=1e-4, gamma=0.2
        )
        analytic, _ = check(local_assembly(params), "search", elem=1, list=200, res=1)
        assert analytic > 1e-3  # the inflated point is actually observable

    def test_remote_assembly(self):
        params = replace(
            SearchSortParameters(), phi_search=1e-4, phi_sort2=1e-5, gamma=0.3
        )
        check(remote_assembly(params), "search", elem=1, list=200, res=1)

    def test_branch_probability_respected(self):
        """With q = 0 the sort state is never entered: analytic and
        simulation must both see only the search state's failures."""
        params = replace(SearchSortParameters(), q=0.0, phi_search=1e-3)
        check(local_assembly(params), "search", elem=1, list=200, res=1)


class TestSharingScenarios:
    def test_shared_db(self):
        params = DatabaseParameters(db_failure_rate=5e-3, phi_report=1e-5)
        check(
            replicated_assembly(3, shared=True, params=params),
            "report", size=300,
        )

    def test_replicated_db(self):
        params = DatabaseParameters(db_failure_rate=5e-3, phi_report=1e-4)
        check(
            replicated_assembly(3, shared=False, params=params),
            "report", size=300,
        )

    def test_simulated_sharing_gap_matches_analytic_gap(self):
        """The sharing penalty itself (not just each endpoint) must
        reproduce: simulate both configurations and compare the gap."""
        params = DatabaseParameters(db_failure_rate=2e-2, phi_report=1e-4)
        shared = replicated_assembly(3, shared=True, params=params)
        independent = replicated_assembly(3, shared=False, params=params)
        analytic_gap = (
            ReliabilityEvaluator(shared).pfail("report", size=300)
            - ReliabilityEvaluator(independent).pfail("report", size=300)
        )
        sim_shared = MonteCarloSimulator(shared, seed=7).estimate_pfail(
            "report", TRIALS, size=300
        )
        sim_independent = MonteCarloSimulator(independent, seed=8).estimate_pfail(
            "report", TRIALS, size=300
        )
        sim_gap = sim_shared.pfail - sim_independent.pfail
        tolerance = 4 * (
            sim_shared.standard_error + sim_independent.standard_error
        )
        assert abs(sim_gap - analytic_gap) <= tolerance
        assert sim_gap > 0  # sharing is worse, operationally too


class TestBookingAndPipeline:
    def test_booking_independent(self):
        params = BookingParameters(
            phi_flights_a=2e-4, phi_flights_b=3e-4, phi_hotel=1e-4,
            net_failure_rate=5e-2,
        )
        check(booking_assembly(params), "booking", itinerary=5)

    def test_booking_shared_gds(self):
        params = BookingParameters(
            phi_flights_a=2e-4, net_failure_rate=5e-2
        )
        check(
            booking_assembly(params, shared_gds=True), "booking", itinerary=5
        )

    def test_pipeline_with_quorum(self):
        params = PipelineParameters(
            phi_cdn=1e-7, phi_transcode=2e-8, net_failure_rate=5e-3
        )
        check(pipeline_assembly(params), "publish", mb=200, trials=20_000)

    def test_pipeline_strict_quorum(self):
        params = PipelineParameters(cdn_quorum=3, phi_cdn=1e-7, net_failure_rate=5e-3)
        check(pipeline_assembly(params), "publish", mb=200, trials=20_000)
