"""Shared fixtures: the paper's scenarios at their default design points."""

from __future__ import annotations

import pytest

from repro.scenarios import (
    SearchSortParameters,
    booking_assembly,
    local_assembly,
    pipeline_assembly,
    recursive_assembly,
    remote_assembly,
    replicated_assembly,
)


@pytest.fixture
def params() -> SearchSortParameters:
    """The section 4 constants at their calibrated defaults."""
    return SearchSortParameters()


@pytest.fixture
def local(params):
    """The Figure 3 (local) assembly."""
    return local_assembly(params)


@pytest.fixture
def remote(params):
    """The Figure 4 (remote) assembly."""
    return remote_assembly(params)


@pytest.fixture
def booking():
    """The travel-booking assembly (independent flight providers)."""
    return booking_assembly()


@pytest.fixture
def booking_shared():
    """The travel-booking assembly with the shared GDS backend."""
    return booking_assembly(shared_gds=True)


@pytest.fixture
def pipeline():
    """The media-pipeline assembly."""
    return pipeline_assembly()


@pytest.fixture
def recursive():
    """The mutually recursive A <-> B assembly."""
    return recursive_assembly()


@pytest.fixture
def shared_db():
    """Three replicated queries against one shared database."""
    return replicated_assembly(3, shared=True)


@pytest.fixture
def replicated_db():
    """Three queries against three independent database replicas."""
    return replicated_assembly(3, shared=False)
