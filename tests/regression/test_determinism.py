"""Determinism audit: same seed, same bits — twice.

Unattended reliability pipelines (CI gates, selection loops) diff results
across runs, so every stochastic helper in the library must be bit-stable
under a fixed seed: Monte-Carlo simulation, the fuzz harness's mutation
corpus and classifications, uncertainty sampling, and the metrics
histograms' name-seeded reservoirs.  Each test here runs the helper twice
from identical inputs and asserts ``==`` on the full result — not
``approx``; *bit-identical*.
"""

import json

import pytest

from repro import observability as obs
from repro.robustness import FuzzHarness
from repro.scenarios import (
    SearchSortParameters,
    booking_assembly,
    remote_assembly,
)
from repro.simulation import MonteCarloSimulator

ACTUALS = {"list": 40.0, "elem": 1.0, "res": 1.0}


@pytest.fixture
def assembly():
    return remote_assembly(SearchSortParameters())


def test_monte_carlo_same_seed_bit_identical(assembly):
    runs = []
    for _ in range(2):
        simulator = MonteCarloSimulator(assembly, seed=1234)
        result = simulator.estimate_pfail("search", 4_000, **ACTUALS)
        runs.append((result.trials, result.failures, result.pfail))
    assert runs[0] == runs[1]


def test_monte_carlo_different_seeds_differ(assembly):
    a = MonteCarloSimulator(assembly, seed=1).estimate_pfail(
        "search", 4_000, list=1000.0, elem=1.0, res=1.0
    )
    b = MonteCarloSimulator(assembly, seed=2).estimate_pfail(
        "search", 4_000, list=1000.0, elem=1.0, res=1.0
    )
    # equal counts under different seeds would suggest the seed is ignored
    assert (a.trials, a.failures) != (b.trials, b.failures)


def test_fuzz_harness_same_seed_identical_corpus_and_verdicts():
    reports = []
    for _ in range(2):
        harness = FuzzHarness(
            booking_assembly(), seed=7, trials=300, deadline=5.0
        )
        report = harness.run(12)
        reports.append([
            (c.index, c.operator, c.detail, c.status, c.pfail, c.tier)
            for c in report.cases
        ])
    assert reports[0] == reports[1]


def test_uncertainty_sampling_same_seed_bit_identical(assembly):
    from repro.analysis import sample_uncertainty

    runs = []
    for _ in range(2):
        sampled = sample_uncertainty(
            assembly, "search", ACTUALS,
            relative_std=0.1, samples=500, seed=99,
        )
        runs.append((sampled.std, tuple(sorted(sampled.percentiles.items()))))
    assert runs[0] == runs[1]


def test_metrics_snapshots_bit_identical_across_runs(assembly):
    """Two identical instrumented runs produce byte-equal metrics JSON.

    The histogram reservoirs are the only stochastic element of the
    registry; their per-name seeding makes the whole snapshot
    reproducible.  Wall-clock histograms would differ between runs, so
    this drives the registry directly with a fixed observation stream —
    the shape the worker-merge path replays.
    """
    snapshots = []
    for _ in range(2):
        obs.reset()
        obs.enable()
        try:
            for i in range(3_000):
                obs.observe("batch.entry.seconds", (i * 37 % 101) / 100.0)
                obs.count("cache.plan.hits")
            snapshots.append(json.dumps(obs.registry().snapshot(),
                                        sort_keys=True))
        finally:
            obs.reset()
    assert snapshots[0] == snapshots[1]
