"""Golden-value regression suite: every evaluation path vs pinned numbers.

Each case in ``tests/regression/goldens/*.json`` pins one ``Pfail`` value
(analytic closed form where the paper provides one, symbolic tree walk
otherwise).  The suite evaluates the same (assembly, service, actuals)
through **every** path the library offers —

- symbolic closed form, recursive tree walk (``--no-compile``),
- symbolic closed form, compiled numpy kernel,
- numeric recursive evaluator, dense solver backend,
- numeric recursive evaluator, sparse solver backend,

— and asserts each lands within its per-case relative tolerance of the
pinned value.  A refactor of any layer (expressions, kernels, solvers,
plans) that moves the numbers fails here first, with the offending path
in the test id.

Regenerate intentionally changed goldens with ``tools/update_goldens.py``.
"""

import json
import math
from pathlib import Path

import pytest

from repro.core.evaluator import ReliabilityEvaluator
from repro.engine.plan import compile_plan

import update_goldens

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

#: path name -> how tolerant the comparison is (key into the case's rtol).
PATHS = {
    "symbolic-tree-walk": "symbolic",
    "symbolic-kernel": "symbolic",
    "numeric-dense": "numeric",
    "numeric-sparse": "numeric",
}


def _load_cases():
    cases = []
    for path in sorted(GOLDEN_DIR.glob("*.json")):
        document = json.loads(path.read_text())
        assert document["schema"] == update_goldens.SCHEMA
        for case_id, case in document["cases"].items():
            cases.append(pytest.param(case, id=f"{path.stem}/{case_id}"))
    return cases


CASES = _load_cases()


def _evaluate(case: dict, path: str) -> float:
    assembly = update_goldens.build_assembly(case["spec"])
    service = case["service"]
    actuals = case["actuals"]
    if path.startswith("symbolic"):
        plan = compile_plan(assembly, service, backend="symbolic")
        return float(
            plan.pfail(actuals, use_kernel=(path == "symbolic-kernel"))
        )
    solver = "dense" if path == "numeric-dense" else "sparse"
    evaluator = ReliabilityEvaluator(assembly, solver=solver)
    return float(evaluator.pfail(service, **actuals))


@pytest.mark.parametrize("path", sorted(PATHS))
@pytest.mark.parametrize("case", CASES)
def test_golden_value(case, path):
    expected = case["pfail"]
    rtol = case["rtol"][PATHS[path]]
    actual = _evaluate(case, path)
    assert math.isfinite(actual) and 0.0 <= actual <= 1.0
    assert actual == pytest.approx(expected, rel=rtol), (
        f"{path} drifted from golden: got {actual!r}, pinned {expected!r} "
        f"(rtol {rtol:g}); if intentional, rerun tools/update_goldens.py"
    )


def test_goldens_are_current():
    """The files on disk match what the tool would regenerate today.

    Guards against editing golden JSON by hand or changing the case
    definitions without rerunning the tool.
    """
    assert update_goldens.main(["--check"]) == 0


def test_golden_files_exist():
    assert {p.stem for p in GOLDEN_DIR.glob("*.json")} == {
        "figure6", "section4", "scenarios"
    }
