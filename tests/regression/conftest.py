"""Shared plumbing for the golden-value regression suite.

The case definitions live in ``tools/update_goldens.py`` — the same
structure both regenerates the goldens and drives these tests, so the two
can never pin different cases.  This conftest makes that module importable
from the test processes.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOLS_DIR = REPO_ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))
