"""Property tests for the failure-model library."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability import (
    ConstantFailureModel,
    ExponentialFailureModel,
    WeibullFailureModel,
    exponential_internal,
    per_operation_internal,
)
from repro.symbolic import Constant

rates = st.floats(min_value=0.0, max_value=10.0)
positive = st.floats(min_value=1e-3, max_value=1e3)
durations = st.floats(min_value=0.0, max_value=1e3)
phis = st.floats(min_value=0.0, max_value=1.0)
operations = st.floats(min_value=0.0, max_value=1e6)


class TestTimeModels:
    @given(rates, durations)
    @settings(max_examples=300)
    def test_exponential_is_probability(self, rate, duration):
        assert 0.0 <= ExponentialFailureModel(rate).pfail(duration) <= 1.0

    @given(rates, durations, durations)
    @settings(max_examples=300)
    def test_exponential_monotone(self, rate, d1, d2):
        model = ExponentialFailureModel(rate)
        low, high = sorted((d1, d2))
        assert model.pfail(low) <= model.pfail(high) + 1e-15

    @given(rates)
    @settings(max_examples=100)
    def test_exponential_zero_duration(self, rate):
        assert ExponentialFailureModel(rate).pfail(0.0) == 0.0

    @given(rates, durations, durations)
    @settings(max_examples=200)
    def test_exponential_memoryless_composition(self, rate, d1, d2):
        """Survival over d1+d2 equals the product of survivals — the
        property eq. (20) exploits when collapsing the six RPC factors."""
        model = ExponentialFailureModel(rate)
        survive = lambda d: 1.0 - model.pfail(d)
        assert survive(d1 + d2) == pytest.approx(
            survive(d1) * survive(d2), rel=1e-9, abs=1e-12
        )

    @given(positive, st.floats(min_value=0.2, max_value=5.0), durations)
    @settings(max_examples=300)
    def test_weibull_is_probability_and_monotone(self, scale, shape, duration):
        model = WeibullFailureModel(scale, shape)
        value = model.pfail(duration)
        assert 0.0 <= value <= 1.0
        assert model.pfail(duration * 2.0) >= value - 1e-15

    @given(st.floats(min_value=0.0, max_value=1.0), durations)
    @settings(max_examples=100)
    def test_constant_is_flat(self, p, duration):
        assert ConstantFailureModel(p).pfail(duration) == pytest.approx(p)


class TestInternalModels:
    @given(phis, operations)
    @settings(max_examples=300)
    def test_equation_14_is_probability(self, phi, n):
        value = float(per_operation_internal(phi, Constant(n)).evaluate({}))
        assert -1e-12 <= value <= 1.0 + 1e-12

    @given(phis, operations, operations)
    @settings(max_examples=300)
    def test_equation_14_monotone_in_operations(self, phi, n1, n2):
        low, high = sorted((n1, n2))
        expr_low = float(per_operation_internal(phi, Constant(low)).evaluate({}))
        expr_high = float(per_operation_internal(phi, Constant(high)).evaluate({}))
        assert expr_low <= expr_high + 1e-12

    @given(st.floats(min_value=0.0, max_value=1e-4),
           st.floats(min_value=0.0, max_value=1e3))
    @settings(max_examples=200)
    def test_models_agree_to_first_order(self, phi, n):
        """(1-phi)^N ~= e^(-phi N) for small phi*N."""
        discrete = float(per_operation_internal(phi, Constant(n)).evaluate({}))
        continuous = float(exponential_internal(phi, Constant(n)).evaluate({}))
        assert discrete == pytest.approx(continuous, rel=5e-2, abs=1e-9)

    @given(phis, operations)
    @settings(max_examples=200)
    def test_discrete_model_is_pessimistic_bound(self, phi, n):
        """ln(1-phi) <= -phi gives (1-phi)^N <= e^(-phi N): the eq. (14)
        model never predicts FEWER failures than the exponential one.

        Floating-point caveat: for phi below the representation step of
        1 - phi (~1.1e-16), ``1 - phi`` rounds to exactly 1 and the
        discrete model under-reports by up to ``n * eps/2`` — the slack
        term below.
        """
        discrete = float(per_operation_internal(phi, Constant(n)).evaluate({}))
        continuous = float(exponential_internal(phi, Constant(n)).evaluate({}))
        assert discrete >= continuous - 1e-12 - n * 1.2e-16
